//! Robustness of the inspector database's on-disk persistence: damaged
//! files must surface as typed errors or degraded-but-safe lookups, never
//! as panics — and the snapshot container must catch torn writes and bit
//! rot that the JSON layer cannot see.

use prescaler_core::{InspectorDb, SystemInspector};
use prescaler_ir::Precision;
use prescaler_persist::{snapshot, PersistError};
use prescaler_sim::{Direction, SystemModel};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("prescaler_db_robustness");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Inspects system 1 and saves the database, returning its path and the
/// serialized JSON payload text for surgical corruption.
fn saved_json(name: &str) -> (PathBuf, String) {
    let db = SystemInspector::inspect(&SystemModel::system1());
    let path = temp_path(name);
    db.save(&path).unwrap();
    let payload = snapshot::load(&path, snapshot::KIND_INSPECTOR_DB).unwrap();
    (path, String::from_utf8(payload).unwrap())
}

/// Re-wraps corrupted payload text in a *valid* container, so the test
/// exercises the JSON/structural validation layer rather than the CRC.
fn rewrap(path: &std::path::Path, json: &str) {
    snapshot::save(path, snapshot::KIND_INSPECTOR_DB, json.as_bytes()).unwrap();
}

#[test]
fn round_trip_is_lossless() {
    let db = SystemInspector::inspect(&SystemModel::system1());
    let path = temp_path("round_trip.json");
    db.save(&path).unwrap();
    let loaded = InspectorDb::load(&path).unwrap();
    assert_eq!(db, loaded);
    assert_eq!(loaded.corrupt_curve_count(), 0);
    let q = |d: &InspectorDb| {
        d.best_direct_plan(Direction::HtoD, Precision::Double, Precision::Half, 1 << 18)
            .unwrap()
    };
    assert_eq!(q(&db), q(&loaded));
    std::fs::remove_file(&path).ok();
}

#[test]
fn legacy_bare_json_databases_still_load() {
    let (path, json) = saved_json("legacy.json");
    // The pre-container on-disk format: raw JSON, no header.
    std::fs::write(&path, &json).unwrap();
    let db = InspectorDb::load(&path).unwrap();
    assert!(db.curve_count() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_container_is_a_typed_error() {
    let (path, _) = saved_json("truncated.snap");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = InspectorDb::load(&path).unwrap_err();
    assert!(matches!(err, PersistError::Truncated { .. }), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_payload_byte_is_a_checksum_error() {
    let (path, _) = saved_json("bitflip.snap");
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.len() - 20;
    bytes[at] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();
    let err = InspectorDb::load(&path).unwrap_err();
    assert!(
        matches!(err, PersistError::ChecksumMismatch { .. }),
        "{err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_legacy_json_is_a_decode_error() {
    let (path, json) = saved_json("truncated_legacy.json");
    std::fs::write(&path, &json[..json.len() / 2]).unwrap();
    let err = InspectorDb::load(&path).unwrap_err();
    assert!(matches!(err, PersistError::Decode(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn negative_timing_is_detected_and_routed_around() {
    let (path, json) = saved_json("negative.snap");
    // Replace the first sample of the first curve with a negative time.
    let marker = "\"times\":[";
    let start = json.find(marker).expect("a times array") + marker.len();
    let end = start + json[start..].find(',').expect("more than one sample");
    let corrupted = format!("{}-1.0{}", &json[..start], &json[end..]);
    rewrap(&path, &corrupted);
    // Structurally intact, so the load succeeds…
    let db = InspectorDb::load(&path).unwrap();
    // …with exactly the poisoned curve flagged…
    assert_eq!(db.corrupt_curve_count(), 1);
    // …and every query still answers with finite, non-negative times.
    for src in Precision::ALL {
        for dst in Precision::ALL {
            if let Some((_, t)) = db.best_plan(Direction::HtoD, src, dst, 1 << 16, &Precision::ALL)
            {
                assert!(t.as_secs().is_finite() && t.as_secs() >= 0.0);
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_method_key_is_a_typed_error() {
    let (path, json) = saved_json("unknown_method.snap");
    let corrupted = json.replacen("\"host_method\":\"Loop\"", "\"host_method\":\"Warp\"", 1);
    assert_ne!(corrupted, json, "fixture must contain a Loop method");
    rewrap(&path, &corrupted);
    let err = InspectorDb::load(&path).unwrap_err();
    assert!(matches!(err, PersistError::Decode(_)), "{err}");
    assert!(err.to_string().contains("Warp"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_grid_is_rejected_at_load() {
    let (path, json) = saved_json("empty_grid.snap");
    let marker = "\"grid\":[";
    let start = json.find(marker).expect("grid array") + marker.len();
    let end = start + json[start..].find(']').expect("grid closes");
    let corrupted = format!("{}{}", &json[..start], &json[end..]);
    rewrap(&path, &corrupted);
    let err = InspectorDb::load(&path).unwrap_err();
    assert!(matches!(err, PersistError::Decode(_)), "{err}");
    assert!(err.to_string().contains("empty measurement grid"), "{err}");
    std::fs::remove_file(&path).ok();
}
