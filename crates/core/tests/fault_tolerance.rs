//! Graceful-degradation guarantees of the full tuning pipeline under
//! seeded fault injection: whatever the fault plan, `tune` never panics,
//! and the configuration it returns meets TOQ (or is the full-precision
//! fallback) and is never slower than the clean baseline.

use prescaler_core::{PreScaler, SystemInspector};
use prescaler_polybench::{BenchKind, PolyApp};
use prescaler_sim::{FaultPlan, SystemModel};
use proptest::prelude::*;

const TOQ: f64 = 0.9;
const BENCHES: [BenchKind; 3] = [BenchKind::Gemm, BenchKind::Atax, BenchKind::Mvt];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]
    #[test]
    fn tune_degrades_gracefully_under_any_fault_plan(
        seed in any::<u64>(),
        transfer in 0.0f64..0.2,
        launch in 0.0f64..0.2,
        corruption in 0.0f64..0.2,
        db_corruption in 0.0f64..0.2,
        noise in 0.0f64..0.4,
        bench in 0usize..3,
    ) {
        let plan = FaultPlan::seeded(seed)
            .with_transfer_failures(transfer)
            .with_launch_failures(launch)
            .with_buffer_corruption(corruption)
            .with_db_corruption(db_corruption)
            .with_clock_noise(noise);
        let system = SystemModel::system1().with_faults(plan);
        // The inspector itself runs on the faulty system: its database
        // may carry corrupted curves the search must route around.
        let db = SystemInspector::inspect(&system);
        let app = PolyApp::tiny(BENCHES[bench]);
        // Never panics, never errors: the only propagated failure source
        // is the baseline run, and it executes on the clean twin.
        let tuned = PreScaler::new(&system, &db, TOQ).tune(&app).unwrap();
        prop_assert!(
            tuned.eval.quality >= TOQ || tuned.config.is_baseline(),
            "quality {} without baseline fallback",
            tuned.eval.quality
        );
        // Never worse than the full-precision baseline on the clean
        // system.
        prop_assert!(
            tuned.eval.time <= tuned.baseline_time,
            "chosen config slower than baseline: {} > {}",
            tuned.eval.time,
            tuned.baseline_time
        );
        prop_assert!(tuned.speedup() >= 1.0);
    }
}

#[test]
fn disabled_fault_plan_is_bit_identical_to_no_faults() {
    let clean = SystemModel::system1();
    let disabled = SystemModel::system1().with_faults(
        FaultPlan::seeded(42)
            .with_transfer_failures(0.0)
            .with_launch_failures(0.0)
            .with_buffer_corruption(0.0)
            .with_db_corruption(0.0)
            .with_clock_noise(0.0),
    );
    let db_a = SystemInspector::inspect(&clean);
    let db_b = SystemInspector::inspect(&disabled);
    assert_eq!(db_a, db_b);

    let app = PolyApp::tiny(BenchKind::Gemm);
    let a = PreScaler::new(&clean, &db_a, TOQ).tune(&app).unwrap();
    let b = PreScaler::new(&disabled, &db_b, TOQ).tune(&app).unwrap();
    assert_eq!(a.config, b.config);
    assert_eq!(
        a.eval.time.as_secs().to_bits(),
        b.eval.time.as_secs().to_bits()
    );
    assert_eq!(a.eval.quality.to_bits(), b.eval.quality.to_bits());
    assert_eq!(
        a.baseline_time.as_secs().to_bits(),
        b.baseline_time.as_secs().to_bits()
    );
    assert_eq!(a.trials, b.trials);
}
