//! Resume-after-crash tuning: the durable wrapper around
//! [`PreScaler::tune`].
//!
//! A durable tune binds a [`TrialJournal`] to the engine's
//! `(app, system)` context fingerprint, replays whatever the journal
//! already holds into the memo cache, and runs the normal search. If the
//! process dies mid-tune — simulated deterministically by an armed
//! [`CrashPoint`] — calling [`tune_durable`] again with the same journal
//! path resumes: every durably journaled execution is answered from the
//! replayed cache, so the resumed run re-charges **zero** completed
//! trials and returns a [`Tuned`] bit-identical to an uninterrupted run.
//!
//! The crash drill panics with a [`SimulatedCrash`] payload;
//! [`tune_durable_with_crash`] catches exactly that payload (anything
//! else unwinding out of a tune is a real bug and is re-raised) and
//! reports the kill as `Ok(None)`.

use crate::engine::{TrialEngine, TrialStats};
use crate::profiler::profile_app;
use crate::search::{PreScaler, Tuned};
use prescaler_faults::{CrashPoint, SimulatedCrash};
use prescaler_ocl::{HostApp, OclError};
use prescaler_persist::{PersistError, Recovery, TrialJournal};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::Once;

/// A durable-tuning failure: either the underlying pipeline could not
/// run at all, or the journal was unusable in a way recovery must not
/// paper over (foreign context, newer format).
#[derive(Debug)]
pub enum TuneError {
    /// The clean baseline profiling run failed — the application cannot
    /// be tuned at all.
    Ocl(OclError),
    /// The journal could not be opened for this context (a journal from
    /// a different app/system pair, a newer format version, or an I/O
    /// failure). Corrupt journals do *not* land here — they are repaired
    /// by truncation and the tune proceeds.
    Persist(PersistError),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Ocl(e) => write!(f, "tuning pipeline failed: {e}"),
            TuneError::Persist(e) => write!(f, "trial journal unusable: {e}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Ocl(e) => Some(e),
            TuneError::Persist(e) => Some(e),
        }
    }
}

impl From<OclError> for TuneError {
    fn from(e: OclError) -> TuneError {
        TuneError::Ocl(e)
    }
}

impl From<PersistError> for TuneError {
    fn from(e: PersistError) -> TuneError {
        TuneError::Persist(e)
    }
}

/// The outcome of a completed durable tune.
#[derive(Debug)]
pub struct DurableReport {
    /// The tuning result — bit-identical to an uninterrupted run.
    pub tuned: Tuned,
    /// Journal records replayed into the memo cache before the search
    /// started (0 on a fresh run).
    pub replayed: usize,
    /// Engine counters for this run; `stats.executions` is the work the
    /// journal had *not* yet made durable.
    pub stats: TrialStats,
    /// What journal recovery found on open (torn-tail repairs, recreated
    /// headers).
    pub recovery: Recovery,
}

/// Runs a journal-backed tune to completion, resuming from whatever the
/// journal at `journal_path` already holds. A missing journal starts
/// fresh; a torn or garbage-tailed one is repaired by truncation first.
///
/// # Errors
///
/// [`TuneError::Ocl`] when baseline profiling fails;
/// [`TuneError::Persist`] when the journal belongs to a different
/// `(app, system)` context or a newer format version.
pub fn tune_durable(
    tuner: &PreScaler<'_>,
    app: &dyn HostApp,
    journal_path: &Path,
) -> Result<DurableReport, TuneError> {
    match tune_durable_with_crash(tuner, app, journal_path, None)? {
        Some(report) => Ok(report),
        None => unreachable!("no crash point armed, so the tune cannot be killed"),
    }
}

/// [`tune_durable`] with an optional armed [`CrashPoint`] drill.
/// Returns `Ok(None)` when the drill killed the run — the journal then
/// holds every execution completed before the kill (minus an injected
/// tear), and a follow-up call resumes from it.
///
/// # Errors
///
/// Same taxonomy as [`tune_durable`].
///
/// # Panics
///
/// Re-raises any panic that is *not* the drill's [`SimulatedCrash`]
/// payload — a real defect must never be mistaken for a simulated kill.
pub fn tune_durable_with_crash(
    tuner: &PreScaler<'_>,
    app: &dyn HostApp,
    journal_path: &Path,
    crash: Option<CrashPoint>,
) -> Result<Option<DurableReport>, TuneError> {
    silence_simulated_crashes();
    let profile = profile_app(app, tuner.system())?;
    let mut engine = TrialEngine::new(app, tuner.system(), &profile);
    let (journal, recovery) = TrialJournal::open(journal_path, engine.context_fingerprint())?;
    let replayed = engine.attach_journal(journal, &recovery.records);
    if let Some(crash) = crash {
        engine.arm_crash(crash);
    }
    match panic::catch_unwind(AssertUnwindSafe(|| tuner.tune_with_engine(&engine))) {
        Ok(tuned) => {
            let stats = engine.stats();
            Ok(Some(DurableReport {
                tuned,
                replayed,
                stats,
                recovery,
            }))
        }
        Err(payload) if payload.downcast_ref::<SimulatedCrash>().is_some() => Ok(None),
        Err(payload) => panic::resume_unwind(payload),
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" stderr spew for [`SimulatedCrash`] drills — they
/// are expected, caught, and reported through the harness — while
/// delegating every real panic to the previously installed hook.
fn silence_simulated_crashes() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimulatedCrash>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::SystemInspector;
    use prescaler_faults::TearMode;
    use prescaler_polybench::{BenchKind, InputSet, PolyApp};
    use prescaler_sim::SystemModel;
    use std::path::PathBuf;

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prescaler_recovery_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    fn assert_bit_identical(a: &Tuned, b: &Tuned) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.eval.time, b.eval.time);
        assert_eq!(a.eval.kernel_time, b.eval.kernel_time);
        assert_eq!(a.eval.quality.to_bits(), b.eval.quality.to_bits());
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.cache_hits, b.cache_hits);
    }

    #[test]
    fn killed_and_resumed_tune_matches_uninterrupted_run() {
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let tuner = PreScaler::new(&system, &db, 0.9);
        let app = PolyApp::scaled(BenchKind::Gemm, InputSet::Default, 0.2);

        let reference_path = temp_journal("reference");
        std::fs::remove_file(&reference_path).ok();
        let reference = tune_durable(&tuner, &app, &reference_path).unwrap();
        assert_eq!(reference.replayed, 0);
        assert!(reference.stats.executions > 2);

        let path = temp_journal("killed");
        std::fs::remove_file(&path).ok();
        let crash = CrashPoint::at(2).with_tear(TearMode::Truncate { bytes: 9 });
        let killed = tune_durable_with_crash(&tuner, &app, &path, Some(crash)).unwrap();
        assert!(killed.is_none(), "the drill must kill the first run");

        let resumed = tune_durable(&tuner, &app, &path).unwrap();
        // The tear cost the second record; the first survived.
        assert!(resumed.recovery.repaired());
        assert_eq!(resumed.replayed, 1);
        assert_bit_identical(&reference.tuned, &resumed.tuned);
        // Zero completed trials re-charged: the resumed run re-executes
        // only what the (torn) journal had not made durable.
        assert_eq!(
            resumed.stats.executions,
            reference.stats.executions - resumed.replayed
        );

        std::fs::remove_file(&reference_path).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_journal_is_a_typed_error() {
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let tuner = PreScaler::new(&system, &db, 0.9);
        let path = temp_journal("foreign");
        TrialJournal::create(&path, 0x5EED).unwrap();
        let app = PolyApp::tiny(BenchKind::Gemm);
        let err = tune_durable(&tuner, &app, &path).unwrap_err();
        assert!(
            matches!(
                err,
                TuneError::Persist(PersistError::ContextMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
