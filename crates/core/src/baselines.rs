//! The paper's comparison techniques: In-Kernel scaling (Precimonious-
//! style exhaustive kernel-level search) and Program-level Full Precision
//! (PFP). Both evaluate candidates through the shared [`TrialEngine`], so
//! report paths that run several techniques on one app reuse the
//! profiling run and any overlapping measurements.

use crate::engine::TrialEngine;
use crate::profiler::AppProfile;
use crate::search::Evaluation;
use prescaler_ir::Precision;
use prescaler_ocl::{Event, PlanChoice, ScalingSpec};
use prescaler_sim::{Direction, HostMethod};
use std::collections::HashMap;

/// Outcome of a baseline technique's search.
#[derive(Clone, Debug)]
pub struct TechniqueOutcome {
    /// Chosen configuration.
    pub config: ScalingSpec,
    /// Its evaluation.
    pub eval: Evaluation,
    /// Trials charged by this technique (excluding the shared profiling
    /// run and any evaluation already paid for through the engine cache).
    pub trials: usize,
}

fn baseline_eval(profile: &AppProfile) -> Evaluation {
    Evaluation {
        time: profile.baseline_time,
        kernel_time: profile.log.timeline.kernel,
        quality: 1.0,
    }
}

// ---------------------------------------------------------------------------
// PFP
// ---------------------------------------------------------------------------

/// Program-level Full Precision: every memory object gets the same type;
/// all types are tested, with both a host-side multithreaded conversion
/// (threads = logical cores) and a device-side conversion considered
/// (paper §5.1). The best TOQ-passing configuration wins. A candidate
/// that cannot run is pruned; the baseline fallback always remains.
#[must_use]
pub fn pfp(engine: &TrialEngine, toq: f64) -> TechniqueOutcome {
    let profile = engine.profile();
    let threads = engine.system().cpu.threads as usize;
    let mut best = TechniqueOutcome {
        config: ScalingSpec::baseline(),
        eval: baseline_eval(profile),
        trials: 0,
    };
    let mut trials = 0usize;

    let mut candidates = Vec::new();
    for target in [Precision::Single, Precision::Half] {
        for device_side in [false, true] {
            let mut spec = ScalingSpec::baseline();
            for obj in &profile.scaling_order {
                if obj.original == target {
                    continue;
                }
                spec = spec.with_target(&obj.label, target);
                if obj.written {
                    let choice = if device_side {
                        PlanChoice {
                            intermediate: obj.original,
                            host_method: HostMethod::Loop,
                        }
                    } else {
                        PlanChoice::host_direct(Direction::HtoD, obj.original, target, threads)
                    };
                    spec = spec.with_write_plan(&obj.label, choice);
                }
                if obj.read_back {
                    let choice = if device_side {
                        PlanChoice {
                            intermediate: obj.original,
                            host_method: HostMethod::Loop,
                        }
                    } else {
                        PlanChoice::host_direct(Direction::DtoH, target, obj.original, threads)
                    };
                    spec = spec.with_read_plan(&obj.label, choice);
                }
            }
            candidates.push(spec);
        }
    }

    engine.prefetch(&candidates);
    for spec in candidates {
        let (eval, charged) = engine.trial(&spec);
        trials += usize::from(charged);
        let Some(eval) = eval else {
            continue; // unrunnable uniform config: pruned
        };
        if eval.quality >= toq && eval.time < best.eval.time {
            best = TechniqueOutcome {
                config: spec,
                eval,
                trials: 0,
            };
        }
    }
    best.trials = trials;
    best
}

// ---------------------------------------------------------------------------
// In-Kernel
// ---------------------------------------------------------------------------

/// In-Kernel scaling: type conversions are inserted *inside* kernels while
/// memory objects and transfers stay at full precision. All per-object
/// compute-precision assignments are tested exhaustively (the paper's
/// "to ensure fair performance gain, we test all possible configurations"),
/// with monotone pruning: once an assignment fails TOQ, every strictly
/// lower-precision refinement of it is skipped, and `max_trials` caps
/// pathological cases. An assignment that cannot run is skipped.
#[must_use]
pub fn in_kernel(engine: &TrialEngine, toq: f64, max_trials: usize) -> TechniqueOutcome {
    let profile = engine.profile();
    // Which kernels bind which objects, by parameter name.
    let mut kernel_params: HashMap<String, Vec<(String, String)>> = HashMap::new();
    for e in &profile.log.events {
        if let Event::KernelLaunch { kernel, args, .. } = e {
            kernel_params
                .entry(kernel.clone())
                .or_insert_with(|| args.clone());
        }
    }
    let labels: Vec<String> = profile
        .scaling_order
        .iter()
        .map(|o| o.label.clone())
        .collect();

    // Enumerate assignments label → precision, most precise first.
    let choices = [Precision::Double, Precision::Single, Precision::Half];
    let total = 3usize.pow(labels.len() as u32);
    let mut failed: Vec<Vec<u8>> = Vec::new();
    let mut best = TechniqueOutcome {
        config: ScalingSpec::baseline(),
        eval: baseline_eval(profile),
        trials: 0,
    };
    let mut trials = 0usize;

    'outer: for idx in 1..total {
        if trials >= max_trials {
            break;
        }
        // Decode base-3 digits: 0 = double, 1 = single, 2 = half.
        let mut digits = vec![0u8; labels.len()];
        let mut v = idx;
        for d in &mut digits {
            *d = (v % 3) as u8;
            v /= 3;
        }
        // Monotone pruning: skip refinements of known failures.
        for f in &failed {
            if digits.iter().zip(f).all(|(d, fd)| d >= fd) {
                continue 'outer;
            }
        }

        let mut spec = ScalingSpec::baseline();
        for (kernel, params) in &kernel_params {
            let mut map = HashMap::new();
            for (param, label) in params {
                // A kernel argument bound to an object the profiler never
                // saw: leave that parameter at full precision.
                let Some(li) = labels.iter().position(|l| l == label) else {
                    continue;
                };
                let p = choices[digits[li] as usize];
                if p != Precision::Double {
                    map.insert(param.clone(), p);
                }
            }
            if !map.is_empty() {
                spec.in_kernel.insert(kernel.clone(), map);
            }
        }
        if spec.in_kernel.is_empty() {
            continue;
        }
        let (eval, charged) = engine.trial(&spec);
        trials += usize::from(charged);
        let Some(eval) = eval else {
            continue; // unrunnable assignment: skipped, not generalized
        };
        if eval.quality < toq {
            failed.push(digits);
            continue;
        }
        if eval.time < best.eval.time {
            best = TechniqueOutcome {
                config: spec,
                eval,
                trials: 0,
            };
        }
    }
    best.trials = trials;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_app;
    use prescaler_polybench::{BenchKind, InputSet, PolyApp};
    use prescaler_sim::SystemModel;

    fn setup(kind: BenchKind, scale: f64) -> (SystemModel, PolyApp, AppProfile) {
        let system = SystemModel::system1();
        let app = PolyApp::scaled(kind, InputSet::Default, scale);
        let profile = profile_app(&app, &system).unwrap();
        (system, app, profile)
    }

    #[test]
    fn pfp_improves_over_baseline_when_single_is_safe() {
        let (system, app, profile) = setup(BenchKind::Gemm, 0.4);
        let engine = TrialEngine::new(&app, &system, &profile);
        let out = pfp(&engine, 0.9);
        assert!(out.eval.quality >= 0.9);
        assert!(
            out.eval.time < profile.baseline_time,
            "PFP must beat baseline here"
        );
        assert!(out.trials >= 2 && out.trials <= 4, "{}", out.trials);
        // Uniform: all scaled objects share one precision.
        let types: std::collections::HashSet<_> = out.config.object_targets.values().collect();
        assert!(types.len() <= 1);
    }

    #[test]
    fn in_kernel_finds_a_valid_config_with_few_trials() {
        let (system, app, profile) = setup(BenchKind::Gemm, 0.05);
        let engine = TrialEngine::new(&app, &system, &profile);
        let out = in_kernel(&engine, 0.9, 100);
        assert!(out.eval.quality >= 0.9);
        assert!(out.trials >= 1);
        // Buffers stay full precision: in-kernel scaling never retargets
        // memory objects.
        assert!(out.config.object_targets.is_empty());
    }

    #[test]
    fn in_kernel_cannot_help_data_bound_apps() {
        // For a transfer-dominated app the in-kernel technique cannot
        // shrink transfers, so its gains are capped by the small kernel
        // fraction (the paper's §5.2 observation).
        let (system, app, profile) = setup(BenchKind::Atax, 0.4);
        let engine = TrialEngine::new(&app, &system, &profile);
        let ik = in_kernel(&engine, 0.9, 100);
        let speedup = profile.baseline_time / ik.eval.time;
        assert!(
            speedup < 1.10,
            "In-Kernel speedup {speedup} on ATAX should be marginal"
        );
        assert!(ik.eval.quality >= 0.9);
    }

    #[test]
    fn trial_cap_is_respected() {
        let (system, app, profile) = setup(BenchKind::ThreeMM, 0.03);
        let engine = TrialEngine::new(&app, &system, &profile);
        let out = in_kernel(&engine, 0.9, 5);
        assert!(out.trials <= 5);
    }

    #[test]
    fn techniques_share_one_engine_without_extra_executions() {
        // Running PFP twice over one engine answers the second pass
        // entirely from the memo cache.
        let (system, app, profile) = setup(BenchKind::Gemm, 0.05);
        let engine = TrialEngine::new(&app, &system, &profile);
        let first = pfp(&engine, 0.9);
        let executions = engine.stats().executions;
        let second = pfp(&engine, 0.9);
        assert_eq!(engine.stats().executions, executions, "no re-execution");
        assert_eq!(second.trials, 0, "second pass charges nothing");
        assert_eq!(first.config, second.config);
        assert_eq!(first.eval.time, second.eval.time);
    }
}
