//! Report extraction: the type and conversion-method distributions the
//! paper plots in Fig. 9(d,e), Fig. 11(b,c) and Fig. 12(b,c) — plus the
//! durable [`TunedSnapshot`] form of a tuning result ([`Tuned::save`] /
//! [`Tuned::load`]).

use crate::profiler::AppProfile;
use crate::search::Tuned;
use prescaler_ir::Precision;
use prescaler_ocl::{PlanChoice, ScalingSpec};
use prescaler_persist::{snapshot, PersistError};
use prescaler_sim::HostMethod;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// How many memory objects ended up at each precision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeDistribution {
    /// Objects stored as binary16.
    pub half: usize,
    /// Objects stored as binary32.
    pub single: usize,
    /// Objects left at binary64.
    pub double: usize,
}

impl TypeDistribution {
    /// Total objects.
    #[must_use]
    pub fn total(&self) -> usize {
        self.half + self.single + self.double
    }

    /// Fraction of objects at the given precision.
    #[must_use]
    pub fn fraction(&self, p: Precision) -> f64 {
        let n = self.total().max(1) as f64;
        (match p {
            Precision::Half => self.half,
            Precision::Single => self.single,
            Precision::Double => self.double,
        }) as f64
            / n
    }
}

/// How the transfer events of a configuration convert (paper Fig. 9(e)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionDistribution {
    /// Transfers with no conversion at all.
    pub none: usize,
    /// Host-side single-loop conversions.
    pub host_loop: usize,
    /// Host-side multithreaded conversions.
    pub host_multithread: usize,
    /// Pipelined conversion+transfer.
    pub pipelined: usize,
    /// Device-side conversions.
    pub device: usize,
    /// Transient conversions (wire type distinct from both endpoints).
    pub transient: usize,
}

impl ConversionDistribution {
    /// Total transfer events classified.
    #[must_use]
    pub fn total(&self) -> usize {
        self.none
            + self.host_loop
            + self.host_multithread
            + self.pipelined
            + self.device
            + self.transient
    }

    /// Number of events that perform some conversion.
    #[must_use]
    pub fn converting(&self) -> usize {
        self.total() - self.none
    }
}

/// Extracts the per-object type distribution of a configuration.
#[must_use]
pub fn type_distribution(profile: &AppProfile, spec: &ScalingSpec) -> TypeDistribution {
    let mut dist = TypeDistribution::default();
    for obj in &profile.scaling_order {
        match spec.target_for(&obj.label, obj.original) {
            Precision::Half => dist.half += 1,
            Precision::Single => dist.single += 1,
            Precision::Double => dist.double += 1,
        }
    }
    dist
}

/// Extracts the conversion-method distribution over the configuration's
/// transfer events.
#[must_use]
pub fn conversion_distribution(profile: &AppProfile, spec: &ScalingSpec) -> ConversionDistribution {
    let mut dist = ConversionDistribution::default();
    for obj in &profile.scaling_order {
        let target = spec.target_for(&obj.label, obj.original);
        if obj.written {
            classify(
                &mut dist,
                obj.original,
                target,
                spec.write_plans.get(&obj.label).copied(),
                true,
            );
        }
        if obj.read_back {
            classify(
                &mut dist,
                target,
                obj.original,
                spec.read_plans.get(&obj.label).copied(),
                false,
            );
        }
    }
    dist
}

fn classify(
    dist: &mut ConversionDistribution,
    src: Precision,
    dst: Precision,
    plan: Option<prescaler_ocl::PlanChoice>,
    htod: bool,
) {
    let Some(plan) = plan else {
        if src == dst {
            dist.none += 1;
        } else {
            dist.host_loop += 1; // runtime default for scaled-but-unplanned
        }
        return;
    };
    if src == dst && plan.intermediate == src {
        dist.none += 1;
        return;
    }
    let transient = plan.intermediate != src && plan.intermediate != dst;
    if transient {
        dist.transient += 1;
        return;
    }
    // Direct conversion: device-side when the wire carries the *far* end's
    // type (source for HtoD, destination for DtoH).
    let device_side = if htod {
        plan.intermediate == src
    } else {
        plan.intermediate == dst
    };
    if device_side && src != dst {
        dist.device += 1;
        return;
    }
    match plan.host_method {
        HostMethod::Loop => dist.host_loop += 1,
        HostMethod::Multithread { .. } => dist.host_multithread += 1,
        HostMethod::Pipelined { .. } => dist.pipelined += 1,
    }
}

/// Summary of one guarded-serving session (`prescaler-guard`): how the
/// runtime quality sentinel behaved over a sequence of production runs.
/// Lives here, next to the other report rows, so persisted experiment
/// reports can embed it without the core depending on the guard crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GuardSummary {
    /// Production runs served.
    pub runs: u64,
    /// Full-precision canary runs executed.
    pub canary_runs: u64,
    /// Virtual seconds spent on canary runs (the guard's overhead).
    pub canary_secs: f64,
    /// Per-object precision demotions applied.
    pub demotions: u64,
    /// Per-object precision re-promotions after recovery.
    pub promotions: u64,
    /// Runs served with at least one object demoted (or in fallback).
    pub degraded_runs: u64,
    /// Virtual seconds of production time spent degraded.
    pub degraded_secs: f64,
    /// Whether the global breaker fell back to the full-precision
    /// baseline configuration.
    pub fallback: bool,
    /// Quality of the last canary-scored run, if any was taken.
    pub final_quality: Option<f64>,
}

/// Aggregate counters of one `prescaler-serve` serving session: how many
/// requests arrived, how many were served, and exactly why every other
/// one was shed. Every arrival is accounted for by exactly one counter —
/// overload may reject work, but never silently drops it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Requests that arrived, including overload-burst extras.
    pub arrivals: u64,
    /// Requests admitted and served to completion with a quality verdict.
    pub served: u64,
    /// Requests rejected at admission because the bounded queue was full.
    pub shed_queue_full: u64,
    /// Requests shed before launch because their deadline budget could
    /// not be met.
    pub shed_deadline: u64,
    /// Requests rejected after the session began shutting down.
    pub shed_shutdown: u64,
    /// Requests that failed because the device was lost mid-service.
    pub failed_device_lost: u64,
    /// Served requests that ran while the guard was degraded (at least
    /// one object demoted, or the sticky baseline fallback engaged).
    pub degraded_served: u64,
    /// High-water mark of the admission queue (never exceeds the bound).
    pub peak_queue_depth: u64,
    /// Virtual seconds the device spent serving admitted requests.
    pub busy_secs: f64,
    /// Virtual completion time of the last served request.
    pub makespan_secs: f64,
    /// Whether sustained overload raised the guard's revalidation flag
    /// (shed work, never quality: overload asks for a re-tune instead of
    /// demoting precision).
    pub overload_revalidation: bool,
}

impl ServeSummary {
    /// Requests shed with a typed rejection (admission or deadline or
    /// shutdown), excluding device-loss failures.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_deadline + self.shed_shutdown
    }

    /// Total requests accounted for across all outcome counters. Equal to
    /// [`ServeSummary::arrivals`] in any correct session.
    #[must_use]
    pub fn accounted(&self) -> u64 {
        self.served + self.shed() + self.failed_device_lost
    }
}

/// Full report of a serving session: the aggregate counters, the guard's
/// own summary after the run, and a canonical FNV-1a digest of the
/// per-request outcome stream. Equal digests mean bit-identical
/// per-request outcomes — the cross-worker-count determinism check diffs
/// exactly this value. Lives here, next to [`GuardSummary`], so persisted
/// experiment reports can embed it without depending on the serve crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Aggregate outcome counters.
    pub summary: ServeSummary,
    /// The guard's cumulative summary at the end of the session.
    pub guard: GuardSummary,
    /// Canonical digest of the per-request outcome stream (spec served,
    /// quality verdict, typed rejection — in arrival order).
    pub outcome_digest: u64,
    /// Physical worker threads the session ran with. Informational only:
    /// outcomes and digest are invariant to it.
    pub workers: u64,
    /// Seed of the arrival trace the session replayed.
    pub seed: u64,
}

/// A complete per-benchmark result row (one bar group in Fig. 9/10).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResultRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Technique name ("Baseline", "In-Kernel", "PFP", "PreScaler").
    pub technique: String,
    /// Total virtual time in seconds.
    pub time_secs: f64,
    /// Kernel-only virtual time in seconds.
    pub kernel_secs: f64,
    /// Speedup over baseline.
    pub speedup: f64,
    /// Output quality.
    pub quality: f64,
    /// Application executions charged to the technique's search.
    pub trials: usize,
    /// Evaluations answered from the trial-engine memo cache instead of
    /// a real execution (0 for techniques that never repeat a spec).
    pub cache_hits: usize,
    /// Candidates rejected by the static precision-safety analysis
    /// without a trial (0 for techniques that don't consult it).
    pub pruned_static: usize,
    /// Final object type distribution.
    pub types: TypeDistribution,
    /// Final conversion-method distribution.
    pub conversions: ConversionDistribution,
}

/// One `label → precision` assignment of a [`SpecSnapshot`], sorted by
/// label so serialization is canonical (byte-identical for equal specs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TargetEntry {
    /// Memory-object label.
    pub label: String,
    /// Storage precision chosen for it.
    pub precision: Precision,
}

/// One transfer-plan assignment of a [`SpecSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanEntry {
    /// Memory-object label.
    pub label: String,
    /// Wire (intermediate) precision of the transfer.
    pub intermediate: Precision,
    /// Host-side conversion method.
    pub host_method: HostMethod,
}

/// One in-kernel cast of a [`SpecSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelCastEntry {
    /// Kernel name.
    pub kernel: String,
    /// Parameter name.
    pub param: String,
    /// Compute precision the parameter is cast to.
    pub precision: Precision,
}

/// A [`ScalingSpec`] in canonical (sorted-entry) serialized form. The
/// spec's maps serialize as sorted entry lists, so two equal specs always
/// produce byte-identical snapshots — the property the crash-resume
/// acceptance diff relies on.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SpecSnapshot {
    /// Per-object storage precisions (sorted by label).
    pub targets: Vec<TargetEntry>,
    /// Host→device transfer plans (sorted by label).
    pub write_plans: Vec<PlanEntry>,
    /// Device→host transfer plans (sorted by label).
    pub read_plans: Vec<PlanEntry>,
    /// In-kernel compute casts (sorted by kernel, then parameter).
    pub in_kernel: Vec<KernelCastEntry>,
}

impl SpecSnapshot {
    /// Canonical snapshot of a spec.
    #[must_use]
    pub fn of(spec: &ScalingSpec) -> SpecSnapshot {
        let mut targets: Vec<TargetEntry> = spec
            .object_targets
            .iter()
            .map(|(label, &precision)| TargetEntry {
                label: label.clone(),
                precision,
            })
            .collect();
        targets.sort_by(|a, b| a.label.cmp(&b.label));
        let plans = |map: &std::collections::HashMap<String, PlanChoice>| {
            let mut entries: Vec<PlanEntry> = map
                .iter()
                .map(|(label, plan)| PlanEntry {
                    label: label.clone(),
                    intermediate: plan.intermediate,
                    host_method: plan.host_method,
                })
                .collect();
            entries.sort_by(|a, b| a.label.cmp(&b.label));
            entries
        };
        let mut in_kernel: Vec<KernelCastEntry> = spec
            .in_kernel
            .iter()
            .flat_map(|(kernel, casts)| {
                casts.iter().map(|(param, &precision)| KernelCastEntry {
                    kernel: kernel.clone(),
                    param: param.clone(),
                    precision,
                })
            })
            .collect();
        in_kernel.sort_by(|a, b| (&a.kernel, &a.param).cmp(&(&b.kernel, &b.param)));
        SpecSnapshot {
            targets,
            write_plans: plans(&spec.write_plans),
            read_plans: plans(&spec.read_plans),
            in_kernel,
        }
    }

    /// Reconstructs the spec the snapshot was taken from.
    #[must_use]
    pub fn to_spec(&self) -> ScalingSpec {
        let mut spec = ScalingSpec::baseline();
        for t in &self.targets {
            spec.object_targets.insert(t.label.clone(), t.precision);
        }
        for p in &self.write_plans {
            spec.write_plans.insert(
                p.label.clone(),
                PlanChoice {
                    intermediate: p.intermediate,
                    host_method: p.host_method,
                },
            );
        }
        for p in &self.read_plans {
            spec.read_plans.insert(
                p.label.clone(),
                PlanChoice {
                    intermediate: p.intermediate,
                    host_method: p.host_method,
                },
            );
        }
        for c in &self.in_kernel {
            spec.in_kernel
                .entry(c.kernel.clone())
                .or_default()
                .insert(c.param.clone(), c.precision);
        }
        spec
    }
}

/// The durable form of a [`Tuned`] result: the chosen configuration and
/// every number the acceptance criteria compare, in canonical order.
/// Equal tuning results serialize to byte-identical snapshots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TunedSnapshot {
    /// The chosen configuration, canonicalized.
    pub config: SpecSnapshot,
    /// Total virtual time of the chosen configuration, in seconds.
    pub time_secs: f64,
    /// Kernel-only virtual time, in seconds.
    pub kernel_secs: f64,
    /// Output quality vs the full-precision reference.
    pub quality: f64,
    /// Baseline total time in seconds (speedup denominator).
    pub baseline_secs: f64,
    /// Charged trials.
    pub trials: usize,
    /// Memo-cache hits.
    pub cache_hits: usize,
    /// Candidates rejected statically, without a trial.
    pub pruned_static: usize,
    /// The target output quality the run was tuned against.
    pub toq: f64,
    /// Hardware fingerprint of the system the spec was tuned on —
    /// checked on load so a snapshot can never silently serve decisions
    /// made for different hardware.
    pub system_fingerprint: u64,
}

impl Tuned {
    /// The durable snapshot of this result.
    #[must_use]
    pub fn snapshot(&self) -> TunedSnapshot {
        TunedSnapshot {
            config: SpecSnapshot::of(&self.config),
            time_secs: self.eval.time.as_secs(),
            kernel_secs: self.eval.kernel_time.as_secs(),
            quality: self.eval.quality,
            baseline_secs: self.baseline_time.as_secs(),
            trials: self.trials,
            cache_hits: self.cache_hits,
            pruned_static: self.pruned_static,
            toq: self.toq,
            system_fingerprint: self.system_fingerprint,
        }
    }

    /// Persists the result atomically under the checksummed snapshot
    /// container — the artifact a resumed tune is diffed against.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures as [`PersistError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        let json = serde_json::to_string(&self.snapshot())
            .map_err(|e| PersistError::Decode(e.to_string()))?;
        snapshot::save(path, snapshot::KIND_TUNED, json.as_bytes())
    }

    /// Loads a previously saved result snapshot, verifying the container
    /// (magic, version, kind, CRCs) *and* that the snapshot was tuned on
    /// `system`'s hardware before decoding is trusted — a spec tuned on
    /// another system must be a typed error, never a silently mis-served
    /// configuration.
    ///
    /// # Errors
    ///
    /// The container's taxonomy (truncation, checksum, kind, version
    /// mismatches), [`PersistError::Decode`] for malformed payloads, and
    /// [`PersistError::ContextMismatch`] when the snapshot's system
    /// fingerprint is not `system`'s.
    pub fn load(
        path: &Path,
        system: &prescaler_sim::SystemModel,
    ) -> Result<TunedSnapshot, PersistError> {
        let snap = Tuned::load_unchecked(path)?;
        let expected = system.fingerprint();
        if snap.system_fingerprint != expected {
            return Err(PersistError::ContextMismatch {
                expected,
                got: snap.system_fingerprint,
            });
        }
        Ok(snap)
    }

    /// [`Tuned::load`] without the system-fingerprint check — for
    /// cross-system reporting tools that inspect foreign snapshots on
    /// purpose. Serving paths should always use the checked load.
    ///
    /// # Errors
    ///
    /// The container's taxonomy plus [`PersistError::Decode`].
    pub fn load_unchecked(path: &Path) -> Result<TunedSnapshot, PersistError> {
        let payload = snapshot::load(path, snapshot::KIND_TUNED)?;
        serde_json::from_slice(&payload).map_err(|e| PersistError::Decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_app;
    use prescaler_ocl::PlanChoice;
    use prescaler_polybench::{BenchKind, PolyApp};
    use prescaler_sim::SystemModel;

    fn gemm_profile() -> AppProfile {
        profile_app(&PolyApp::tiny(BenchKind::Gemm), &SystemModel::system1()).unwrap()
    }

    #[test]
    fn baseline_distribution_is_all_double_no_conversion() {
        let profile = gemm_profile();
        let spec = ScalingSpec::baseline();
        let t = type_distribution(&profile, &spec);
        assert_eq!(t.double, 3);
        assert_eq!(t.half + t.single, 0);
        assert_eq!(t.fraction(Precision::Double), 1.0);
        let c = conversion_distribution(&profile, &spec);
        assert_eq!(c.none, 4, "3 writes + 1 read, all unconverted");
        assert_eq!(c.converting(), 0);
    }

    #[test]
    fn scaled_objects_classify_by_method() {
        let profile = gemm_profile();
        let spec = ScalingSpec::baseline()
            .with_target("A", Precision::Single)
            .with_write_plan(
                "A",
                PlanChoice {
                    intermediate: Precision::Single,
                    host_method: HostMethod::Multithread { threads: 20 },
                },
            )
            .with_target("B", Precision::Single)
            .with_write_plan(
                "B",
                PlanChoice {
                    intermediate: Precision::Double, // wire carries source → device converts
                    host_method: HostMethod::Loop,
                },
            )
            .with_target("C", Precision::Half)
            .with_write_plan(
                "C",
                PlanChoice {
                    intermediate: Precision::Half,
                    host_method: HostMethod::Pipelined {
                        threads: 20,
                        chunks: 8,
                    },
                },
            )
            .with_read_plan(
                "C",
                PlanChoice {
                    intermediate: Precision::Single, // half → (single wire) → double
                    host_method: HostMethod::Loop,
                },
            );
        let t = type_distribution(&profile, &spec);
        assert_eq!((t.half, t.single, t.double), (1, 2, 0));
        let c = conversion_distribution(&profile, &spec);
        assert_eq!(c.host_multithread, 1, "A");
        assert_eq!(c.device, 1, "B");
        assert_eq!(c.pipelined, 1, "C write");
        assert_eq!(c.transient, 1, "C read through single");
        assert_eq!(c.none, 0);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn tuned_snapshot_round_trips_bit_exactly() {
        use crate::inspector::SystemInspector;
        use crate::search::PreScaler;
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let tuned = PreScaler::new(&system, &db, 0.9)
            .tune(&PolyApp::tiny(BenchKind::Gemm))
            .unwrap();
        let dir = std::env::temp_dir().join("prescaler_tuned_snapshot");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gemm.snap");
        tuned.save(&path).unwrap();
        let loaded = Tuned::load(&path, &system).unwrap();
        assert_eq!(loaded, tuned.snapshot());
        assert_eq!(loaded.config.to_spec(), tuned.config);
        assert_eq!(
            loaded.time_secs.to_bits(),
            tuned.eval.time.as_secs().to_bits()
        );
        assert_eq!(loaded.quality.to_bits(), tuned.eval.quality.to_bits());
        // Saving the same result twice is byte-identical on disk.
        let first = std::fs::read(&path).unwrap();
        tuned.save(&path).unwrap();
        assert_eq!(first, std::fs::read(&path).unwrap());
        // A wrong-kind load is a typed error, not a misparse.
        assert!(matches!(
            crate::inspector::InspectorDb::load(&path),
            Err(PersistError::WrongKind { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tuned_snapshot_refuses_a_foreign_system() {
        use crate::inspector::SystemInspector;
        use crate::search::PreScaler;
        let system1 = SystemModel::system1();
        let db = SystemInspector::inspect(&system1);
        let tuned = PreScaler::new(&system1, &db, 0.9)
            .tune(&PolyApp::tiny(BenchKind::Gemm))
            .unwrap();
        let dir = std::env::temp_dir().join("prescaler_tuned_foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gemm.snap");
        tuned.save(&path).unwrap();
        // A spec tuned on System 1 must not load for System 2's hardware…
        let system2 = SystemModel::system2();
        let err = Tuned::load(&path, &system2).unwrap_err();
        match err {
            PersistError::ContextMismatch { expected, got } => {
                assert_eq!(expected, system2.fingerprint());
                assert_eq!(got, system1.fingerprint());
            }
            other => panic!("expected ContextMismatch, got {other}"),
        }
        // …but a relabeled or drifting copy of System 1 is the same metal.
        let mut relabeled = SystemModel::system1();
        relabeled.name = "System 1 (relabeled)".into();
        assert!(Tuned::load(&path, &relabeled).is_ok());
        // The unchecked load stays available for cross-system reporting.
        assert!(Tuned::load_unchecked(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unplanned_scaled_transfer_counts_as_host_loop() {
        let profile = gemm_profile();
        let spec = ScalingSpec::baseline().with_target("A", Precision::Single);
        let c = conversion_distribution(&profile, &spec);
        assert_eq!(c.host_loop, 1);
    }
}
