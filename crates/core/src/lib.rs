//! **PreScaler** — an automatic, system-aware precision-scaling framework
//! for (simulated) heterogeneous systems, reproducing Kang, Choi & Park,
//! CGO 2020.
//!
//! PreScaler scales floating-point precision at the **memory-object
//! level**, so both PCIe data transfer and kernel execution benefit, and
//! finds the best mixed-precision configuration with a decision-tree
//! search whose conversion-method choices come from a one-time system
//! inspection instead of execution trials:
//!
//! * [`inspector::SystemInspector`] → [`inspector::InspectorDb`] — the
//!   one-time system probe (paper §4.2);
//! * [`profiler::profile_app`] — dynamic application profiling (§4.3);
//! * [`search::PreScaler`] — the decision maker: pre-full-precision
//!   seeding, per-object normal search, wildcard/transient test (§4.4,
//!   Algorithms 1–2);
//! * [`engine::TrialEngine`] — memoized, speculatively parallel
//!   candidate evaluation shared by the search and every baseline;
//! * [`baselines`] — the paper's comparison points (In-Kernel, PFP);
//! * [`search_space`] — Equations 1–3;
//! * [`report`] — type / conversion-method distribution extraction.
//!
//! # Example
//!
//! ```no_run
//! use prescaler_core::inspector::SystemInspector;
//! use prescaler_core::search::PreScaler;
//! use prescaler_polybench::{BenchKind, InputSet, PolyApp};
//! use prescaler_sim::SystemModel;
//!
//! let system = SystemModel::system1();
//! let db = SystemInspector::inspect(&system); // one-time, per system
//! let tuner = PreScaler::new(&system, &db, 0.9);
//! let tuned = tuner.tune(&PolyApp::scaled(BenchKind::Gemm, InputSet::Default, 0.25))?;
//! println!("speedup {:.2}x at quality {:.3}", tuned.speedup(), tuned.eval.quality);
//! # Ok::<(), prescaler_ocl::OclError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod drift;
pub mod engine;
pub mod inspector;
pub mod profiler;
pub mod recovery;
pub mod report;
pub mod search;
pub mod search_space;
pub mod static_prune;

pub use drift::{retune_warm, revalidate, DriftReport, DriftVerdict, Revalidation};
pub use engine::{TrialEngine, TrialStats};
pub use inspector::{DbError, InspectorDb, SystemInspector};
pub use profiler::{profile_app, AppProfile};
pub use recovery::{tune_durable, tune_durable_with_crash, DurableReport, TuneError};
pub use report::{
    conversion_distribution, type_distribution, GuardSummary, ResultRow, ServeReport, ServeSummary,
    SpecSnapshot, TunedSnapshot,
};
pub use search::{Evaluation, PreScaler, Tuned};
pub use static_prune::StaticAnalysis;
