//! Trial-free candidate pruning from static value-range analysis.
//!
//! [`StaticAnalysis`] bridges the IR-level range dataflow
//! ([`prescaler_ir::range`]) to the tuner's world of *memory objects*:
//! it replays the baseline profiling log, seeding each object's element
//! distribution from the host-write statistics the profiler recorded
//! (themselves the realization of the application's declared `InputGen`
//! model), then abstract-interprets every recorded kernel launch —
//! parameter→label bindings, scalar arguments, and NDRange all come
//! from the log — chaining ranges across launches through shared
//! objects. The result is a per-object list of *contributions*: the
//! host-written values plus every kernel store, each with sound bounds,
//! a distribution-mean estimate, and a definitely-executes flag.
//!
//! [`StaticAnalysis::verdict`] folds an object's contributions into a
//! [`PrecisionVerdict`] for a target precision. The search skips
//! `ProvenUnsafe` candidates without charging a trial — sound because a
//! proof of overflow-to-Inf (or total subnormal flush) on stored data
//! implies the TOQ oracle must fail, which is exactly the event that
//! terminates the search's descent anyway. Everything short of proof is
//! `Unknown` and trials normally, so enabling pruning never changes
//! *what* the tuner decides — only how many trials it pays for (pinned
//! by the prune-equivalence suite across the polybench × fault-seed
//! matrix).
//!
//! One modelling precondition rides on the distributional (mean-based)
//! proofs: *within* a kernel launch, value provenance tracks which
//! draws a product's factors share and drops the mean whenever they
//! could be adversely correlated, but *across* launches distinct
//! memory objects are assumed independently generated. The declared
//! `InputGen` models satisfy this (each object is drawn separately),
//! and chained intermediates lose their means at the cross-launch hull
//! anyway unless the distributions agree exactly; interval-only proofs
//! carry no such assumption.

use crate::profiler::AppProfile;
use prescaler_ir::range::{
    analyze_kernel, verdict_for, LaunchBounds, PrecisionVerdict, ValueRange,
};
use prescaler_ir::{Precision, Program};
use prescaler_ocl::Event;
use std::collections::BTreeMap;

/// The tuner-facing product of the static range analysis: per-object
/// value contributions and the verdicts they support.
#[derive(Clone, Debug, Default)]
pub struct StaticAnalysis {
    /// Per-label `(range, definite)` contributions: index 0 is the
    /// host-written (or zero-initialized) content, the rest are kernel
    /// stores in launch order.
    contributions: BTreeMap<String, Vec<(ValueRange, bool)>>,
}

impl StaticAnalysis {
    /// Analyzes one application's kernels under its baseline profile.
    ///
    /// Kernels the program no longer contains, or launches recorded
    /// before this instrumentation existed, simply contribute nothing —
    /// the affected objects degrade to `Unknown` verdicts (no pruning),
    /// never to a wrong proof.
    #[must_use]
    pub fn of(program: &Program, profile: &AppProfile) -> StaticAnalysis {
        let log = &profile.log;
        let mut contributions: BTreeMap<String, Vec<(ValueRange, bool)>> = BTreeMap::new();
        // Running element distribution per object, chained across
        // launches. Device buffers are zero-filled at creation, so an
        // object with no host write starts exactly at 0.
        let mut ranges: BTreeMap<String, ValueRange> = BTreeMap::new();
        for obj in &log.objects {
            let seed = match obj.host_written {
                Some(s) => ValueRange::with_mean(s.lo, s.hi, s.mean),
                None => ValueRange::exact(0.0),
            };
            ranges.insert(obj.label.clone(), seed);
            contributions.insert(obj.label.clone(), vec![(seed, true)]);
        }

        for event in &log.events {
            let Event::KernelLaunch {
                kernel,
                args,
                scalar_args,
                global,
                ..
            } = event
            else {
                continue;
            };
            let Some(k) = program.kernel(kernel) else {
                continue;
            };
            let mut env = LaunchBounds {
                global: *global,
                ..LaunchBounds::default()
            };
            for (param, label) in args {
                let r = ranges.get(label).copied().unwrap_or(ValueRange::TOP);
                env.buffers.insert(param.clone(), r);
            }
            for (param, v) in scalar_args {
                env.scalars.insert(param.clone(), *v);
            }
            for store in analyze_kernel(k, &env) {
                let Some((_, label)) = args.iter().find(|(p, _)| *p == store.buf) else {
                    continue; // store through an unbound name: ignore
                };
                contributions
                    .entry(label.clone())
                    .or_default()
                    .push((store.range, store.definite));
                // A store leaves each element either untouched or at the
                // stored value — the hull is the sound post-launch
                // distribution for later launches reading this object.
                let merged = ranges
                    .get(label)
                    .copied()
                    .unwrap_or(ValueRange::TOP)
                    .hull(store.range);
                ranges.insert(label.clone(), merged);
            }
        }
        StaticAnalysis { contributions }
    }

    /// The verdict for storing `label` at `target` precision. Objects
    /// the analysis never saw are `Unknown`.
    #[must_use]
    pub fn verdict(&self, label: &str, target: Precision) -> PrecisionVerdict {
        match self.contributions.get(label) {
            Some(c) => verdict_for(c, target),
            None => PrecisionVerdict::Unknown,
        }
    }

    /// Whether demoting `label` to `target` is proven unsafe.
    #[must_use]
    pub fn proven_unsafe(&self, label: &str, target: Precision) -> bool {
        matches!(
            self.verdict(label, target),
            PrecisionVerdict::ProvenUnsafe(_)
        )
    }

    /// Magnitude-envelope priors for the runtime guard: per object with
    /// a fully finite proven value range, the largest magnitude the
    /// analysis admits. A guard seeded with these never trips its
    /// envelope on values the static analysis already proved possible.
    #[must_use]
    pub fn envelope_priors(&self) -> Vec<(String, f64)> {
        self.contributions
            .iter()
            .filter_map(|(label, contribs)| {
                let mut bound = 0.0_f64;
                for (r, _) in contribs {
                    if !r.bounds.is_finite() {
                        return None;
                    }
                    bound = bound.max(r.bounds.max_abs());
                }
                Some((label.clone(), bound))
            })
            .collect()
    }

    /// Objects the analysis has contributions for (profiler-seen
    /// labels, in sorted order).
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        self.contributions.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_app;
    use prescaler_ocl::HostApp;
    use prescaler_polybench::{BenchKind, InputSet, PolyApp};
    use prescaler_sim::SystemModel;

    fn analyze(kind: BenchKind, input: InputSet, scale: f64) -> StaticAnalysis {
        let system = SystemModel::system1();
        let app = PolyApp::scaled(kind, input, scale);
        let profile = profile_app(&app, &system).unwrap();
        StaticAnalysis::of(&app.program(), &profile)
    }

    #[test]
    fn gemm_default_output_is_proven_unsafe_for_half() {
        // Default GEMM inputs are uniform in (0, 513): inner products
        // accumulate to ~1e6 ≫ 65504, a distributional overflow proof.
        let a = analyze(BenchKind::Gemm, InputSet::Default, 0.1);
        assert!(a.proven_unsafe("C", Precision::Half), "{:?}", {
            a.verdict("C", Precision::Half)
        });
        // The same values comfortably fit single precision.
        assert_eq!(
            a.verdict("C", Precision::Single),
            PrecisionVerdict::SafeDemote
        );
        // Input matrices themselves are within half's range; the
        // verdict must not block demoting them.
        assert!(!a.proven_unsafe("A", Precision::Half));
        assert!(!a.proven_unsafe("B", Precision::Half));
    }

    #[test]
    fn gemm_random_inputs_are_not_pruned() {
        // Random inputs are uniform in (0, 1): accumulations stay tiny
        // and nothing can be proven unsafe.
        let a = analyze(BenchKind::Gemm, InputSet::Random, 0.1);
        for label in a.labels() {
            assert!(
                !matches!(
                    a.verdict(label, Precision::Half),
                    PrecisionVerdict::ProvenUnsafe(_)
                ),
                "{label} wrongly pruned"
            );
        }
    }

    #[test]
    fn chained_kernels_prune_intermediates() {
        // 2MM stores tmp = alpha·A·B, then D = tmp·C + beta·D: the
        // first product already overflows half with default inputs.
        let a = analyze(BenchKind::TwoMM, InputSet::Default, 0.1);
        let pruned = a
            .labels()
            .iter()
            .filter(|l| a.proven_unsafe(l, Precision::Half))
            .count();
        assert!(pruned >= 1, "no 2mm object proven unsafe");
    }

    #[test]
    fn envelope_priors_cover_proven_ranges() {
        let a = analyze(BenchKind::Gemm, InputSet::Default, 0.1);
        let priors = a.envelope_priors();
        // C's range may be infinite on some profiles — absence is the
        // specified degradation, not an error.
        if let Some((_, bound)) = priors.iter().find(|(l, _)| l == "C") {
            assert!(*bound > 65504.0, "bound {bound}");
        }
        // Input objects always get finite priors at least as large as
        // their input bounds.
        let aa = priors.iter().find(|(l, _)| l == "A").expect("A bounded");
        assert!(aa.1 >= 500.0);
    }

    #[test]
    fn unknown_labels_are_unknown() {
        let a = analyze(BenchKind::Gemm, InputSet::Default, 0.1);
        assert_eq!(
            a.verdict("ghost", Precision::Half),
            PrecisionVerdict::Unknown
        );
    }
}
