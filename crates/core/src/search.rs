//! The decision maker: PreScaler's decision-tree search (paper §4.4,
//! Algorithms 1 and 2).
//!
//! The search runs per memory object, in descending effective-execution-
//! time order:
//!
//! 1. **Pre-full-precision scaling** (§4.4.1) seeds every object's initial
//!    type with the best uniform-precision configuration.
//! 2. **Normal search** (Alg. 1, lines 1–13) tries each target precision
//!    in descending order, with the best *direct* conversion method per
//!    event predicted from the inspector database (no execution needed to
//!    pick methods — only one run per target to measure time and check
//!    TOQ), stopping at the first TOQ failure.
//! 3. **Wildcard test** (Alg. 1, lines 14–32) re-scores the accepted
//!    targets allowing *transient* wire types (including the TOQ-failed
//!    type), using predicted transfer times plus the kernel times already
//!    measured; a risky wildcard (compressed wire below both endpoint
//!    types, or a failed type as intermediate) is verified with one real
//!    execution before being adopted.

use crate::engine::TrialEngine;
use crate::inspector::{valid_intermediate, InspectorDb, PlanKey, SystemInspector};
use crate::profiler::{profile_app, AppProfile, ObjectProfile};
use crate::static_prune::StaticAnalysis;
use prescaler_ir::Precision;
use prescaler_ocl::{HostApp, OclError, PlanChoice, ScalingSpec};
use prescaler_sim::{Direction, HostMethod, SimTime, SystemModel};

/// One measured configuration evaluation.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Total virtual program time.
    pub time: SimTime,
    /// Kernel-only portion.
    pub kernel_time: SimTime,
    /// Output quality vs the baseline reference.
    pub quality: f64,
}

/// The outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct Tuned {
    /// The chosen configuration.
    pub config: ScalingSpec,
    /// Its measured evaluation.
    pub eval: Evaluation,
    /// Baseline total time (speedup denominator).
    pub baseline_time: SimTime,
    /// Number of *charged* trials (profiling, PFP seeding, search,
    /// verification, final run) — what the sequential search pays for.
    /// Memoized repeats are counted in [`Tuned::cache_hits`] instead.
    pub trials: usize,
    /// Evaluations answered from the trial-engine cache instead of a
    /// real execution (e.g. a wildcard candidate that reduces to an
    /// already-measured configuration).
    pub cache_hits: usize,
    /// The baseline profile (for reports).
    pub profile: AppProfile,
    /// The target output quality the configuration was tuned against —
    /// carried with the config so guarded serving can enforce the same
    /// floor without re-deriving it.
    pub toq: f64,
    /// Hardware fingerprint of the system this configuration was tuned
    /// on ([`SystemModel::fingerprint`]) — the paper's crossovers move
    /// between systems, so a spec is only meaningful together with the
    /// system it was decided against.
    pub system_fingerprint: u64,
    /// Candidates the static precision-safety analysis rejected without
    /// a trial (skipped entirely and never charged) — the work the
    /// analysis saved, reported beside [`Tuned::trials`].
    pub pruned_static: usize,
}

impl Tuned {
    /// Speedup over the full-precision baseline.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline_time / self.eval.time
    }

    /// Canonical digest of everything the tuner *decided*: the chosen
    /// configuration, its evaluation bits, the baseline time, the TOQ,
    /// and the system fingerprint. Deliberately excludes the effort
    /// accounting (`trials`, `cache_hits`, `pruned_static`), which
    /// legitimately differs between pruning-on and pruning-off runs —
    /// equal digests mean the same decision was reached.
    #[must_use]
    pub fn decision_digest(&self) -> u64 {
        // Canonical byte encoding (maps sorted, fields `;`-separated),
        // folded through FNV-1a.
        let prec = |p: Precision| match p {
            Precision::Half => "h",
            Precision::Single => "s",
            Precision::Double => "d",
        };
        let mut enc = String::new();
        let mut sorted_targets: Vec<_> = self.config.object_targets.iter().collect();
        sorted_targets.sort_by(|a, b| a.0.cmp(b.0));
        for (label, p) in sorted_targets {
            enc.push_str(&format!("t:{label}={};", prec(*p)));
        }
        for (tag, plans) in [
            ("w", &self.config.write_plans),
            ("r", &self.config.read_plans),
        ] {
            let mut sorted: Vec<_> = plans.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(b.0));
            for (label, plan) in sorted {
                enc.push_str(&format!(
                    "{tag}:{label}={}/{:?};",
                    prec(plan.intermediate),
                    plan.host_method
                ));
            }
        }
        let mut kernels: Vec<_> = self.config.in_kernel.iter().collect();
        kernels.sort_by(|a, b| a.0.cmp(b.0));
        for (kernel, casts) in kernels {
            let mut sorted: Vec<_> = casts.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(b.0));
            for (param, p) in sorted {
                enc.push_str(&format!("k:{kernel}.{param}={};", prec(*p)));
            }
        }
        enc.push_str(&format!(
            "e:{:016x}/{:016x}/{:016x};b:{:016x};q:{:016x};f:{:016x}",
            self.eval.time.as_secs().to_bits(),
            self.eval.kernel_time.as_secs().to_bits(),
            self.eval.quality.to_bits(),
            self.baseline_time.as_secs().to_bits(),
            self.toq.to_bits(),
            self.system_fingerprint
        ));
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in enc.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// The PreScaler tuner.
#[derive(Clone, Copy, Debug)]
pub struct PreScaler<'a> {
    system: &'a SystemModel,
    db: &'a InspectorDb,
    toq: f64,
    use_wildcard: bool,
    use_pfp_seed: bool,
    use_static_prune: bool,
}

impl<'a> PreScaler<'a> {
    /// Creates a tuner for one system with a target output quality.
    #[must_use]
    pub fn new(system: &'a SystemModel, db: &'a InspectorDb, toq: f64) -> PreScaler<'a> {
        PreScaler {
            system,
            db,
            toq,
            use_wildcard: true,
            use_pfp_seed: true,
            use_static_prune: true,
        }
    }

    /// The configured TOQ.
    #[must_use]
    pub fn toq(&self) -> f64 {
        self.toq
    }

    /// The system this tuner targets.
    #[must_use]
    pub fn system(&self) -> &'a SystemModel {
        self.system
    }

    /// Disables the wildcard (transient-conversion) test — an ablation of
    /// the paper's §4.4 design choice.
    #[must_use]
    pub fn without_wildcard(mut self) -> PreScaler<'a> {
        self.use_wildcard = false;
        self
    }

    /// Disables pre-full-precision seeding (§4.4.1) — the decision tree
    /// starts from the original types instead.
    #[must_use]
    pub fn without_pfp_seed(mut self) -> PreScaler<'a> {
        self.use_pfp_seed = false;
        self
    }

    /// Disables static precision-safety pruning — every candidate is
    /// trialed, even ones the range analysis proves must fail. The
    /// prune-equivalence suite pins that this changes only the trial
    /// count, never the decision.
    #[must_use]
    pub fn without_static_prune(mut self) -> PreScaler<'a> {
        self.use_static_prune = false;
        self
    }

    /// Runs the full pipeline: profile → PFP seed → decision tree → final
    /// configuration.
    ///
    /// Degrades gracefully under injected faults: a *candidate* trial that
    /// fails (exhausted retries, timeout, corrupted output) is pruned
    /// exactly like a TOQ failure, and the chosen configuration must pass
    /// a final acceptance check on the clean twin of the system — quality
    /// at or above TOQ *and* time no worse than the full-precision
    /// baseline — or the baseline configuration is returned instead.
    ///
    /// # Errors
    ///
    /// Propagates [`OclError`] only from the clean baseline profiling run
    /// (an application that cannot run at full precision cannot be tuned).
    pub fn tune(&self, app: &dyn HostApp) -> Result<Tuned, OclError> {
        let profile = profile_app(app, self.system)?;
        let engine = TrialEngine::new(app, self.system, &profile);
        Ok(self.tune_with_engine(&engine))
    }

    /// [`PreScaler::tune`] over a caller-supplied [`TrialEngine`] — the
    /// engine carries the profile and the memo cache, so report/ablation
    /// paths that evaluate several techniques on one app can share the
    /// profiling run (and any overlapping trials) instead of repeating
    /// them. The profiling run is charged to this tuner's `trials`.
    #[must_use]
    pub fn tune_with_engine(&self, engine: &TrialEngine) -> Tuned {
        let profile = engine.profile();
        let before = engine.stats();

        // Static precision-safety analysis over the baseline profile:
        // one pass up front, consulted (for free) before every trial.
        let analysis = self
            .use_static_prune
            .then(|| StaticAnalysis::of(&engine.app().program(), profile));

        // --- Pre-full-precision scaling (also the PFP baseline). ---
        let (mut current, mut current_eval) = (
            ScalingSpec::baseline(),
            Evaluation {
                time: profile.baseline_time,
                kernel_time: profile.log.timeline.kernel,
                quality: 1.0,
            },
        );
        if self.use_pfp_seed {
            (current, current_eval) = self.pre_full_precision(engine, analysis.as_ref());
        }

        // --- Decision tree over objects. ---
        for obj in &profile.scaling_order {
            (current, current_eval) =
                self.tune_object(engine, analysis.as_ref(), obj, current, current_eval);
        }

        // --- Final acceptance run of the chosen configuration, on the
        // clean twin of the system: the never-worse-than-baseline
        // guarantee must not hinge on injected noise. ---
        let chosen = match engine.trial_clean(&current).0 {
            Some(eval) if eval.quality >= self.toq && eval.time <= profile.baseline_time => {
                (current, eval)
            }
            // Safety net: the chosen configuration failed TOQ, regressed
            // past the baseline, or could not even run — fall back to the
            // full-precision baseline configuration.
            _ => (
                ScalingSpec::baseline(),
                Evaluation {
                    time: profile.baseline_time,
                    kernel_time: profile.log.timeline.kernel,
                    quality: 1.0,
                },
            ),
        };

        let after = engine.stats();
        Tuned {
            config: chosen.0,
            eval: chosen.1,
            baseline_time: profile.baseline_time,
            trials: 1 + (after.charged - before.charged), // +1: profiling
            cache_hits: after.cache_hits - before.cache_hits,
            profile: profile.clone(),
            toq: self.toq,
            system_fingerprint: self.system.fingerprint(),
            pruned_static: after.pruned_static - before.pruned_static,
        }
    }

    /// Whether the static analysis proves this candidate spec must fail
    /// the TOQ oracle: some object it demotes has a `ProvenUnsafe`
    /// verdict at its target precision.
    fn spec_proven_unsafe(
        &self,
        analysis: Option<&StaticAnalysis>,
        profile: &AppProfile,
        spec: &ScalingSpec,
    ) -> bool {
        let Some(analysis) = analysis else {
            return false;
        };
        profile.scaling_order.iter().any(|obj| {
            let target = spec.target_for(&obj.label, obj.original);
            target != obj.original && analysis.proven_unsafe(&obj.label, target)
        })
    }

    /// §4.4.1: test uniform-precision configurations and return the best
    /// one as the tree's starting point. Both uniform candidates are
    /// speculatively prefetched; the replay below keeps the sequential
    /// pruning semantics (a failed type stops the descent).
    fn pre_full_precision(
        &self,
        engine: &TrialEngine,
        analysis: Option<&StaticAnalysis>,
    ) -> (ScalingSpec, Evaluation) {
        let profile = engine.profile();
        let mut best = (
            ScalingSpec::baseline(),
            Evaluation {
                time: profile.baseline_time,
                kernel_time: profile.log.timeline.kernel,
                quality: 1.0,
            },
        );
        let uniform = |target: Precision| {
            let mut spec = ScalingSpec::baseline();
            for obj in &profile.scaling_order {
                spec = self.apply_object_target(spec, profile, &obj.label, target);
            }
            spec
        };
        let candidates: Vec<ScalingSpec> = [Precision::Single, Precision::Half]
            .into_iter()
            .map(uniform)
            .collect();
        // Speculate only on candidates the replay below can reach: the
        // descent stops at the first statically-rejected configuration.
        let reachable = candidates
            .iter()
            .position(|s| self.spec_proven_unsafe(analysis, profile, s))
            .unwrap_or(candidates.len());
        engine.prefetch(&candidates[..reachable]);
        for spec in candidates {
            if self.spec_proven_unsafe(analysis, profile, &spec) {
                // Proven to fail the TOQ oracle: skip the trial entirely
                // and stop the descent exactly where the oracle would
                // have stopped it.
                engine.record_pruned();
                break;
            }
            let Some(eval) = engine.trial(&spec).0 else {
                // An unrunnable uniform configuration is pruned like a TOQ
                // failure; lower precisions will not recover it.
                break;
            };
            let failed = eval.quality < self.toq;
            if !failed && eval.time < best.1.time {
                best = (spec, eval);
            }
            if failed {
                // Lower uniform precisions will not recover quality.
                break;
            }
        }
        best
    }

    /// Algorithm 1 for one memory object. The per-target candidates are
    /// speculatively prefetched in one parallel fan-out; the sequential
    /// replay below preserves Alg. 1's pruning order, and measurements
    /// past the first TOQ failure stay uncharged in the engine's cache.
    fn tune_object(
        &self,
        engine: &TrialEngine,
        analysis: Option<&StaticAnalysis>,
        obj: &ObjectProfile,
        current: ScalingSpec,
        current_eval: Evaluation,
    ) -> (ScalingSpec, Evaluation) {
        let profile = engine.profile();
        let current_type = current.target_for(&obj.label, obj.original);

        // ---------- Normal search ----------
        let mut kernel_time_map: Vec<(Precision, SimTime)> =
            vec![(current_type, current_eval.kernel_time)];
        let mut accepted: Vec<Precision> = vec![current_type];
        let mut failed: Option<Precision> = None;
        let mut normal_best = (current.clone(), current_eval.clone());

        let targets: Vec<(Precision, ScalingSpec)> =
            [Precision::Double, Precision::Single, Precision::Half]
                .into_iter()
                .filter(|t| *t != current_type)
                .map(|t| {
                    (
                        t,
                        self.apply_object_target(current.clone(), profile, &obj.label, t),
                    )
                })
                .collect();
        let proven_unsafe = |target: Precision| {
            target != obj.original && analysis.is_some_and(|a| a.proven_unsafe(&obj.label, target))
        };
        // Speculate only up to the first statically-rejected target: the
        // replay below never asks past it.
        let reachable = targets
            .iter()
            .position(|(t, _)| proven_unsafe(*t))
            .unwrap_or(targets.len());
        let specs: Vec<ScalingSpec> = targets[..reachable]
            .iter()
            .map(|(_, s)| s.clone())
            .collect();
        engine.prefetch(&specs);

        for (target, candidate) in targets {
            if proven_unsafe(target) {
                // The range analysis proves this demotion overflows the
                // stored data, so its trial must fail TOQ: skip it
                // uncharged and stop the descent at exactly the point
                // the oracle would have (Alg. 1, line 10).
                engine.record_pruned();
                failed = Some(target);
                break;
            }
            let Some(eval) = engine.trial(&candidate).0 else {
                // A trial that cannot complete is pruned like a TOQ
                // failure (Alg. 1, line 10).
                failed = Some(target);
                break;
            };
            kernel_time_map.push((target, eval.kernel_time));
            if eval.quality < self.toq {
                failed = Some(target);
                break; // do not descend further (Alg. 1, line 10)
            }
            accepted.push(target);
            if eval.time < normal_best.1.time {
                normal_best = (candidate, eval);
            }
        }

        // ---------- Wildcard test ----------
        // Intermediates the wildcard may route through: every accepted
        // type plus the failed one (Alg. 1, line 18).
        let mut wire_types = accepted.clone();
        if let Some(f) = failed {
            wire_types.push(f);
        }

        let mut wildcard_best: Option<(ScalingSpec, SimTime, Precision)> = None;
        for &target in &accepted {
            let candidate = self.apply_object_target_with_wires(
                current.clone(),
                profile,
                &obj.label,
                target,
                &wire_types,
            );
            let Some(kernel_time) = kernel_time_map
                .iter()
                .find(|(t, _)| *t == target)
                .map(|(_, kt)| *kt)
            else {
                // Accepted targets are always measured; guard anyway so a
                // bookkeeping slip can never panic the search.
                continue;
            };
            let expected = self.expected_transfer_time(profile, &candidate) + kernel_time;
            if wildcard_best.as_ref().is_none_or(|(_, t, _)| expected < *t) {
                wildcard_best = Some((candidate, expected, target));
            }
        }

        if !self.use_wildcard {
            wildcard_best = None;
        }
        if let Some((wc_config, wc_expected, _)) = wildcard_best {
            if wc_expected < normal_best.1.time && wc_config != normal_best.0 {
                // Verify by execution when the wildcard is numerically
                // risky (failed type as wire, or a wire narrower than both
                // endpoints); otherwise adopt it on predicted time and
                // measure it to keep the running evaluation grounded. A
                // verification run that cannot complete simply rejects
                // the wildcard. A wildcard whose wires reduce to an
                // already-measured plan is answered from the memo cache.
                if let Some(eval) = engine.trial(&wc_config).0 {
                    if eval.quality >= self.toq && eval.time < normal_best.1.time {
                        return (wc_config, eval);
                    }
                }
            }
        }

        (normal_best.0, normal_best.1)
    }

    /// Applies `target` to one object in a spec, choosing the best direct
    /// conversion method per event from the inspector DB (Algorithm 2
    /// restricted to direct wires).
    fn apply_object_target(
        &self,
        spec: ScalingSpec,
        profile: &AppProfile,
        label: &str,
        target: Precision,
    ) -> ScalingSpec {
        let Some(obj) = profile.scaling_order.iter().find(|o| o.label == label) else {
            return spec; // unknown object: leave the spec untouched
        };
        self.apply_object_target_with_wires(spec, profile, label, target, &[obj.original, target])
    }

    /// Applies `target` to one object, allowing the given wire types
    /// (full Algorithm 2).
    fn apply_object_target_with_wires(
        &self,
        mut spec: ScalingSpec,
        profile: &AppProfile,
        label: &str,
        target: Precision,
        wires: &[Precision],
    ) -> ScalingSpec {
        let Some(obj) = profile.scaling_order.iter().find(|o| o.label == label) else {
            return spec; // unknown object: leave the spec untouched
        };

        if target == obj.original {
            spec.object_targets.remove(label);
        } else {
            spec.object_targets.insert(label.to_owned(), target);
        }

        if obj.written {
            if let Some((key, _)) =
                self.best_plan_or_analytic(Direction::HtoD, obj.original, target, obj.elems, wires)
            {
                spec.write_plans.insert(
                    label.to_owned(),
                    PlanChoice {
                        intermediate: key.intermediate,
                        host_method: key.host_method,
                    },
                );
            }
        } else {
            spec.write_plans.remove(label);
        }
        if obj.read_back {
            if let Some((key, _)) =
                self.best_plan_or_analytic(Direction::DtoH, target, obj.original, obj.elems, wires)
            {
                spec.read_plans.insert(
                    label.to_owned(),
                    PlanChoice {
                        intermediate: key.intermediate,
                        host_method: key.host_method,
                    },
                );
            }
        } else {
            spec.read_plans.remove(label);
        }
        spec
    }

    /// Predicted total transfer time of a configuration (the paper's
    /// `getExpectedTransferTime`): per transferred object, the DB estimate
    /// of its planned transfer.
    fn expected_transfer_time(&self, profile: &AppProfile, spec: &ScalingSpec) -> SimTime {
        let mut total = SimTime::ZERO;
        for obj in &profile.scaling_order {
            let target = spec.target_for(&obj.label, obj.original);
            if obj.written {
                let wires = spec
                    .write_plans
                    .get(&obj.label)
                    .map_or_else(|| vec![obj.original.min(target)], |p| vec![p.intermediate]);
                if let Some((_, t)) = self.best_plan_or_analytic(
                    Direction::HtoD,
                    obj.original,
                    target,
                    obj.elems,
                    &wires,
                ) {
                    total += t;
                }
            }
            if obj.read_back {
                let wires = spec
                    .read_plans
                    .get(&obj.label)
                    .map_or_else(|| vec![obj.original.min(target)], |p| vec![p.intermediate]);
                if let Some((_, t)) = self.best_plan_or_analytic(
                    Direction::DtoH,
                    target,
                    obj.original,
                    obj.elems,
                    &wires,
                ) {
                    total += t;
                }
            }
        }
        total
    }

    /// Database lookup with an analytic safety net: when the inspector DB
    /// cannot answer (missing or corrupted curves), the best plan is
    /// recomputed directly from the transfer cost model. Degraded mode
    /// costs more per decision but never blocks the search.
    fn best_plan_or_analytic(
        &self,
        direction: Direction,
        src: Precision,
        dst: Precision,
        elems: usize,
        wires: &[Precision],
    ) -> Option<(PlanKey, SimTime)> {
        if let Some(hit) = self.db.best_plan(direction, src, dst, elems, wires) {
            return Some(hit);
        }
        let mut best: Option<(PlanKey, SimTime)> = None;
        for &intermediate in wires {
            if !valid_intermediate(src, intermediate, dst) {
                continue;
            }
            let host_leg_exists = match direction {
                Direction::HtoD => src != intermediate,
                Direction::DtoH => intermediate != dst,
            };
            let methods = if host_leg_exists {
                SystemInspector::candidate_methods(self.system)
            } else {
                vec![HostMethod::Loop]
            };
            for host_method in methods {
                let key = PlanKey {
                    direction,
                    src,
                    intermediate,
                    dst,
                    host_method,
                };
                let t = key.plan().time(self.system, elems).total();
                if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                    best = Some((key, t));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::SystemInspector;
    use prescaler_polybench::{BenchKind, InputSet, PolyApp};

    fn tune(kind: BenchKind, input: InputSet, scale: f64, toq: f64) -> Tuned {
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let tuner = PreScaler::new(&system, &db, toq);
        let app = PolyApp::scaled(kind, input, scale);
        tuner.tune(&app).expect("tuning runs")
    }

    #[test]
    fn tuned_gemm_beats_baseline_and_meets_toq() {
        let r = tune(BenchKind::Gemm, InputSet::Default, 0.4, 0.9);
        assert!(r.eval.quality >= 0.9, "quality {}", r.eval.quality);
        assert!(
            r.speedup() > 1.0,
            "speedup {} must exceed 1 (baseline {} vs {})",
            r.speedup(),
            r.baseline_time,
            r.eval.time
        );
        assert!(
            r.trials >= 4,
            "profile + PFP + tree trials, got {}",
            r.trials
        );
        assert!(!r.config.is_baseline(), "some object must have been scaled");
    }

    #[test]
    fn default_gemm_output_never_lands_on_half_storage() {
        // GEMM's accumulated output overflows binary16 with default
        // inputs (inner products reach millions, far beyond 65504), so
        // the tuner must not store C as half. Input matrices *may* go to
        // half — their element values fit, and the kernel promotes the
        // multiply to the wider operand.
        let r = tune(BenchKind::Gemm, InputSet::Default, 0.3, 0.9);
        assert_ne!(
            r.config.object_targets.get("C"),
            Some(&Precision::Half),
            "accumulated output stored as half"
        );
        assert!(r.eval.quality >= 0.9);
    }

    #[test]
    fn random_inputs_unlock_lower_precision() {
        let def = tune(BenchKind::Atax, InputSet::Default, 0.05, 0.9);
        let rnd = tune(BenchKind::Atax, InputSet::Random, 0.05, 0.9);
        let count_half = |t: &Tuned| {
            t.config
                .object_targets
                .values()
                .filter(|p| **p == Precision::Half)
                .count()
        };
        assert!(
            count_half(&rnd) >= count_half(&def),
            "random inputs should allow at least as many half objects"
        );
        assert!(rnd.eval.quality >= 0.9);
    }

    #[test]
    fn stricter_toq_never_improves_speedup() {
        let loose = tune(BenchKind::Mvt, InputSet::Default, 0.05, 0.90);
        let strict = tune(BenchKind::Mvt, InputSet::Default, 0.05, 0.99);
        assert!(
            strict.speedup() <= loose.speedup() + 1e-9,
            "strict {} vs loose {}",
            strict.speedup(),
            loose.speedup()
        );
        assert!(strict.eval.quality >= 0.99);
    }

    #[test]
    fn trials_are_a_vanishing_fraction_of_the_entire_space() {
        let r = tune(BenchKind::Bicg, InputSet::Default, 0.05, 0.9);
        let spaces = crate::search_space::object_spaces(&r.profile);
        let entire = crate::search_space::entire(&spaces, 4);
        assert!(
            (r.trials as f64) < entire / 10.0,
            "trials {} vs space {entire}",
            r.trials
        );
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::inspector::SystemInspector;
    use prescaler_polybench::{BenchKind, InputSet, PolyApp};

    #[test]
    fn ablated_variants_never_beat_the_full_tuner() {
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let app = PolyApp::scaled(BenchKind::Atax, InputSet::Random, 0.1);
        let full = PreScaler::new(&system, &db, 0.9).tune(&app).unwrap();
        let no_wc = PreScaler::new(&system, &db, 0.9)
            .without_wildcard()
            .tune(&app)
            .unwrap();
        let no_seed = PreScaler::new(&system, &db, 0.9)
            .without_pfp_seed()
            .tune(&app)
            .unwrap();
        assert!(full.eval.quality >= 0.9);
        assert!(
            full.speedup() >= no_wc.speedup() - 1e-9,
            "full {} vs no-wildcard {}",
            full.speedup(),
            no_wc.speedup()
        );
        // Without PFP seeding the tree can get stuck at a local optimum
        // (the paper's §4.4.1 motivation); it must never do better.
        assert!(
            full.speedup() >= no_seed.speedup() - 1e-9,
            "full {} vs no-seed {}",
            full.speedup(),
            no_seed.speedup()
        );
    }
}
