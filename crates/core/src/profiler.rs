//! The application profiler — one baseline run under the interposition
//! runtime, distilled into what the decision maker needs.

use prescaler_ocl::{run_app, HostApp, OclError, Outputs, ProfileLog, ScalingSpec};
use prescaler_sim::{Direction, SimTime, SystemModel};

/// The distilled profile of one application on one system.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// The full event log of the baseline run.
    pub log: ProfileLog,
    /// Baseline (full-precision) outputs — the quality reference.
    pub reference: Outputs,
    /// Baseline total time — the speedup denominator.
    pub baseline_time: SimTime,
    /// Memory objects slated for scaling, in descending effective
    /// execution time (the decision-tree visit order).
    pub scaling_order: Vec<ObjectProfile>,
}

/// Per-object facts the search consults.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectProfile {
    /// Memory-object label.
    pub label: String,
    /// Element count.
    pub elems: usize,
    /// Original precision.
    pub original: prescaler_ir::Precision,
    /// Whether the app writes it to the device (HtoD events exist).
    pub written: bool,
    /// Whether the app reads it back (DtoH events exist).
    pub read_back: bool,
    /// Effective execution time (transfers + apportioned kernel time).
    pub effective_time: SimTime,
    /// Number of data-transfer events touching the object.
    pub transfer_events: usize,
}

/// Number of noisy profiling runs distilled into one median profile when
/// the system carries an active fault plan.
const PROFILE_SAMPLES: usize = 5;

/// Profiles `app` on `system`: one baseline execution under the profiling
/// runtime.
///
/// The reference run always executes on the clean twin of the system
/// ([`SystemModel::without_faults`]): the quality oracle and the speedup
/// denominator must not depend on injected noise or corruption. When the
/// system carries an active fault plan, the object visit order is instead
/// taken from the *median* (by total time) of [`PROFILE_SAMPLES`] runs on
/// the faulty system, so one unlucky sample cannot reshuffle the decision
/// tree; samples that fail outright are skipped, and if every sample
/// fails the clean log orders the objects.
///
/// # Errors
///
/// Propagates [`OclError`] from the application driver's clean run.
pub fn profile_app(app: &dyn HostApp, system: &SystemModel) -> Result<AppProfile, OclError> {
    let clean = system.without_faults();
    let (reference, log) = run_app(app, &clean, &ScalingSpec::baseline())?;
    let baseline_time = log.timeline.total();

    let noisy_median = if system.faults.is_inert() {
        None
    } else {
        // Each sample runs under a fault stream forked off a fixed salt,
        // so profiling is a pure function of `(app, system)` — never of
        // how many runs drew from the shared stream before it. A durable
        // tune resumed after a crash re-profiles and *must* reconstruct
        // the exact same object order, or the journal it replays would
        // describe a different search.
        let mut samples: Vec<ProfileLog> = (0..PROFILE_SAMPLES)
            .filter_map(|i| {
                let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
                let forked = system.clone().with_faults(system.faults.fork(salt));
                run_app(app, &forked, &ScalingSpec::baseline()).ok()
            })
            .map(|(_, l)| l)
            .collect();
        // total_cmp: a fault-corrupted (NaN) total must still produce a
        // deterministic median pick, never a panic or an order that
        // depends on the sort algorithm's treatment of incomparables.
        samples.sort_by(|a, b| {
            a.timeline
                .total()
                .as_secs()
                .total_cmp(&b.timeline.total().as_secs())
        });
        let n = samples.len();
        (n > 0).then(|| samples.swap_remove(n / 2))
    };
    let order_log = noisy_median.as_ref().unwrap_or(&log);

    let mut scaling_order = Vec::new();
    for label in order_log.objects_by_effective_time() {
        // The label came from this very log; a miss would mean the log is
        // inconsistent — skip the object rather than panic.
        let Some(info) = order_log.object(&label) else {
            continue;
        };
        let info = info.clone();
        let written = order_log.events.iter().any(|e| {
            matches!(e, prescaler_ocl::Event::Transfer { label: l, direction: Direction::HtoD, .. } if *l == label)
        });
        let read_back = order_log.events.iter().any(|e| {
            matches!(e, prescaler_ocl::Event::Transfer { label: l, direction: Direction::DtoH, .. } if *l == label)
        });
        scaling_order.push(ObjectProfile {
            effective_time: order_log.effective_time(&label),
            transfer_events: order_log.transfer_event_count(&label),
            label,
            elems: info.len,
            original: info.declared,
            written,
            read_back,
        });
    }

    Ok(AppProfile {
        log,
        reference,
        baseline_time,
        scaling_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescaler_polybench::{BenchKind, PolyApp};

    #[test]
    fn profile_captures_objects_in_effective_time_order() {
        let app = PolyApp::tiny(BenchKind::Gemm);
        let profile = profile_app(&app, &SystemModel::system1()).unwrap();
        assert_eq!(profile.scaling_order.len(), 3, "A, B, C");
        // Order is descending by effective time.
        for w in profile.scaling_order.windows(2) {
            assert!(w[0].effective_time >= w[1].effective_time);
        }
        // GEMM writes A, B, C and reads back C.
        let c = profile
            .scaling_order
            .iter()
            .find(|o| o.label == "C")
            .unwrap();
        assert!(c.written && c.read_back);
        assert_eq!(c.transfer_events, 2, "one write + one read");
        let a = profile
            .scaling_order
            .iter()
            .find(|o| o.label == "A")
            .unwrap();
        assert!(a.written && !a.read_back);
    }

    #[test]
    fn profile_keeps_reference_outputs() {
        let app = PolyApp::tiny(BenchKind::Atax);
        let profile = profile_app(&app, &SystemModel::system1()).unwrap();
        assert_eq!(profile.reference.len(), 1);
        assert_eq!(profile.reference[0].0, "Y");
        assert!(profile.baseline_time > SimTime::ZERO);
    }

    #[test]
    fn noisy_profiling_keeps_a_clean_oracle() {
        use prescaler_sim::FaultPlan;
        let faulty = SystemModel::system1().with_faults(
            FaultPlan::seeded(9)
                .with_clock_noise(0.3)
                .with_transfer_failures(0.05),
        );
        let app = PolyApp::tiny(BenchKind::Gemm);
        let clean = profile_app(&app, &SystemModel::system1()).unwrap();
        let noisy = profile_app(&app, &faulty).unwrap();
        // Reference run executes on the clean twin: baseline time and the
        // quality oracle are unaffected by the fault plan.
        assert_eq!(noisy.baseline_time, clean.baseline_time);
        assert_eq!(noisy.reference.len(), clean.reference.len());
        // The same objects are slated for scaling (order may differ).
        let labels = |p: &AppProfile| {
            let mut v: Vec<String> = p.scaling_order.iter().map(|o| o.label.clone()).collect();
            v.sort();
            v
        };
        assert_eq!(labels(&noisy), labels(&clean));
    }

    #[test]
    fn intermediate_buffers_have_no_transfer_events() {
        // ATAX's TMP never crosses PCIe.
        let app = PolyApp::tiny(BenchKind::Atax);
        let profile = profile_app(&app, &SystemModel::system1()).unwrap();
        let tmp = profile
            .scaling_order
            .iter()
            .find(|o| o.label == "TMP")
            .unwrap();
        assert!(!tmp.written && !tmp.read_back);
        assert_eq!(tmp.transfer_events, 0);
    }
}
