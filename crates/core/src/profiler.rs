//! The application profiler — one baseline run under the interposition
//! runtime, distilled into what the decision maker needs.

use prescaler_ocl::{run_app, HostApp, OclError, Outputs, ProfileLog, ScalingSpec};
use prescaler_sim::{Direction, SimTime, SystemModel};

/// The distilled profile of one application on one system.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// The full event log of the baseline run.
    pub log: ProfileLog,
    /// Baseline (full-precision) outputs — the quality reference.
    pub reference: Outputs,
    /// Baseline total time — the speedup denominator.
    pub baseline_time: SimTime,
    /// Memory objects slated for scaling, in descending effective
    /// execution time (the decision-tree visit order).
    pub scaling_order: Vec<ObjectProfile>,
}

/// Per-object facts the search consults.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectProfile {
    /// Memory-object label.
    pub label: String,
    /// Element count.
    pub elems: usize,
    /// Original precision.
    pub original: prescaler_ir::Precision,
    /// Whether the app writes it to the device (HtoD events exist).
    pub written: bool,
    /// Whether the app reads it back (DtoH events exist).
    pub read_back: bool,
    /// Effective execution time (transfers + apportioned kernel time).
    pub effective_time: SimTime,
    /// Number of data-transfer events touching the object.
    pub transfer_events: usize,
}

/// Profiles `app` on `system`: one baseline execution under the profiling
/// runtime.
///
/// # Errors
///
/// Propagates [`OclError`] from the application driver.
pub fn profile_app(app: &dyn HostApp, system: &SystemModel) -> Result<AppProfile, OclError> {
    let (reference, log) = run_app(app, system, &ScalingSpec::baseline())?;
    let baseline_time = log.timeline.total();

    let mut scaling_order = Vec::new();
    for label in log.objects_by_effective_time() {
        let info = log.object(&label).expect("label from the log").clone();
        let written = log.events.iter().any(|e| {
            matches!(e, prescaler_ocl::Event::Transfer { label: l, direction: Direction::HtoD, .. } if *l == label)
        });
        let read_back = log.events.iter().any(|e| {
            matches!(e, prescaler_ocl::Event::Transfer { label: l, direction: Direction::DtoH, .. } if *l == label)
        });
        scaling_order.push(ObjectProfile {
            effective_time: log.effective_time(&label),
            transfer_events: log.transfer_event_count(&label),
            label,
            elems: info.len,
            original: info.declared,
            written,
            read_back,
        });
    }

    Ok(AppProfile {
        log,
        reference,
        baseline_time,
        scaling_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescaler_polybench::{BenchKind, PolyApp};

    #[test]
    fn profile_captures_objects_in_effective_time_order() {
        let app = PolyApp::tiny(BenchKind::Gemm);
        let profile = profile_app(&app, &SystemModel::system1()).unwrap();
        assert_eq!(profile.scaling_order.len(), 3, "A, B, C");
        // Order is descending by effective time.
        for w in profile.scaling_order.windows(2) {
            assert!(w[0].effective_time >= w[1].effective_time);
        }
        // GEMM writes A, B, C and reads back C.
        let c = profile
            .scaling_order
            .iter()
            .find(|o| o.label == "C")
            .unwrap();
        assert!(c.written && c.read_back);
        assert_eq!(c.transfer_events, 2, "one write + one read");
        let a = profile
            .scaling_order
            .iter()
            .find(|o| o.label == "A")
            .unwrap();
        assert!(a.written && !a.read_back);
    }

    #[test]
    fn profile_keeps_reference_outputs() {
        let app = PolyApp::tiny(BenchKind::Atax);
        let profile = profile_app(&app, &SystemModel::system1()).unwrap();
        assert_eq!(profile.reference.len(), 1);
        assert_eq!(profile.reference[0].0, "Y");
        assert!(profile.baseline_time > SimTime::ZERO);
    }

    #[test]
    fn intermediate_buffers_have_no_transfer_events() {
        // ATAX's TMP never crosses PCIe.
        let app = PolyApp::tiny(BenchKind::Atax);
        let profile = profile_app(&app, &SystemModel::system1()).unwrap();
        let tmp = profile
            .scaling_order
            .iter()
            .find(|o| o.label == "TMP")
            .unwrap();
        assert!(!tmp.written && !tmp.read_back);
        assert_eq!(tmp.transfer_events, 0);
    }
}
