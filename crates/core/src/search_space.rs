//! Search-space accounting — the paper's Equations 1–3.
//!
//! These count *configurations*, not executions: Eq. 1 is the entire
//! program-level space, Eq. 2 what a naive per-object decision tree would
//! test, Eq. 3 what remains once the inspector database predicts the best
//! conversion method per target type. Figure 10(b) plots Eq. 1 (with four
//! conversion methods) against the trials PreScaler actually executed.

use crate::profiler::AppProfile;

/// Exact `base^exp` by binary exponentiation over `u128`, saturating at
/// `u128::MAX`. Event counts are small integers, so the per-object term
/// `1 + #Conv_Type × #Conv_Method^#Event` must be an exact integer —
/// `f64::powf` routes through `exp(ln ·)` and can land a hair off the
/// lattice point, which then survives into the published space tables.
fn pow_exact(base: u64, exp: u64) -> u128 {
    let mut acc: u128 = 1;
    let mut base = u128::from(base);
    let mut exp = exp;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc.saturating_mul(base);
        }
        exp >>= 1;
        if exp > 0 {
            base = base.saturating_mul(base);
        }
    }
    acc
}

/// One object's term `1 + #Conv_Type × #Conv_Method^#Event(m)`, exact.
fn object_term(o: &ObjectSpace, conv_methods: u64) -> f64 {
    let term = 1u128
        .saturating_add(u128::from(o.conv_types).saturating_mul(pow_exact(conv_methods, o.events)));
    term as f64
}

/// Inputs to the space formulas for one memory object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectSpace {
    /// `#Conv_Type`: how many precision changes are possible (2 for a
    /// double-precision object: →single, →half).
    pub conv_types: u64,
    /// `#Event(m)`: data-transfer events touching the object.
    pub events: u64,
}

/// Equation 1: the entire space
/// `∏_m (1 + #Conv_Type × #Conv_Method^#Event(m))`.
#[must_use]
pub fn entire(objects: &[ObjectSpace], conv_methods: u64) -> f64 {
    objects
        .iter()
        .map(|o| object_term(o, conv_methods))
        .product()
}

/// Equation 2: the decision-tree space
/// `Σ_m (1 + #Conv_Type × #Conv_Method^#Event(m))`.
#[must_use]
pub fn tree(objects: &[ObjectSpace], conv_methods: u64) -> f64 {
    objects.iter().map(|o| object_term(o, conv_methods)).sum()
}

/// Equation 3: the inspector-pruned space `#MObj × (1 + #Conv_Type)`.
#[must_use]
pub fn pruned(objects: &[ObjectSpace]) -> f64 {
    objects.iter().map(|o| 1.0 + o.conv_types as f64).sum()
}

/// Extracts the per-object space parameters from a profile. Objects with
/// no transfer events still count one kernel-side scaling opportunity
/// (`events = 0` makes `#Conv_Method^0 = 1`).
#[must_use]
pub fn object_spaces(profile: &AppProfile) -> Vec<ObjectSpace> {
    profile
        .scaling_order
        .iter()
        .map(|o| ObjectSpace {
            conv_types: o.original.lower_targets().len() as u64,
            events: o.transfer_events as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_example_matches_the_paper() {
        // Three double objects, one transfer event each, 2 type changes:
        // kernel-level count (1 method) = 3^3 = 27; with 5 methods
        // (1 + 5×2)^3 = 1331 — both quoted in §3.1.2.
        let objs = vec![
            ObjectSpace {
                conv_types: 2,
                events: 1
            };
            3
        ];
        assert_eq!(entire(&objs, 1), 27.0);
        assert_eq!(entire(&objs, 5), 1331.0);
    }

    #[test]
    fn tree_is_sum_not_product() {
        let objs = vec![
            ObjectSpace {
                conv_types: 2,
                events: 1
            };
            3
        ];
        assert_eq!(tree(&objs, 5), 33.0);
        assert_eq!(pruned(&objs), 9.0);
    }

    #[test]
    fn events_exponentiate_the_method_count() {
        let o = ObjectSpace {
            conv_types: 2,
            events: 3,
        };
        assert_eq!(entire(&[o], 4), 1.0 + 2.0 * 64.0);
    }

    #[test]
    fn space_counts_are_exact_integers() {
        // Pin every published count: integer exponentiation must land
        // exactly on the lattice (no powf round-off), and the pinned
        // values must never drift across refactors.
        let objs = vec![
            ObjectSpace {
                conv_types: 2,
                events: 1
            };
            3
        ];
        assert_eq!(entire(&objs, 1), 27.0);
        assert_eq!(entire(&objs, 5), 1331.0);
        assert_eq!(tree(&objs, 5), 33.0);
        assert_eq!(pruned(&objs), 9.0);
        let o = ObjectSpace {
            conv_types: 2,
            events: 3,
        };
        assert_eq!(entire(&[o], 4), 129.0);
        // Exactness where powf is known to wobble: 1 + 3^33 is below 2^53,
        // so the count must hit the integer bit-for-bit.
        let tall = ObjectSpace {
            conv_types: 1,
            events: 33,
        };
        assert_eq!(entire(&[tall], 3), 5_559_060_566_555_524.0);
        // Large exponents saturate instead of overflowing to nonsense.
        let huge = ObjectSpace {
            conv_types: 2,
            events: 1000,
        };
        assert_eq!(entire(&[huge], 5), u128::MAX as f64);
    }

    #[test]
    fn entire_dwarfs_pruned_for_realistic_programs() {
        let objs: Vec<ObjectSpace> = (0..7)
            .map(|_| ObjectSpace {
                conv_types: 2,
                events: 2,
            })
            .collect();
        let e = entire(&objs, 4);
        let p = pruned(&objs);
        assert!(e / p > 1e8, "entire {e} vs pruned {p}");
    }
}
