//! System-drift resilience: revalidate a tuned spec against the system
//! it is *currently* serving on, and warm-start a re-tune when the
//! system has changed underneath it.
//!
//! PreScaler's decisions are system-aware by construction — the paper's
//! speedup crossovers move between systems — so a [`Tuned`] spec is only
//! meaningful together with the hardware fingerprint it was decided
//! against. Serving deployments drift: GPUs thermally throttle, PCIe
//! links retrain at lower widths, devices fall off the bus. This module
//! closes the loop the guard opens when its sentinels fire:
//!
//! * [`revalidate`] replays the tuner's acceptance oracle (TOQ floor and
//!   never-worse-than-baseline) for a previous spec on the current
//!   system, with a typed verdict instead of a silent mis-serve. A spec
//!   tuned on *different hardware* short-circuits to
//!   [`DriftVerdict::ForeignSystem`] without running anything.
//! * [`retune_warm`] re-tunes on the drifted system without starting
//!   from scratch: it binds the trial journal to the drifted context
//!   (PR 6's write-ahead machinery), replays every already-journaled
//!   trial into the memo cache uncharged, and seeds the decision-tree
//!   search with the previous spec — so a re-tune after drift charges
//!   strictly fewer executions than a cold tune while arriving at a
//!   bit-identical accepted spec.

use crate::engine::{TrialEngine, TrialStats};
use crate::profiler::profile_app;
use crate::recovery::TuneError;
use crate::search::{Evaluation, PreScaler, Tuned};
use prescaler_ocl::{HostApp, ScalingSpec};
use prescaler_persist::{Recovery, TrialJournal};
use std::path::Path;

/// How a previously tuned spec fares on the current system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftVerdict {
    /// The spec still satisfies the acceptance oracle here: quality at
    /// or above TOQ, no slower than the baseline, and runnable on the
    /// (possibly drifting) system. Keep serving it.
    Valid,
    /// The spec was tuned on different hardware — the fingerprints do
    /// not match, so the oracle was not even consulted. Re-tune from
    /// scratch (a warm journal will not attach either).
    ForeignSystem,
    /// Output quality fell below the tuned TOQ floor.
    QualityBelowToq,
    /// The spec no longer beats the full-precision baseline.
    SlowerThanBaseline,
    /// The spec could not complete a run on the current system (e.g. a
    /// lost device).
    Unrunnable,
}

/// The outcome of replaying the acceptance oracle on the current system.
#[derive(Clone, Debug)]
pub struct Revalidation {
    /// The verdict; anything but [`DriftVerdict::Valid`] means the spec
    /// must not keep serving un-revalidated.
    pub verdict: DriftVerdict,
    /// The oracle evaluation on the clean twin of the current system
    /// (the same namespace as the tuner's final acceptance run). `None`
    /// when the oracle could not run or was skipped (foreign system).
    pub oracle: Option<Evaluation>,
    /// The evaluation on the current system *with* its drift condition
    /// (throttle, degraded link, device loss) — the availability check.
    /// `None` when the spec could not complete a run there.
    pub observed: Option<Evaluation>,
}

/// The outcome of a warm-start re-tune on a (possibly drifted) system.
#[derive(Debug)]
pub struct DriftReport {
    /// The re-tuned result — bit-identical to what a cold tune on the
    /// same system would accept.
    pub tuned: Tuned,
    /// How the previous spec fared when it was evaluated as the warm
    /// seed, before the search ran.
    pub previous: Revalidation,
    /// Journal records replayed into the memo cache uncharged (0 when
    /// the journal was fresh).
    pub replayed: usize,
    /// Engine counters for the whole warm run (seeding + search);
    /// `stats.executions` is the work the journal had not already paid.
    pub stats: TrialStats,
    /// What journal recovery found on open.
    pub recovery: Recovery,
}

/// Replays the tuner's TOQ/speedup acceptance oracle for `previous` on
/// the tuner's current system, and checks the spec can still complete a
/// run under the system's drift condition.
///
/// `tuned_fingerprint` is the hardware fingerprint the spec was tuned on
/// (see [`Tuned::system_fingerprint`]); when it is not the current
/// system's, the verdict is [`DriftVerdict::ForeignSystem`] and nothing
/// is executed.
///
/// # Errors
///
/// [`TuneError::Ocl`] when baseline profiling fails on the current
/// system — without a baseline there is no oracle to replay.
pub fn revalidate(
    tuner: &PreScaler<'_>,
    app: &dyn HostApp,
    previous: &ScalingSpec,
    tuned_fingerprint: u64,
) -> Result<Revalidation, TuneError> {
    if tuned_fingerprint != tuner.system().fingerprint() {
        return Ok(Revalidation {
            verdict: DriftVerdict::ForeignSystem,
            oracle: None,
            observed: None,
        });
    }
    let profile = profile_app(app, tuner.system())?;
    let engine = TrialEngine::new(app, tuner.system(), &profile);
    Ok(revalidate_in(&engine, tuner, previous))
}

/// [`revalidate`] through a caller-supplied engine: the oracle runs are
/// charged to (and journaled by) that engine, so a follow-up
/// [`PreScaler::tune_with_engine`] on the same engine gets them for
/// free. The fingerprint gate must already have passed.
fn revalidate_in(
    engine: &TrialEngine<'_>,
    tuner: &PreScaler<'_>,
    previous: &ScalingSpec,
) -> Revalidation {
    let baseline_time = engine.profile().baseline_time;
    // The oracle: the tuner's own final-acceptance namespace (clean twin).
    let oracle = engine.trial_clean(previous).0;
    // Availability: the same spec under the system's live drift condition.
    let observed = engine.trial(previous).0;
    let verdict = match (&oracle, &observed) {
        (Some(o), Some(_)) if o.quality >= tuner.toq() && o.time <= baseline_time => {
            DriftVerdict::Valid
        }
        (Some(o), _) if o.quality < tuner.toq() => DriftVerdict::QualityBelowToq,
        (Some(_), Some(_)) => DriftVerdict::SlowerThanBaseline,
        _ => DriftVerdict::Unrunnable,
    };
    Revalidation {
        verdict,
        oracle,
        observed,
    }
}

/// Re-tunes `app` on the tuner's (possibly drifted) system, warm-started
/// from `previous` and from the trial journal at `journal_path`.
///
/// The journal is bound to the `(app, system-hardware)` context: every
/// record it already holds — from an interrupted earlier re-tune, or
/// from a completed cold tune on the same drifted system — is replayed
/// into the memo cache uncharged. The previous spec is then evaluated as
/// the warm seed (oracle + drifted namespaces, journaled like any other
/// trial) before the normal decision-tree search runs. The search is
/// deterministic and evaluation is pure per spec, so the accepted
/// configuration is bit-identical to a cold tune's; the warm start only
/// changes *who pays*: re-asked trials are answered from the replayed
/// cache instead of being executed again.
///
/// # Errors
///
/// [`TuneError::Ocl`] when baseline profiling fails;
/// [`TuneError::Persist`] when the journal belongs to a different
/// `(app, system)` context or a newer format version — a journal from
/// foreign hardware never warms a tune for this one.
pub fn retune_warm(
    tuner: &PreScaler<'_>,
    app: &dyn HostApp,
    previous: &ScalingSpec,
    journal_path: &Path,
) -> Result<DriftReport, TuneError> {
    let profile = profile_app(app, tuner.system())?;
    let mut engine = TrialEngine::new(app, tuner.system(), &profile);
    let (journal, recovery) = TrialJournal::open(journal_path, engine.context_fingerprint())?;
    let replayed = engine.attach_journal(journal, &recovery.records);
    let seeded = revalidate_in(&engine, tuner, previous);
    let tuned = tuner.tune_with_engine(&engine);
    let stats = engine.stats();
    Ok(DriftReport {
        tuned,
        previous: seeded,
        replayed,
        stats,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspector::SystemInspector;
    use crate::recovery::tune_durable;
    use prescaler_faults::FaultPlan;
    use prescaler_polybench::{BenchKind, PolyApp};
    use prescaler_sim::SystemModel;
    use std::path::PathBuf;

    fn temp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prescaler_drift_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.wal"))
    }

    #[test]
    fn valid_spec_revalidates_on_its_own_system() {
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let tuner = PreScaler::new(&system, &db, 0.9);
        let app = PolyApp::tiny(BenchKind::Gemm);
        let tuned = tuner.tune(&app).unwrap();
        let r = revalidate(&tuner, &app, &tuned.config, tuned.system_fingerprint).unwrap();
        assert_eq!(r.verdict, DriftVerdict::Valid, "{r:?}");
        let oracle = r.oracle.unwrap();
        assert!(oracle.quality >= 0.9);
    }

    #[test]
    fn foreign_hardware_short_circuits_without_running() {
        let system2 = SystemModel::system2();
        let db2 = SystemInspector::inspect(&system2);
        let tuner2 = PreScaler::new(&system2, &db2, 0.9);
        let app = PolyApp::tiny(BenchKind::Gemm);
        let r = revalidate(
            &tuner2,
            &app,
            &ScalingSpec::baseline(),
            SystemModel::system1().fingerprint(),
        )
        .unwrap();
        assert_eq!(r.verdict, DriftVerdict::ForeignSystem);
        assert!(r.oracle.is_none() && r.observed.is_none());
    }

    #[test]
    fn lost_device_makes_a_spec_unrunnable() {
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let tuner = PreScaler::new(&system, &db, 0.9);
        let app = PolyApp::tiny(BenchKind::Gemm);
        let tuned = tuner.tune(&app).unwrap();
        // The device disappears: every on-system run dies, while the
        // oracle (clean-twin) namespace still scores quality.
        let gone = system
            .clone()
            .with_faults(FaultPlan::seeded(7).with_device_loss(1.0));
        let db_gone = SystemInspector::inspect(&system);
        let tuner_gone = PreScaler::new(&gone, &db_gone, 0.9);
        let r = revalidate(&tuner_gone, &app, &tuned.config, tuned.system_fingerprint).unwrap();
        assert_eq!(r.verdict, DriftVerdict::Unrunnable, "{r:?}");
        assert!(r.observed.is_none());
    }

    #[test]
    fn warm_retune_matches_cold_and_charges_strictly_less() {
        let clean = SystemModel::system1();
        let db = SystemInspector::inspect(&clean);
        let app = PolyApp::tiny(BenchKind::Gemm);
        let previous = PreScaler::new(&clean, &db, 0.9).tune(&app).unwrap();

        // The system drifts: the GPU starts throttling mid-serve.
        let drifted = clean
            .clone()
            .with_faults(FaultPlan::seeded(11).with_throttle(0.4, 0.5));
        let tuner = PreScaler::new(&drifted, &db, 0.9);

        let path = temp_journal("warm_vs_cold");
        std::fs::remove_file(&path).ok();
        let cold = tune_durable(&tuner, &app, &path).unwrap();
        assert!(cold.stats.executions > 2);

        let warm = retune_warm(&tuner, &app, &previous.config, &path).unwrap();
        assert!(warm.replayed > 0, "the cold tune's journal must replay");
        assert_eq!(warm.tuned.config, cold.tuned.config, "bit-identical spec");
        assert_eq!(warm.tuned.eval.time, cold.tuned.eval.time);
        assert_eq!(
            warm.tuned.eval.quality.to_bits(),
            cold.tuned.eval.quality.to_bits()
        );
        assert!(
            warm.stats.executions < cold.stats.executions,
            "warm {} !< cold {}",
            warm.stats.executions,
            cold.stats.executions
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_journal_never_warms_a_tune() {
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let tuner = PreScaler::new(&system, &db, 0.9);
        let app = PolyApp::tiny(BenchKind::Gemm);
        let path = temp_journal("foreign_warm");
        TrialJournal::create(&path, 0xF0E1).unwrap();
        let err = retune_warm(&tuner, &app, &ScalingSpec::baseline(), &path).unwrap_err();
        assert!(
            matches!(
                err,
                TuneError::Persist(prescaler_persist::PersistError::ContextMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
