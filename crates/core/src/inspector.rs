//! The system inspector — the paper's one-time, application-independent
//! probe of everything precision-scaling cares about.
//!
//! [`SystemInspector::inspect`] measures, for every transfer direction,
//! every `(source, intermediate, destination)` precision path and every
//! conversion method, the total {convert + transfer} time across a grid of
//! data sizes, and stores the results in an [`InspectorDb`]. The decision
//! maker later answers "what is the best conversion method for this event?"
//! (the paper's Algorithm 2 / `getBestScalingMethod`) from the database
//! alone — no application execution needed.
//!
//! The database is serializable: inspection runs once per system, exactly
//! as the paper prescribes (its artifact takes hours to days on real
//! hardware; the virtual system answers in milliseconds, but the contract
//! is the same).

use prescaler_ir::Precision;
use prescaler_persist::{snapshot, PersistError};
use prescaler_sim::{Direction, HostMethod, SimTime, SystemModel, TransferPlan};
use serde::{Deserialize, Serialize};

/// A recoverable inspector-database failure.
///
/// The decision maker treats all of these as "the database cannot answer"
/// and falls back to the analytic cost model; none of them is worth a
/// panic. A database that fails *structurally* ([`DbError::EmptyGrid`],
/// [`DbError::GridMismatch`]) should be regenerated with
/// [`SystemInspector::inspect`].
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// The database has no measurement grid at all.
    EmptyGrid,
    /// A curve's sample count does not match the measurement grid.
    GridMismatch {
        /// Grid length.
        expected: usize,
        /// Curve length.
        got: usize,
    },
    /// A curve holds a non-finite or negative timing — a corrupted
    /// measurement.
    CorruptTimes {
        /// Index of the first bad sample.
        at: usize,
        /// Its value in seconds.
        value: f64,
    },
    /// The requested plan was never measured.
    UnknownPlan,
}

impl core::fmt::Display for DbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DbError::EmptyGrid => write!(f, "inspector database has an empty measurement grid"),
            DbError::GridMismatch { expected, got } => write!(
                f,
                "curve has {got} samples but the grid has {expected} points"
            ),
            DbError::CorruptTimes { at, value } => {
                write!(f, "curve sample {at} is a corrupt measurement ({value} s)")
            }
            DbError::UnknownPlan => write!(f, "plan is not in the inspector database"),
        }
    }
}

impl std::error::Error for DbError {}

/// Static system facts recorded by the inspector (the paper's first
/// inspection phase).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemSummary {
    /// System display name.
    pub name: String,
    /// Host CPU cores / hardware threads.
    pub cpu_cores: u32,
    /// Host hardware threads.
    pub cpu_threads: u32,
    /// GPU compute capability version string.
    pub compute_capability: String,
    /// GPU SM count.
    pub sms: u32,
    /// Interconnect label ("PCIe 3.0 x16").
    pub pcie: String,
    /// Whether FP16 arithmetic is natively supported and worth using
    /// (`false` on cc 6.1, where FP16 runs at 2 results/cycle/SM).
    pub fast_fp16: bool,
    /// Effective PCIe bandwidth in GB/s.
    pub pcie_gbps: f64,
}

/// One measured conversion path: direction, precision path and host
/// method.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// Transfer direction.
    pub direction: Direction,
    /// Source precision.
    pub src: Precision,
    /// Wire (intermediate) precision.
    pub intermediate: Precision,
    /// Destination precision.
    pub dst: Precision,
    /// Host-side method.
    pub host_method: HostMethod,
}

impl PlanKey {
    /// The [`TransferPlan`] this key denotes.
    #[must_use]
    pub fn plan(&self) -> TransferPlan {
        TransferPlan {
            direction: self.direction,
            src: self.src,
            intermediate: self.intermediate,
            dst: self.dst,
            host_method: self.host_method,
        }
    }
}

/// A measured size→time curve for one plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Curve {
    key: PlanKey,
    /// Times at each grid size, same length as the db's `grid`.
    times: Vec<SimTime>,
}

/// The inspector's result database.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InspectorDb {
    /// Static system facts.
    pub summary: SystemSummary,
    /// The element-count grid the curves are sampled on.
    grid: Vec<usize>,
    curves: Vec<Curve>,
    /// Kernel-launch latency (used in expected-time estimates).
    launch_latency: SimTime,
}

/// The one-time system prober.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemInspector;

impl SystemInspector {
    /// Probes `system`, measuring every conversion path × method × size.
    ///
    /// The plan-time sweep is pure in `(plan, size)`, so on multi-core
    /// hosts the curves are computed on scoped worker threads. Fault
    /// injection draws stay on the calling thread, in the exact order the
    /// sequential sweep would draw them, so the resulting database is
    /// bit-identical either way.
    #[must_use]
    pub fn inspect(system: &SystemModel) -> InspectorDb {
        let grid: Vec<usize> = (8..=24).step_by(2).map(|e| 1usize << e).collect();
        let methods = Self::candidate_methods(system);

        // Enumerate every measured plan in the canonical sweep order.
        let mut keys = Vec::new();
        for direction in [Direction::HtoD, Direction::DtoH] {
            for src in Precision::ALL {
                for dst in Precision::ALL {
                    for intermediate in Precision::ALL {
                        // The wire type must be on the value path: equal to
                        // an endpoint, or strictly between them (a transient
                        // type *above* both endpoints is never useful).
                        if !valid_intermediate(src, intermediate, dst) {
                            continue;
                        }
                        let host_leg_exists = match direction {
                            Direction::HtoD => src != intermediate,
                            Direction::DtoH => intermediate != dst,
                        };
                        let method_set: &[HostMethod] = if host_leg_exists {
                            &methods
                        } else {
                            &[HostMethod::Loop] // no host leg: method is moot
                        };
                        for &host_method in method_set {
                            keys.push(PlanKey {
                                direction,
                                src,
                                intermediate,
                                dst,
                                host_method,
                            });
                        }
                    }
                }
            }
        }

        // Fault injection may corrupt individual measurements as they are
        // recorded; draw the per-sample corruptions sequentially so the
        // fault stream consumption matches the sequential sweep exactly.
        let corruptions: Vec<Vec<Option<f64>>> = keys
            .iter()
            .map(|_| {
                grid.iter()
                    .map(|_| system.faults.corrupt_db_entry())
                    .collect()
            })
            .collect();

        let mut times: Vec<Vec<SimTime>> = vec![Vec::new(); keys.len()];
        let sweep = |keys: &[PlanKey], out: &mut [Vec<SimTime>]| {
            for (key, slot) in keys.iter().zip(out.iter_mut()) {
                let plan = key.plan();
                *slot = grid.iter().map(|&n| plan.time(system, n).total()).collect();
            }
        };
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        if workers > 1 && keys.len() > 1 {
            let chunk = keys.len().div_ceil(workers);
            std::thread::scope(|s| {
                for (kc, tc) in keys.chunks(chunk).zip(times.chunks_mut(chunk)) {
                    s.spawn(|| sweep(kc, tc));
                }
            });
        } else {
            sweep(&keys, &mut times);
        }

        let curves = keys
            .iter()
            .zip(times)
            .zip(corruptions)
            .map(|((&key, ts), cs)| Curve {
                key,
                times: ts
                    .into_iter()
                    .zip(cs)
                    .map(|(t, c)| c.map_or(t, SimTime::from_secs_unchecked))
                    .collect(),
            })
            .collect();

        let gpu = &system.gpu;
        let tp = gpu.throughput();
        InspectorDb {
            summary: SystemSummary {
                name: system.name.clone(),
                cpu_cores: system.cpu.cores,
                cpu_threads: system.cpu.threads,
                compute_capability: gpu.compute_capability.version().to_owned(),
                sms: gpu.sms,
                pcie: system.pcie.label(),
                fast_fp16: tp.rate(Precision::Half) >= tp.rate(Precision::Double),
                pcie_gbps: system.pcie.effective_gbps(),
            },
            grid,
            curves,
            launch_latency: gpu.launch_latency,
        }
    }

    /// The host-method candidates worth measuring on this system.
    pub(crate) fn candidate_methods(system: &SystemModel) -> Vec<HostMethod> {
        let threads = system.cpu.threads as usize;
        let cores = system.cpu.cores as usize;
        vec![
            HostMethod::Loop,
            HostMethod::Multithread { threads: cores },
            HostMethod::Multithread { threads },
            HostMethod::Pipelined { threads, chunks: 4 },
            HostMethod::Pipelined { threads, chunks: 8 },
        ]
    }
}

/// `intermediate` lies on the value path from `src` to `dst`.
pub(crate) fn valid_intermediate(src: Precision, intermediate: Precision, dst: Precision) -> bool {
    let lo = src.min(dst);
    let hi = src.max(dst);
    intermediate == src
        || intermediate == dst
        || (intermediate > lo && intermediate < hi)
        || intermediate < lo // a narrower wire than both endpoints (the wildcard's hybrid)
}

impl InspectorDb {
    /// Predicted time of one plan at `elems` elements, interpolated
    /// log-linearly on the measurement grid.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownPlan`] if the plan was never measured, and a
    /// structural/corruption [`DbError`] if its curve is unusable.
    pub fn plan_time(&self, key: &PlanKey, elems: usize) -> Result<SimTime, DbError> {
        let curve = self
            .curves
            .iter()
            .find(|c| &c.key == key)
            .ok_or(DbError::UnknownPlan)?;
        self.interpolate(&curve.times, elems)
    }

    fn interpolate(&self, times: &[SimTime], elems: usize) -> Result<SimTime, DbError> {
        let first = *self.grid.first().ok_or(DbError::EmptyGrid)? as f64;
        if times.len() != self.grid.len() {
            return Err(DbError::GridMismatch {
                expected: self.grid.len(),
                got: times.len(),
            });
        }
        if let Some(at) = times
            .iter()
            .position(|t| !t.as_secs().is_finite() || t.as_secs() < 0.0)
        {
            return Err(DbError::CorruptTimes {
                at,
                value: times[at].as_secs(),
            });
        }
        let n = elems.max(1) as f64;
        let last = self.grid[self.grid.len() - 1] as f64;
        if n <= first || times.len() == 1 {
            // Below the grid: latency-dominated; scale the measured point
            // by the size ratio on the bandwidth share only is overkill —
            // clamp to the smallest measurement.
            return Ok(times[0]);
        }
        if n >= last {
            // Above the grid: extrapolate linearly from the last segment.
            let a = times[times.len() - 2].as_secs();
            let b = times[times.len() - 1].as_secs();
            let x0 = self.grid[self.grid.len() - 2] as f64;
            let x1 = last;
            let slope = (b - a) / (x1 - x0);
            return Ok(SimTime::from_secs((b + slope * (n - x1)).max(0.0)));
        }
        let i = self
            .grid
            .iter()
            .rposition(|&g| (g as f64) <= n)
            .unwrap_or(0);
        if (self.grid[i] as f64 - n).abs() < 0.5 {
            return Ok(times[i]);
        }
        let (x0, x1) = (self.grid[i] as f64, self.grid[i + 1] as f64);
        let (y0, y1) = (times[i].as_secs(), times[i + 1].as_secs());
        // Log-linear in size.
        let t = (n.ln() - x0.ln()) / (x1.ln() - x0.ln());
        Ok(SimTime::from_secs(y0 + (y1 - y0) * t))
    }

    /// The paper's `getBestScalingMethod` (Algorithm 2): the cheapest plan
    /// for transferring `elems` elements from `src` to `dst`, choosing the
    /// host-side method and wire type from `intermediates`.
    ///
    /// Returns `None` if the path is not in the database, or if every
    /// curve on it is corrupted (callers fall back to the analytic cost
    /// model in that case).
    #[must_use]
    pub fn best_plan(
        &self,
        direction: Direction,
        src: Precision,
        dst: Precision,
        elems: usize,
        intermediates: &[Precision],
    ) -> Option<(PlanKey, SimTime)> {
        let mut best: Option<(PlanKey, SimTime)> = None;
        for c in &self.curves {
            let k = &c.key;
            if k.direction != direction || k.src != src || k.dst != dst {
                continue;
            }
            if !intermediates.contains(&k.intermediate) {
                continue;
            }
            // Corrupted curves are skipped, not trusted: a NaN time would
            // poison the `<` comparison below.
            let Ok(t) = self.interpolate(&c.times, elems) else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                best = Some((*k, t));
            }
        }
        best
    }

    /// Best *direct* plan (no transient wire type): the normal search's
    /// restriction (Algorithm 1, line 6).
    #[must_use]
    pub fn best_direct_plan(
        &self,
        direction: Direction,
        src: Precision,
        dst: Precision,
        elems: usize,
    ) -> Option<(PlanKey, SimTime)> {
        self.best_plan(direction, src, dst, elems, &[src, dst])
    }

    /// Number of measured curves (size of the inspection).
    #[must_use]
    pub fn curve_count(&self) -> usize {
        self.curves.len()
    }

    /// Number of curves holding at least one corrupted (non-finite or
    /// negative) measurement — curves that lookups will route around.
    #[must_use]
    pub fn corrupt_curve_count(&self) -> usize {
        self.curves
            .iter()
            .filter(|c| {
                c.times
                    .iter()
                    .any(|t| !t.as_secs().is_finite() || t.as_secs() < 0.0)
            })
            .count()
    }

    /// Structural sanity check: a database failing this is unusable as a
    /// whole (as opposed to individual corrupted curves, which lookups
    /// route around) and should be regenerated.
    ///
    /// # Errors
    ///
    /// [`DbError::EmptyGrid`] or [`DbError::GridMismatch`].
    pub fn validate(&self) -> Result<(), DbError> {
        if self.grid.is_empty() {
            return Err(DbError::EmptyGrid);
        }
        for c in &self.curves {
            if c.times.len() != self.grid.len() {
                return Err(DbError::GridMismatch {
                    expected: self.grid.len(),
                    got: c.times.len(),
                });
            }
        }
        Ok(())
    }

    /// The measurement grid.
    #[must_use]
    pub fn grid(&self) -> &[usize] {
        &self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> InspectorDb {
        SystemInspector::inspect(&SystemModel::system1())
    }

    #[test]
    fn summary_captures_the_system() {
        let db = db();
        assert_eq!(db.summary.cpu_cores, 10);
        assert_eq!(db.summary.compute_capability, "6.1");
        assert!(!db.summary.fast_fp16, "cc 6.1 half is slower than double");
        let db2 = SystemInspector::inspect(&SystemModel::system2());
        assert!(db2.summary.fast_fp16);
    }

    #[test]
    fn database_has_substantial_coverage() {
        let db = db();
        // 2 directions × many paths × methods × grid — hundreds of curves.
        assert!(db.curve_count() > 100, "{}", db.curve_count());
        assert!(db.grid().len() >= 8);
    }

    #[test]
    fn best_plan_prefers_no_conversion_for_identity() {
        let db = db();
        let (k, _) = db
            .best_direct_plan(
                Direction::HtoD,
                Precision::Double,
                Precision::Double,
                1 << 20,
            )
            .unwrap();
        assert_eq!(k.intermediate, Precision::Double);
    }

    #[test]
    fn best_plan_matches_exhaustive_cost_model() {
        // The DB's interpolated choice at a grid point must equal the
        // direct cost-model minimum.
        let system = SystemModel::system1();
        let db = SystemInspector::inspect(&system);
        let elems = 1 << 20; // on the grid
        let (key, t) = db
            .best_plan(
                Direction::HtoD,
                Precision::Double,
                Precision::Single,
                elems,
                &Precision::ALL,
            )
            .unwrap();
        let got = key.plan().time(&system, elems).total();
        assert!((got.as_secs() - t.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn small_sizes_prefer_simple_methods_large_prefer_parallel() {
        let db = db();
        let (small, _) = db
            .best_direct_plan(Direction::HtoD, Precision::Double, Precision::Single, 256)
            .unwrap();
        assert_eq!(
            small.host_method,
            HostMethod::Loop,
            "spawn/pipeline overheads must lose at 256 elements"
        );
        let (large, _) = db
            .best_direct_plan(
                Direction::HtoD,
                Precision::Double,
                Precision::Single,
                1 << 23,
            )
            .unwrap();
        assert_ne!(
            large.host_method,
            HostMethod::Loop,
            "a single loop must lose at 8M elements"
        );
    }

    #[test]
    fn transient_wire_is_offered_when_allowed() {
        let db = db();
        // double → single with a half wire: only reachable with the
        // full intermediate set.
        let all = db.best_plan(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            1 << 23,
            &Precision::ALL,
        );
        assert!(all.is_some());
        let direct_only = db
            .best_direct_plan(
                Direction::HtoD,
                Precision::Double,
                Precision::Single,
                1 << 23,
            )
            .unwrap();
        let (k_all, t_all) = all.unwrap();
        assert!(t_all <= direct_only.1);
        // On system 1's x16 link the transient may or may not win, but the
        // half wire must at least have been considered (present in db).
        let half_wire = PlanKey {
            direction: Direction::HtoD,
            src: Precision::Double,
            intermediate: Precision::Half,
            dst: Precision::Single,
            host_method: HostMethod::Multithread { threads: 20 },
        };
        assert!(db.plan_time(&half_wire, 1 << 23).is_ok());
        let _ = k_all;
    }

    #[test]
    fn interpolation_is_monotone_in_size_for_direct_transfer() {
        let db = db();
        let key = PlanKey {
            direction: Direction::HtoD,
            src: Precision::Double,
            intermediate: Precision::Double,
            dst: Precision::Double,
            host_method: HostMethod::Loop,
        };
        let mut prev = SimTime::ZERO;
        for shift in [10usize, 13, 16, 19, 22, 25] {
            let t = db.plan_time(&key, 1 << shift).unwrap();
            assert!(t >= prev, "size 2^{shift}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn off_grid_queries_interpolate_between_neighbours() {
        let db = db();
        let key = PlanKey {
            direction: Direction::HtoD,
            src: Precision::Double,
            intermediate: Precision::Double,
            dst: Precision::Double,
            host_method: HostMethod::Loop,
        };
        let lo = db.plan_time(&key, 1 << 12).unwrap();
        let hi = db.plan_time(&key, 1 << 14).unwrap();
        let mid = db.plan_time(&key, 3 << 12).unwrap(); // between 2^12 and 2^14
        assert!(lo <= mid && mid <= hi, "{lo} {mid} {hi}");
    }

    #[test]
    fn unknown_plan_is_a_clean_error() {
        let db = db();
        // An HtoD key with a wire wider than both endpoints is never
        // measured (not a valid intermediate).
        let bogus = PlanKey {
            direction: Direction::HtoD,
            src: Precision::Single,
            intermediate: Precision::Double,
            dst: Precision::Single,
            host_method: HostMethod::Loop,
        };
        assert_eq!(db.plan_time(&bogus, 1 << 12), Err(DbError::UnknownPlan));
    }

    #[test]
    fn corrupted_curves_error_on_lookup_and_best_plan_routes_around() {
        use prescaler_sim::FaultPlan;
        let system =
            SystemModel::system1().with_faults(FaultPlan::seeded(11).with_db_corruption(0.1));
        let db = SystemInspector::inspect(&system);
        assert!(db.corrupt_curve_count() > 0, "injection must have fired");
        assert!(
            db.corrupt_curve_count() < db.curve_count(),
            "at 10% not every curve is corrupt"
        );
        // Some lookup hits a corrupted curve and reports it.
        let mut saw_corrupt = false;
        for direction in [Direction::HtoD, Direction::DtoH] {
            for src in Precision::ALL {
                for dst in Precision::ALL {
                    for wire in Precision::ALL {
                        let key = PlanKey {
                            direction,
                            src,
                            intermediate: wire,
                            dst,
                            host_method: HostMethod::Loop,
                        };
                        if let Err(DbError::CorruptTimes { .. }) = db.plan_time(&key, 1 << 16) {
                            saw_corrupt = true;
                        }
                    }
                }
            }
        }
        assert!(saw_corrupt);
        // best_plan never returns a corrupt time: whatever it answers is
        // finite and non-negative.
        for direction in [Direction::HtoD, Direction::DtoH] {
            for src in Precision::ALL {
                for dst in Precision::ALL {
                    if let Some((_, t)) =
                        db.best_plan(direction, src, dst, 1 << 16, &Precision::ALL)
                    {
                        assert!(t.as_secs().is_finite() && t.as_secs() >= 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn validate_rejects_structural_damage() {
        let db = db();
        assert_eq!(db.validate(), Ok(()));
        let mut broken = db.clone();
        broken.curves[0].times.pop();
        assert!(matches!(
            broken.validate(),
            Err(DbError::GridMismatch { .. })
        ));
        let mut empty = db;
        empty.grid.clear();
        assert_eq!(empty.validate(), Err(DbError::EmptyGrid));
    }
}

impl InspectorDb {
    /// Persists the database: a JSON payload under the atomic,
    /// checksummed snapshot container (temp file + fsync + rename). A
    /// crash mid-save leaves either the old file or the new one on disk —
    /// never a torn mix — and any later corruption is caught by the
    /// container's CRCs at load.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`PersistError::Io`].
    pub fn save(&self, path: &std::path::Path) -> Result<(), PersistError> {
        let json = serde_json::to_string(self).map_err(|e| PersistError::Decode(e.to_string()))?;
        snapshot::save(path, snapshot::KIND_INSPECTOR_DB, json.as_bytes())
    }

    /// Loads a previously saved database. Snapshot containers are
    /// verified (magic, version, kind, CRCs); bare legacy JSON files —
    /// the pre-container on-disk format — still load for backward
    /// compatibility. Structurally broken content (empty grids,
    /// curve/grid length mismatches) is rejected with a typed error; a
    /// caller that loses its database this way degrades to the analytic
    /// cost model (see `PreScaler::best_plan_or_analytic`) rather than
    /// trusting damaged curves.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] for filesystem failures, the container's
    /// taxonomy (truncation, checksum, kind, version) for damaged
    /// snapshots, and [`PersistError::Decode`] for malformed payloads.
    pub fn load(path: &std::path::Path) -> Result<InspectorDb, PersistError> {
        let bytes = std::fs::read(path)?;
        let payload = if snapshot::has_magic(&bytes) {
            snapshot::load_bytes(&bytes, snapshot::KIND_INSPECTOR_DB)?
        } else {
            bytes // legacy bare-JSON database
        };
        let db: InspectorDb =
            serde_json::from_slice(&payload).map_err(|e| PersistError::Decode(e.to_string()))?;
        db.validate()
            .map_err(|e| PersistError::Decode(e.to_string()))?;
        Ok(db)
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn database_round_trips_through_json() {
        let db = SystemInspector::inspect(&SystemModel::system3());
        let dir = std::env::temp_dir().join("prescaler_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("system3.json");
        db.save(&path).unwrap();
        let loaded = InspectorDb::load(&path).unwrap();
        assert_eq!(db, loaded);
        // And the loaded copy answers queries identically.
        let q = |d: &InspectorDb| {
            d.best_direct_plan(
                prescaler_sim::Direction::HtoD,
                prescaler_ir::Precision::Double,
                prescaler_ir::Precision::Half,
                1 << 18,
            )
            .unwrap()
        };
        assert_eq!(q(&db), q(&loaded));
        std::fs::remove_file(&path).ok();
    }
}
