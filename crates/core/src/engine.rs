//! The trial engine — every candidate evaluation funnels through here.
//!
//! A *trial* is one real execution of the application under a
//! [`ScalingSpec`]. Three properties make trials cheap without changing
//! what the search returns:
//!
//! 1. **Memoization.** Results are cached under a canonical fingerprint
//!    of `(spec, app identity, system identity)`, so any spec executes at
//!    most once per engine. `trials` keeps counting what the sequential
//!    search would have *charged* (first ask per spec, successful or
//!    not); repeat asks are reported separately as cache hits.
//! 2. **Fault forking.** On a system with an active fault plan, each
//!    distinct spec runs under [`FaultPlan::fork`] salted with its
//!    fingerprint: the fault stream a trial sees depends only on the
//!    spec, never on how many trials ran before it. Evaluation is thereby
//!    a pure function of the spec, which is what makes memoization and
//!    speculation sound under injected faults. Inert plans fork to inert
//!    plans, so fault-free behavior is bit-identical to the pre-engine
//!    tuner.
//! 3. **Speculation.** [`TrialEngine::prefetch`] executes a batch of
//!    specs concurrently (scoped threads) and parks the results in the
//!    cache *uncharged*. The caller then replays its sequential pruning
//!    semantics through [`TrialEngine::trial`]; speculative results the
//!    replay never asks for stay uncharged and uncounted, so `trials`
//!    and the returned configuration are bit-identical to a sequential
//!    engine.
//!
//! A fourth property makes trials *durable* without changing what the
//! search returns:
//!
//! 4. **Write-ahead journaling.** With a [`TrialJournal`] attached, every
//!    real execution is appended (and fsynced) to the journal before its
//!    result is used. A later engine replays the journal into its cache
//!    *uncharged* via [`TrialEngine::attach_journal`]; the deterministic
//!    search then re-asks the same specs in the same order, charging the
//!    replayed entries without re-executing them — so a resumed tune is
//!    bit-identical to an uninterrupted one (including its `trials` and
//!    `cache_hits` accounting) while re-charging zero completed trials.
//!    An armed [`CrashPoint`] kills the run (panics with
//!    [`prescaler_faults::SimulatedCrash`]) at a seeded journal-append
//!    boundary, optionally tearing the journal tail first — the
//!    deterministic drill for exactly that recovery path.
//!
//! [`FaultPlan::fork`]: prescaler_sim::FaultPlan::fork

use crate::profiler::AppProfile;
use crate::search::Evaluation;
use prescaler_faults::{CrashPoint, SimulatedCrash, TearMode};
use prescaler_ocl::{run_app_threaded, HostApp, PlanChoice, ScalingSpec};
use prescaler_persist::{EvalBits, TrialJournal, TrialRecord};
use prescaler_polybench::output_quality;
use prescaler_sim::{HostMethod, SystemModel};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Execution counters of one engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrialStats {
    /// Trials charged to the search (first ask per spec, failed or not).
    pub charged: usize,
    /// Asks answered from the cache after the spec was already charged.
    pub cache_hits: usize,
    /// Real application executions, including uncharged speculative ones.
    pub executions: usize,
    /// Candidates rejected by the static precision-safety analysis
    /// before any execution — skipped entirely, never charged.
    pub pruned_static: usize,
}

struct Entry {
    eval: Option<Evaluation>,
    charged: bool,
}

struct State {
    cache: HashMap<(u64, bool), Entry>,
    stats: TrialStats,
    /// Attached write-ahead journal; `None` runs non-durably. Dropped
    /// (degrading to non-durable) if an append ever fails — durability is
    /// best-effort and must never take the tuning run down with it.
    journal: Option<TrialJournal>,
}

/// Memoizing, optionally speculative evaluator for one `(app, system)`
/// pair. See the module docs for the determinism argument.
pub struct TrialEngine<'a> {
    app: &'a dyn HostApp,
    system: &'a SystemModel,
    clean: SystemModel,
    profile: &'a AppProfile,
    /// Active fault plan on `system`? Decides namespace split + forking.
    faulty: bool,
    speculate: bool,
    /// Real worker-thread budget shared between speculative trial-level
    /// parallelism and intra-trial data-parallel execution: `k` concurrent
    /// prefetch workers each get `max(1, budget / k)` threads, while
    /// sequential trials get the whole budget.
    exec_threads: usize,
    base_fp: u64,
    /// Armed crash drill: observed once per journaled execution.
    crash: Option<CrashPoint>,
    state: Mutex<State>,
}

impl<'a> TrialEngine<'a> {
    /// Creates an engine. Speculation defaults to on only when the host
    /// actually has more than one core — on a single core the fan-out
    /// would serialize anyway and speculative misses would cost real time.
    #[must_use]
    pub fn new(app: &'a dyn HostApp, system: &'a SystemModel, profile: &'a AppProfile) -> Self {
        let speculate = std::thread::available_parallelism().is_ok_and(|n| n.get() > 1);
        Self::with_speculation(app, system, profile, speculate)
    }

    /// Creates an engine with speculation forced on or off — both modes
    /// return bit-identical results; tests compare them directly.
    #[must_use]
    pub fn with_speculation(
        app: &'a dyn HostApp,
        system: &'a SystemModel,
        profile: &'a AppProfile,
        speculate: bool,
    ) -> Self {
        let faulty = !system.faults.is_inert();
        let mut base = Fnv::new();
        base.bytes(app.name().as_bytes());
        base.bytes(system.name.as_bytes());
        // Hardware identity, not just the label: a journal recorded on
        // one machine must never replay into a tune for different metal.
        base.u64(system.fingerprint());
        let engine = TrialEngine {
            app,
            system,
            clean: system.without_faults(),
            profile,
            faulty,
            speculate,
            exec_threads: prescaler_ocl::default_exec_threads(),
            base_fp: base.finish(),
            crash: None,
            state: Mutex::new(State {
                cache: HashMap::new(),
                stats: TrialStats::default(),
                journal: None,
            }),
        };
        engine.seed_baseline();
        engine
    }

    /// Locks the engine state, tolerating poison: a [`SimulatedCrash`]
    /// unwinding through a locked section is a drill, not corruption —
    /// every mutation under the lock is complete before any panic point.
    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The engine's `(app, system)` identity fingerprint — the context a
    /// [`TrialJournal`] is bound to, so a journal can never be replayed
    /// into a different application or system.
    #[must_use]
    pub fn context_fingerprint(&self) -> u64 {
        self.base_fp
    }

    /// Attaches a write-ahead journal and replays `recovered` records
    /// into the memo cache, **uncharged**. Returns how many records were
    /// replayed (records for specs already cached — e.g. the pre-charged
    /// baseline seed — are skipped).
    ///
    /// Replayed entries behave exactly like speculative prefetches: the
    /// deterministic search re-asks the same specs in the same order and
    /// charges them on first ask without re-executing, so a resumed run's
    /// `trials`/`cache_hits` accounting is bit-identical to an
    /// uninterrupted run while `executions` shrinks to only the work the
    /// journal had not yet made durable.
    pub fn attach_journal(&mut self, journal: TrialJournal, recovered: &[TrialRecord]) -> usize {
        let st = self.state.get_mut().unwrap_or_else(PoisonError::into_inner);
        let mut replayed = 0;
        for rec in recovered {
            let eval = rec.eval.map(|bits| Evaluation {
                time: prescaler_sim::SimTime::from_secs_unchecked(f64::from_bits(bits.time_bits)),
                kernel_time: prescaler_sim::SimTime::from_secs_unchecked(f64::from_bits(
                    bits.kernel_bits,
                )),
                quality: f64::from_bits(bits.quality_bits),
            });
            if let std::collections::hash_map::Entry::Vacant(slot) =
                st.cache.entry((rec.fingerprint, rec.clean))
            {
                slot.insert(Entry {
                    eval,
                    charged: false,
                });
                replayed += 1;
            }
        }
        st.journal = Some(journal);
        replayed
    }

    /// Arms a deterministic crash drill: after the `boundary`-th journaled
    /// execution (counting from this call), the engine tears the journal
    /// tail per the crash point's [`TearMode`] and panics with
    /// [`SimulatedCrash`]. No-op unless a journal is attached.
    pub fn arm_crash(&mut self, crash: CrashPoint) {
        self.crash = Some(crash);
    }

    /// Parks the profiling run's result in the clean namespace: the
    /// profile's reference run *is* a clean baseline evaluation (outputs
    /// equal the reference, so quality is exactly 1.0), and it is already
    /// charged as the profiling trial. A later clean acceptance of the
    /// baseline config dedupes against it.
    fn seed_baseline(&self) {
        let fp = self.fingerprint(&ScalingSpec::baseline());
        let eval = Evaluation {
            time: self.profile.baseline_time,
            kernel_time: self.profile.log.timeline.kernel,
            quality: 1.0,
        };
        let mut st = self.state();
        st.stats.charged += 1;
        st.cache.insert(
            (fp, self.faulty),
            Entry {
                eval: Some(eval),
                charged: true,
            },
        );
    }

    /// The application under test.
    #[must_use]
    pub fn app(&self) -> &'a dyn HostApp {
        self.app
    }

    /// The (possibly faulty) tuning system.
    #[must_use]
    pub fn system(&self) -> &'a SystemModel {
        self.system
    }

    /// The shared baseline profile.
    #[must_use]
    pub fn profile(&self) -> &'a AppProfile {
        self.profile
    }

    /// Snapshot of the engine's counters.
    #[must_use]
    pub fn stats(&self) -> TrialStats {
        self.state().stats
    }

    /// Counts one candidate the static analysis rejected without a
    /// trial. The candidate is never executed, cached, or charged — the
    /// counter exists purely so reports can show the avoided work.
    pub fn record_pruned(&self) {
        self.state().stats.pruned_static += 1;
    }

    /// Evaluates `spec` on the tuning system. Returns the evaluation
    /// (`None` when the run cannot complete — callers prune it like a TOQ
    /// failure) and whether this ask was charged as a trial.
    pub fn trial(&self, spec: &ScalingSpec) -> (Option<Evaluation>, bool) {
        self.trial_in(spec, false)
    }

    /// Evaluates `spec` on the clean twin of the system (the final
    /// acceptance check). On a fault-free system this shares the tuning
    /// namespace — the twin is the system itself.
    pub fn trial_clean(&self, spec: &ScalingSpec) -> (Option<Evaluation>, bool) {
        self.trial_in(spec, true)
    }

    fn trial_in(&self, spec: &ScalingSpec, clean: bool) -> (Option<Evaluation>, bool) {
        // Namespace: clean-twin results are distinct only when the tuning
        // system actually injects faults.
        let ns = clean && self.faulty;
        let fp = self.fingerprint(spec);
        {
            let mut st = self.state();
            if let Some(entry) = st.cache.get_mut(&(fp, ns)) {
                let (eval, charged) = (entry.eval.clone(), entry.charged);
                if charged {
                    st.stats.cache_hits += 1;
                    return (eval, false);
                }
                entry.charged = true;
                st.stats.charged += 1;
                return (eval, true);
            }
        }
        let eval = self.execute(spec, ns, fp, self.exec_threads);
        let mut st = self.state();
        st.stats.executions += 1;
        st.stats.charged += 1;
        st.cache.insert(
            (fp, ns),
            Entry {
                eval: eval.clone(),
                charged: true,
            },
        );
        self.journal_execution(&mut st, fp, ns, &eval, true);
        (eval, true)
    }

    /// Journals one completed execution (write-ahead, fsynced) and runs
    /// the crash drill if one is armed. Called with the state lock held,
    /// after the cache insert — so the record order in the journal is the
    /// deterministic order results entered the cache, and a crash fires
    /// on the calling thread at a reproducible boundary.
    fn journal_execution(
        &self,
        st: &mut State,
        fp: u64,
        ns: bool,
        eval: &Option<Evaluation>,
        charged: bool,
    ) {
        let Some(journal) = st.journal.as_mut() else {
            return;
        };
        let record = TrialRecord {
            fingerprint: fp,
            clean: ns,
            charged,
            eval: eval.as_ref().map(|e| EvalBits {
                time_bits: e.time.as_secs().to_bits(),
                kernel_bits: e.kernel_time.as_secs().to_bits(),
                quality_bits: e.quality.to_bits(),
            }),
        };
        if journal.append(&record).is_err() {
            // Degrade to non-durable rather than fail the tuning run.
            st.journal = None;
            return;
        }
        if let Some(crash) = &self.crash {
            if crash.observe_trial() {
                let boundary = crash.boundary();
                if let Some(journal) = st.journal.as_mut() {
                    let _ = match crash.tear() {
                        TearMode::Clean => Ok(()),
                        TearMode::Truncate { bytes } => journal.tear_tail(u64::from(bytes)),
                        TearMode::Garbage { bytes } => journal.scribble_tail(u64::from(bytes)),
                    };
                }
                std::panic::panic_any(SimulatedCrash { boundary });
            }
        }
    }

    /// Speculatively executes `specs` on the tuning system, in parallel,
    /// parking the results uncharged. No-op when speculation is off.
    /// Blocks until every speculative run has finished, so subsequent
    /// [`TrialEngine::trial`] replays are answered from the cache.
    pub fn prefetch(&self, specs: &[ScalingSpec]) {
        if !self.speculate {
            return;
        }
        let mut todo: Vec<(u64, &ScalingSpec)> = Vec::new();
        {
            let st = self.state();
            for spec in specs {
                let fp = self.fingerprint(spec);
                if st.cache.contains_key(&(fp, false)) || todo.iter().any(|(f, _)| *f == fp) {
                    continue;
                }
                todo.push((fp, spec));
            }
        }
        if todo.is_empty() {
            return;
        }
        // Split the execution budget across the speculative workers so
        // trial-level and intra-trial parallelism never oversubscribe.
        let per_worker = (self.exec_threads / todo.len()).max(1);
        let results: Vec<Option<Evaluation>> = std::thread::scope(|scope| {
            let handles: Vec<_> = todo
                .iter()
                .map(|&(fp, spec)| scope.spawn(move || self.execute(spec, false, fp, per_worker)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut st = self.state();
        for ((fp, _), eval) in todo.into_iter().zip(results) {
            st.stats.executions += 1;
            if let std::collections::hash_map::Entry::Vacant(slot) = st.cache.entry((fp, false)) {
                slot.insert(Entry {
                    eval: eval.clone(),
                    charged: false,
                });
                // Journaled in todo order, under the lock: the record
                // sequence (and any armed crash boundary) is deterministic
                // even though the executions above ran concurrently.
                self.journal_execution(&mut st, fp, false, &eval, false);
            }
        }
    }

    /// One real execution. Pure in `spec`: on a faulty system the run
    /// draws from a fault stream forked off the spec's fingerprint, so
    /// re-executing the same spec replays the same faults.
    fn execute(
        &self,
        spec: &ScalingSpec,
        clean: bool,
        fp: u64,
        threads: usize,
    ) -> Option<Evaluation> {
        let forked;
        let system = if clean {
            &self.clean
        } else if self.faulty {
            forked = self.system.clone().with_faults(self.system.faults.fork(fp));
            &forked
        } else {
            self.system
        };
        let (outputs, log) = run_app_threaded(self.app, system, spec, threads).ok()?;
        let raw = output_quality(&self.profile.reference, &outputs);
        Some(Evaluation {
            time: log.timeline.total(),
            kernel_time: log.timeline.kernel,
            // Clamp non-finite quality to 0: corrupted (NaN-poisoned)
            // outputs must read as failure, not sneak past TOQ checks.
            quality: if raw.is_finite() { raw } else { 0.0 },
        })
    }

    /// Canonical fingerprint of a spec: FNV-1a over a sorted encoding of
    /// every map, mixed with the app/system identity. Stable across runs
    /// (no hasher randomness) because it doubles as the fault-fork salt.
    fn fingerprint(&self, spec: &ScalingSpec) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.base_fp);

        h.u8(1);
        for (label, prec) in sorted(&spec.object_targets) {
            h.bytes(label.as_bytes());
            h.u8(prec_tag(*prec));
        }
        h.u8(2);
        for (label, plan) in sorted(&spec.write_plans) {
            h.bytes(label.as_bytes());
            plan_bytes(&mut h, plan);
        }
        h.u8(3);
        for (label, plan) in sorted(&spec.read_plans) {
            h.bytes(label.as_bytes());
            plan_bytes(&mut h, plan);
        }
        h.u8(4);
        for (kernel, casts) in sorted(&spec.in_kernel) {
            h.bytes(kernel.as_bytes());
            for (param, prec) in sorted(casts) {
                h.bytes(param.as_bytes());
                h.u8(prec_tag(*prec));
            }
            h.u8(0xFF); // kernel-map terminator
        }
        h.finish()
    }
}

fn sorted<V>(map: &HashMap<String, V>) -> Vec<(&String, &V)> {
    let mut entries: Vec<_> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    entries
}

fn prec_tag(p: prescaler_ir::Precision) -> u8 {
    match p {
        prescaler_ir::Precision::Half => 0,
        prescaler_ir::Precision::Single => 1,
        prescaler_ir::Precision::Double => 2,
    }
}

fn plan_bytes(h: &mut Fnv, plan: &PlanChoice) {
    h.u8(prec_tag(plan.intermediate));
    match plan.host_method {
        HostMethod::Loop => h.u8(0),
        HostMethod::Multithread { threads } => {
            h.u8(1);
            h.u64(threads as u64);
        }
        HostMethod::Pipelined { threads, chunks } => {
            h.u8(2);
            h.u64(threads as u64);
            h.u64(chunks as u64);
        }
    }
}

/// Minimal FNV-1a (64-bit) — the canonical, seed-free fingerprint hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.u8(b);
        }
        self.u8(0); // length/field separator
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_app;
    use prescaler_ir::Precision;
    use prescaler_polybench::{BenchKind, PolyApp};
    use prescaler_sim::FaultPlan;

    fn fixture() -> (PolyApp, SystemModel) {
        (PolyApp::tiny(BenchKind::Gemm), SystemModel::system1())
    }

    #[test]
    fn repeat_asks_hit_the_cache_and_charge_once() {
        let (app, system) = fixture();
        let profile = profile_app(&app, &system).unwrap();
        let engine = TrialEngine::with_speculation(&app, &system, &profile, false);
        let spec = ScalingSpec::baseline().with_target("A", Precision::Single);

        let (a, charged_a) = engine.trial(&spec);
        let (b, charged_b) = engine.trial(&spec);
        assert!(charged_a && !charged_b);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.time, b.time);
        assert_eq!(a.quality.to_bits(), b.quality.to_bits());
        let stats = engine.stats();
        // The baseline seed is pre-charged, so: 1 executed trial + 1 hit.
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.charged, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn prefetch_is_uncharged_until_replayed() {
        let (app, system) = fixture();
        let profile = profile_app(&app, &system).unwrap();
        let engine = TrialEngine::with_speculation(&app, &system, &profile, true);
        let specs = [
            ScalingSpec::baseline().with_target("A", Precision::Single),
            ScalingSpec::baseline().with_target("B", Precision::Single),
        ];
        engine.prefetch(&specs);
        let stats = engine.stats();
        assert_eq!(stats.executions, 2);
        assert_eq!(stats.charged, 1, "only the baseline seed is charged");

        let (eval, charged) = engine.trial(&specs[0]);
        assert!(charged, "first replay ask charges the speculative run");
        assert!(eval.is_some());
        let stats = engine.stats();
        assert_eq!(stats.executions, 2, "no re-execution");
        assert_eq!(stats.charged, 2);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn speculative_and_sequential_results_are_bit_identical() {
        let (app, system) = fixture();
        let profile = profile_app(&app, &system).unwrap();
        let seq = TrialEngine::with_speculation(&app, &system, &profile, false);
        let par = TrialEngine::with_speculation(&app, &system, &profile, true);
        let specs: Vec<ScalingSpec> = [Precision::Half, Precision::Single]
            .iter()
            .map(|&p| {
                ScalingSpec::baseline()
                    .with_target("A", p)
                    .with_target("C", p)
            })
            .collect();
        par.prefetch(&specs);
        for spec in &specs {
            let (a, ca) = seq.trial(spec);
            let (b, cb) = par.trial(spec);
            assert_eq!(ca, cb);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.time, b.time);
                    assert_eq!(a.kernel_time, b.kernel_time);
                    assert_eq!(a.quality.to_bits(), b.quality.to_bits());
                }
                (None, None) => {}
                (a, b) => panic!("divergent outcomes: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn faulty_trials_are_idempotent_via_forked_streams() {
        let (app, _) = fixture();
        let system = SystemModel::system1().with_faults(
            FaultPlan::seeded(11)
                .with_transfer_failures(0.05)
                .with_clock_noise(0.2),
        );
        let profile = profile_app(&app, &system).unwrap();
        let engine_a = TrialEngine::with_speculation(&app, &system, &profile, false);
        let engine_b = TrialEngine::with_speculation(&app, &system, &profile, false);
        let warm = ScalingSpec::baseline().with_target("B", Precision::Single);
        let spec = ScalingSpec::baseline().with_target("A", Precision::Single);
        // Engine B evaluates an extra spec first; forked streams make the
        // shared spec's result independent of that history.
        engine_b.trial(&warm);
        let (a, _) = engine_a.trial(&spec);
        let (b, _) = engine_b.trial(&spec);
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.time, b.time, "forked stream must not depend on history");
                assert_eq!(a.quality.to_bits(), b.quality.to_bits());
            }
            (None, None) => {}
            (a, b) => panic!("divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn fingerprints_ignore_map_iteration_order() {
        let (app, system) = fixture();
        let profile = profile_app(&app, &system).unwrap();
        let engine = TrialEngine::with_speculation(&app, &system, &profile, false);
        let a = ScalingSpec::baseline()
            .with_target("A", Precision::Single)
            .with_target("B", Precision::Half);
        let b = ScalingSpec::baseline()
            .with_target("B", Precision::Half)
            .with_target("A", Precision::Single);
        assert_eq!(engine.fingerprint(&a), engine.fingerprint(&b));
        let c = ScalingSpec::baseline()
            .with_target("A", Precision::Half)
            .with_target("B", Precision::Single);
        assert_ne!(engine.fingerprint(&a), engine.fingerprint(&c));
    }
}
