//! Virtual time.
//!
//! Every duration in the simulator is a [`SimTime`] — seconds on a virtual
//! clock, computed analytically from the system model. Using virtual time
//! keeps every experiment deterministic and host-independent.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

/// A non-negative duration (or instant) on the virtual clock, in seconds.
///
/// ```
/// use prescaler_sim::SimTime;
/// let t = SimTime::from_micros(1500.0);
/// assert_eq!(t.as_millis(), 1.5);
/// assert!(SimTime::from_micros(1.0) < t);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// From seconds.
    ///
    /// # Panics
    ///
    /// Panics (debug) on negative or NaN input.
    #[must_use]
    pub fn from_secs(s: f64) -> SimTime {
        debug_assert!(s >= 0.0, "negative virtual duration {s}");
        SimTime(s)
    }

    /// From seconds, without the validity check — only for modeling
    /// corrupted measurements (fault injection may store NaN or negative
    /// durations that downstream validation is expected to catch).
    #[must_use]
    pub fn from_secs_unchecked(s: f64) -> SimTime {
        SimTime(s)
    }

    /// From milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> SimTime {
        SimTime::from_secs(ms * 1e-3)
    }

    /// From microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> SimTime {
        SimTime::from_secs(us * 1e-6)
    }

    /// From nanoseconds.
    #[must_use]
    pub fn from_nanos(ns: f64) -> SimTime {
        SimTime::from_secs(ns * 1e-9)
    }

    /// In seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// In milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// In microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction (clamps at zero).
    #[must_use]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics (debug) if the result would be negative; use
    /// [`SimTime::saturating_sub`] when that is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, k: f64) -> SimTime {
        SimTime::from_secs(self.0 * k)
    }
}

impl Div for SimTime {
    type Output = f64;
    fn div(self, rhs: SimTime) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn unit_constructors_agree() {
        assert!(close(
            SimTime::from_millis(1.0).as_secs(),
            SimTime::from_micros(1000.0).as_secs()
        ));
        assert!(close(
            SimTime::from_micros(1.0).as_secs(),
            SimTime::from_nanos(1000.0).as_secs()
        ));
        assert!(close(SimTime::from_secs(0.25).as_millis(), 250.0));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10.0);
        let b = SimTime::from_micros(4.0);
        assert!(close((a + b).as_micros(), 14.0));
        assert!(close((a - b).as_micros(), 6.0));
        assert!(close((a * 2.0).as_micros(), 20.0));
        assert!(close(a / b, 2.5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn sum_folds() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_micros(f64::from(i))).sum();
        assert_eq!(total.as_micros(), 10.0);
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimTime::from_secs(2.5).to_string(), "2.500s");
        assert_eq!(SimTime::from_millis(2.5).to_string(), "2.500ms");
        assert_eq!(SimTime::from_micros(2.5).to_string(), "2.500us");
        assert_eq!(SimTime::from_nanos(2.5).to_string(), "2.5ns");
    }

    #[test]
    #[should_panic(expected = "negative")]
    #[cfg(debug_assertions)]
    fn negative_durations_are_rejected() {
        let _ = SimTime::from_micros(1.0) - SimTime::from_micros(2.0);
    }
}
