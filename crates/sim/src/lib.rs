//! A deterministic heterogeneous CPU/GPU/PCIe system simulator.
//!
//! PreScaler's decisions are driven by *system characteristics*: FP16/32/64
//! throughput per GPU generation, PCIe bandwidth, host conversion speed
//! under various SIMD sets, thread-dispatch and enqueue latencies. This
//! crate models all of them on a virtual clock:
//!
//! * [`gpu`] — GPU roofline model over the paper's Table 1 throughputs;
//! * [`cpu`] — host conversion costs per SIMD level, thread overheads;
//! * [`pcie`] — interconnect bandwidth/latency (x16 vs x8);
//! * [`convert`] — the five conversion shapes of the paper's Fig. 3 as
//!   [`convert::TransferPlan`]s: cost model *and* functional execution;
//! * [`system`] — the paper's Table 3 systems as ready-made presets.
//!
//! # Example
//!
//! ```
//! use prescaler_sim::convert::{Direction, HostMethod, TransferPlan};
//! use prescaler_sim::SystemModel;
//! use prescaler_ir::Precision;
//!
//! let system = SystemModel::system1();
//! // Send 4M doubles to the device as singles, converting on 20 threads.
//! let plan = TransferPlan::host_scaled(
//!     Direction::HtoD,
//!     Precision::Double,
//!     Precision::Single,
//!     HostMethod::Multithread { threads: 20 },
//! );
//! let cost = plan.time(&system, 4 << 20);
//! assert!(cost.total() > prescaler_sim::SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod cpu;
pub mod gpu;
pub mod pcie;
pub mod system;
pub mod time;

pub use convert::{Direction, HostMethod, TransferCost, TransferPlan};
pub use cpu::{CpuModel, SimdLevel};
pub use gpu::{ComputeCapability, GpuModel, ThroughputTable};
pub use pcie::PcieModel;
pub use prescaler_faults::{Corruption, FaultConfig, FaultKind, FaultPlan, Poison};
pub use system::SystemModel;
pub use time::SimTime;
