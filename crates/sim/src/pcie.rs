//! The PCI-Express interconnect model.
//!
//! Transfer time is `latency + bytes / effective bandwidth`. The effective
//! bandwidth derives from generation and lane count with a protocol
//! efficiency factor; the paper's §5.4 bandwidth-adaptivity experiment is
//! exactly "same system, x16 vs x8".

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A PCIe link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PcieModel {
    /// Generation (3 or 4 in practice).
    pub generation: u8,
    /// Electrical lane count (8 or 16 in the paper).
    pub lanes: u8,
    /// Per-transfer fixed latency (driver + DMA setup).
    pub latency: SimTime,
}

impl PcieModel {
    /// PCIe 3.0 with the given lanes and a typical 10 µs setup latency.
    #[must_use]
    pub fn gen3(lanes: u8) -> PcieModel {
        PcieModel {
            generation: 3,
            lanes,
            latency: SimTime::from_micros(10.0),
        }
    }

    /// Raw per-lane bandwidth in GB/s for this generation.
    #[must_use]
    pub fn per_lane_gbps(&self) -> f64 {
        match self.generation {
            1 => 0.25,
            2 => 0.5,
            3 => 0.985,
            _ => 1.969,
        }
    }

    /// Effective link bandwidth in GB/s (protocol efficiency ≈ 0.78 for
    /// large DMA transfers — ~12.3 GB/s on gen3 x16, matching measured
    /// `bandwidthTest` figures).
    #[must_use]
    pub fn effective_gbps(&self) -> f64 {
        self.per_lane_gbps() * f64::from(self.lanes) * 0.78
    }

    /// Virtual time to move `bytes` across the link in either direction.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.latency + SimTime::from_secs(bytes as f64 / (self.effective_gbps() * 1e9))
    }

    /// A copy of this link narrowed (or widened) to `lanes`.
    #[must_use]
    pub fn with_lanes(mut self, lanes: u8) -> PcieModel {
        self.lanes = lanes;
        self
    }

    /// Short description ("PCIe 3.0 x16").
    #[must_use]
    pub fn label(&self) -> String {
        format!("PCIe {}.0 x{}", self.generation, self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x16_lands_near_twelve_gbps() {
        let link = PcieModel::gen3(16);
        let g = link.effective_gbps();
        assert!((11.0..13.5).contains(&g), "effective {g} GB/s");
    }

    #[test]
    fn halving_lanes_halves_bandwidth() {
        let x16 = PcieModel::gen3(16);
        let x8 = x16.with_lanes(8);
        assert!((x16.effective_gbps() / x8.effective_gbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_has_a_latency_floor() {
        let link = PcieModel::gen3(16);
        assert_eq!(link.transfer_time(0), SimTime::ZERO);
        let tiny = link.transfer_time(64);
        assert!(tiny >= link.latency);
        let one_mb = link.transfer_time(1 << 20);
        let sixteen_mb = link.transfer_time(16 << 20);
        // Large transfers are bandwidth-dominated: 16x data ≈ 16x time.
        let ratio = sixteen_mb.saturating_sub(link.latency) / one_mb.saturating_sub(link.latency);
        assert!((ratio - 16.0).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(PcieModel::gen3(8).label(), "PCIe 3.0 x8");
    }
}
