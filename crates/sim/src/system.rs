//! Whole-system models and the paper's Table 3 presets.

use crate::cpu::{CpuModel, SimdLevel};
use crate::gpu::{ComputeCapability, GpuModel};
use crate::pcie::PcieModel;
use crate::time::SimTime;
use prescaler_faults::FaultPlan;
use serde::{Deserialize, Serialize};

/// A heterogeneous CPU+GPU system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// Display name ("System 1").
    pub name: String,
    /// Host CPU.
    pub cpu: CpuModel,
    /// GPU device.
    pub gpu: GpuModel,
    /// Host↔device interconnect.
    pub pcie: PcieModel,
    /// Latency of one OpenCL enqueue API call (bounds pipelining chunk
    /// counts and small transfers).
    pub enqueue_latency: SimTime,
    /// Injected-fault plan; inert by default. Clones of the model share
    /// the plan's deterministic fault stream.
    pub faults: FaultPlan,
}

impl SystemModel {
    /// Paper System 1: Xeon E5-2640 v4 + NVIDIA Titan Xp (cc 6.1), PCIe
    /// 3.0 x16.
    #[must_use]
    pub fn system1() -> SystemModel {
        SystemModel {
            name: "System 1 (Xeon E5-2640v4 + Titan Xp)".into(),
            cpu: CpuModel {
                name: "Xeon E5-2640 v4".into(),
                cores: 10,
                threads: 20,
                clock_ghz: 3.4,
                simd: SimdLevel::Avx2,
                thread_spawn_base: SimTime::from_micros(8.0),
                thread_spawn_per_thread: SimTime::from_micros(1.0),
            },
            gpu: GpuModel {
                name: "Titan Xp".into(),
                compute_capability: ComputeCapability::Cc61,
                sms: 30,
                clock_ghz: 1.582,
                mem_bandwidth_gbps: 547.0,
                global_mem_bytes: 12 << 30,
                launch_latency: SimTime::from_micros(6.0),
                load_miss_rate: 1.0 / 16.0,
            },
            pcie: PcieModel::gen3(16),
            enqueue_latency: SimTime::from_micros(8.0),
            faults: FaultPlan::none(),
        }
    }

    /// Paper System 2: Xeon E5-2698 v4 + NVIDIA Tesla V100 (cc 7.0) — the
    /// DGX Station.
    #[must_use]
    pub fn system2() -> SystemModel {
        SystemModel {
            name: "System 2 (Xeon E5-2698v4 + Tesla V100)".into(),
            cpu: CpuModel {
                name: "Xeon E5-2698 v4".into(),
                cores: 20,
                threads: 40,
                clock_ghz: 3.6,
                simd: SimdLevel::Avx2,
                thread_spawn_base: SimTime::from_micros(8.0),
                thread_spawn_per_thread: SimTime::from_micros(1.0),
            },
            gpu: GpuModel {
                name: "Tesla V100".into(),
                compute_capability: ComputeCapability::Cc70,
                sms: 80,
                clock_ghz: 1.380,
                mem_bandwidth_gbps: 900.0,
                global_mem_bytes: 16 << 30,
                launch_latency: SimTime::from_micros(6.0),
                load_miss_rate: 1.0 / 16.0,
            },
            pcie: PcieModel::gen3(16),
            enqueue_latency: SimTime::from_micros(8.0),
            faults: FaultPlan::none(),
        }
    }

    /// Paper System 3: Xeon Gold 5115 + NVIDIA RTX 2080 Ti (cc 7.5), with
    /// AVX-512 on the host.
    #[must_use]
    pub fn system3() -> SystemModel {
        SystemModel {
            name: "System 3 (Xeon Gold 5115 + RTX 2080 Ti)".into(),
            cpu: CpuModel {
                name: "Xeon Gold 5115".into(),
                cores: 10,
                threads: 20,
                clock_ghz: 3.4,
                simd: SimdLevel::Avx512,
                thread_spawn_base: SimTime::from_micros(8.0),
                thread_spawn_per_thread: SimTime::from_micros(1.0),
            },
            gpu: GpuModel {
                name: "RTX 2080 Ti".into(),
                compute_capability: ComputeCapability::Cc75,
                sms: 68,
                clock_ghz: 1.545,
                mem_bandwidth_gbps: 616.0,
                global_mem_bytes: 11 << 30,
                launch_latency: SimTime::from_micros(6.0),
                load_miss_rate: 1.0 / 16.0,
            },
            pcie: PcieModel::gen3(16),
            enqueue_latency: SimTime::from_micros(8.0),
            faults: FaultPlan::none(),
        }
    }

    /// All three paper systems.
    #[must_use]
    pub fn paper_systems() -> Vec<SystemModel> {
        vec![
            SystemModel::system1(),
            SystemModel::system2(),
            SystemModel::system3(),
        ]
    }

    /// A copy with a different PCIe lane count (the paper's §5.4
    /// bandwidth-adaptivity experiment).
    #[must_use]
    pub fn with_pcie_lanes(mut self, lanes: u8) -> SystemModel {
        self.pcie = self.pcie.with_lanes(lanes);
        self.name = format!("{} @ {}", self.name, self.pcie.label());
        self
    }

    /// A copy running under the given fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> SystemModel {
        self.faults = faults;
        self
    }

    /// A copy with faults disabled — the clean reference system used for
    /// oracle runs and final acceptance checks.
    #[must_use]
    pub fn without_faults(&self) -> SystemModel {
        let mut clean = self.clone();
        clean.faults = FaultPlan::none();
        clean
    }

    /// A stable fingerprint of the *hardware* this model describes.
    ///
    /// Tuning decisions are only valid on the system they were made for
    /// (the paper's crossovers move between systems), so persisted specs
    /// carry this fingerprint and refuse to load against foreign
    /// hardware. The hash covers every timing-relevant hardware field —
    /// CPU, GPU, interconnect, enqueue latency — and deliberately
    /// excludes the display `name` (a relabel is not a hardware change)
    /// and the injected [`FaultPlan`] (drift is a *condition* of the same
    /// hardware, handled by revalidation, not a different system).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.cpu.name.as_bytes());
        h.u64(u64::from(self.cpu.cores));
        h.u64(u64::from(self.cpu.threads));
        h.u64(self.cpu.clock_ghz.to_bits());
        h.u64(self.cpu.simd as u64);
        h.u64(self.cpu.thread_spawn_base.as_secs().to_bits());
        h.u64(self.cpu.thread_spawn_per_thread.as_secs().to_bits());
        h.bytes(self.gpu.name.as_bytes());
        h.bytes(self.gpu.compute_capability.version().as_bytes());
        h.u64(u64::from(self.gpu.sms));
        h.u64(self.gpu.clock_ghz.to_bits());
        h.u64(self.gpu.mem_bandwidth_gbps.to_bits());
        h.u64(self.gpu.global_mem_bytes);
        h.u64(self.gpu.launch_latency.as_secs().to_bits());
        h.u64(self.gpu.load_miss_rate.to_bits());
        h.u64(u64::from(self.pcie.generation));
        h.u64(u64::from(self.pcie.lanes));
        h.u64(self.pcie.latency.as_secs().to_bits());
        h.u64(self.enqueue_latency.as_secs().to_bits());
        h.finish()
    }
}

/// FNV-1a, matching the trial engine's spec-fingerprint discipline.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescaler_ir::Precision;

    #[test]
    fn presets_match_table3_headlines() {
        let s1 = SystemModel::system1();
        assert_eq!(s1.cpu.cores, 10);
        assert_eq!(s1.gpu.sms, 30);
        assert_eq!(s1.gpu.compute_capability.version(), "6.1");

        let s2 = SystemModel::system2();
        assert_eq!(s2.cpu.cores, 20);
        assert_eq!(s2.gpu.sms, 80);
        assert_eq!(s2.gpu.compute_capability.version(), "7.0");

        let s3 = SystemModel::system3();
        assert_eq!(s3.cpu.simd, SimdLevel::Avx512);
        assert_eq!(s3.gpu.compute_capability.version(), "7.5");
    }

    #[test]
    fn system1_half_is_a_trap_system2_half_is_fast() {
        let s1 = SystemModel::system1();
        let s2 = SystemModel::system2();
        assert!(s1.gpu.flops(Precision::Half) < s1.gpu.flops(Precision::Double));
        assert!(s2.gpu.flops(Precision::Half) > s2.gpu.flops(Precision::Double));
    }

    #[test]
    fn system3_gains_most_from_leaving_double() {
        // FP64 is 2/cycle/SM on cc 7.5, and FP16 runs at 128: the
        // half-to-double throughput ratio is the largest of the three
        // systems, which is why the paper's Fig. 9 shows the biggest
        // PreScaler speedup there.
        let ratio = |s: &SystemModel| s.gpu.flops(Precision::Half) / s.gpu.flops(Precision::Double);
        let r1 = ratio(&SystemModel::system1());
        let r2 = ratio(&SystemModel::system2());
        let r3 = ratio(&SystemModel::system3());
        assert!(r3 > r1 && r3 > r2, "r1={r1} r2={r2} r3={r3}");
    }

    #[test]
    fn lane_override_renames_and_narrows() {
        let s = SystemModel::system1().with_pcie_lanes(8);
        assert_eq!(s.pcie.lanes, 8);
        assert!(s.name.contains("x8"));
    }

    #[test]
    fn fingerprint_tracks_hardware_not_labels_or_faults() {
        let s1 = SystemModel::system1();
        assert_eq!(s1.fingerprint(), SystemModel::system1().fingerprint());
        assert_ne!(s1.fingerprint(), SystemModel::system2().fingerprint());
        assert_ne!(s1.fingerprint(), SystemModel::system3().fingerprint());
        // A lane change is a hardware change...
        assert_ne!(
            s1.fingerprint(),
            SystemModel::system1().with_pcie_lanes(8).fingerprint()
        );
        // ...but a relabel or an injected fault plan is not.
        let mut renamed = SystemModel::system1();
        renamed.name = "same metal, new sticker".into();
        assert_eq!(s1.fingerprint(), renamed.fingerprint());
        let drifting =
            SystemModel::system1().with_faults(FaultPlan::seeded(9).with_throttle(0.5, 0.3));
        assert_eq!(s1.fingerprint(), drifting.fingerprint());
    }

    #[test]
    fn all_three_presets_are_listed() {
        let all = SystemModel::paper_systems();
        assert_eq!(all.len(), 3);
        assert!(all[0].name.starts_with("System 1"));
        assert!(all[2].name.starts_with("System 3"));
    }
}
