//! The host CPU model: cores, SIMD capability, and the cost of host-side
//! type conversion.
//!
//! The paper's host conversions use SSE/AVX intrinsics plus an open-source
//! half-precision library; the decisive system property is how many
//! nanoseconds one element conversion costs for each `(src, dst)` pair
//! under the CPU's best instruction set, and how much launching extra
//! threads costs. Both are model parameters here.

use crate::time::SimTime;
use prescaler_ir::Precision;
use serde::{Deserialize, Serialize};

/// The widest SIMD extension the host supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SimdLevel {
    /// Scalar code only (no vector conversion, software half).
    None,
    /// SSE4.2-class: vector f32↔f64, software half.
    Sse42,
    /// AVX2 + F16C: hardware half conversion, 256-bit vectors.
    Avx2,
    /// AVX-512: 512-bit vectors.
    Avx512,
}

/// A host CPU model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Marketing name ("Xeon E5-2640 v4").
    pub name: String,
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads (with SMT).
    pub threads: u32,
    /// Max clock in GHz.
    pub clock_ghz: f64,
    /// Widest usable SIMD extension.
    pub simd: SimdLevel,
    /// Fixed cost of dispatching work to a thread pool.
    pub thread_spawn_base: SimTime,
    /// Additional dispatch cost per participating thread.
    pub thread_spawn_per_thread: SimTime,
}

impl CpuModel {
    /// Cost of converting **one element** between two precisions on one
    /// thread, using the best available instructions.
    ///
    /// Shapes encoded here (all in nanoseconds, scaled by clock):
    ///
    /// * f32↔f64 is cheap and vectorizes extremely well;
    /// * half conversions are software loops without F16C (≈3 ns/elem, the
    ///   cost profile of a software half library) but nearly free with
    ///   F16C (AVX2+);
    /// * f64↔f16 always pays a two-step narrowing.
    #[must_use]
    pub fn convert_ns_per_elem(&self, from: Precision, to: Precision) -> f64 {
        if from == to {
            return 0.0;
        }
        let involves_half = from == Precision::Half || to == Precision::Half;
        let wide_pair = (from == Precision::Double) ^ (to == Precision::Double);
        let base = if involves_half {
            match self.simd {
                SimdLevel::None | SimdLevel::Sse42 => {
                    // Software binary16: shifts, masks, rounding in scalar
                    // code.
                    if wide_pair && from != Precision::Single && to != Precision::Single {
                        3.5
                    } else {
                        3.0
                    }
                }
                SimdLevel::Avx2 => {
                    if from == Precision::Single || to == Precision::Single {
                        0.20
                    } else {
                        0.40 // f64↔f16 via f32
                    }
                }
                SimdLevel::Avx512 => {
                    if from == Precision::Single || to == Precision::Single {
                        0.10
                    } else {
                        0.20
                    }
                }
            }
        } else {
            // f32↔f64.
            match self.simd {
                SimdLevel::None => 1.0,
                SimdLevel::Sse42 => 0.30,
                SimdLevel::Avx2 => 0.15,
                SimdLevel::Avx512 => 0.08,
            }
        };
        // Normalize to a 3.4 GHz reference clock.
        base * (3.4 / self.clock_ghz)
    }

    /// Time for one thread to convert `elems` elements.
    #[must_use]
    pub fn convert_time_single(&self, elems: usize, from: Precision, to: Precision) -> SimTime {
        SimTime::from_nanos(self.convert_ns_per_elem(from, to) * elems as f64)
    }

    /// Time for `threads` threads to convert `elems` elements, including
    /// dispatch overhead. `threads` is clamped to `[1, self.threads]`.
    #[must_use]
    pub fn convert_time_multi(
        &self,
        elems: usize,
        from: Precision,
        to: Precision,
        threads: usize,
    ) -> SimTime {
        let t = threads.clamp(1, self.threads as usize);
        if t == 1 {
            self.convert_time_single(elems, from, to)
        } else {
            // SMT threads beyond physical cores contribute little for a
            // memory-streaming conversion; model diminishing returns.
            let effective = self.effective_parallelism(t);
            let work = self.convert_time_single(elems, from, to) * (1.0 / effective);
            work + self.thread_spawn_base + self.thread_spawn_per_thread * t as f64
        }
    }

    /// How much useful parallelism `threads` threads deliver: linear up to
    /// the physical core count, then 0.3× per SMT thread.
    #[must_use]
    pub fn effective_parallelism(&self, threads: usize) -> f64 {
        let t = threads.clamp(1, self.threads as usize);
        if t > self.cores as usize {
            self.cores as f64 + (t - self.cores as usize) as f64 * 0.3
        } else {
            t as f64
        }
    }

    /// Streaming memory bandwidth available to one core, in GB/s.
    #[must_use]
    pub fn per_core_stream_gbps(&self) -> f64 {
        12.0
    }

    /// Whole-socket streaming memory bandwidth in GB/s — the hard ceiling
    /// for any host conversion regardless of thread count.
    #[must_use]
    pub fn socket_stream_gbps(&self) -> f64 {
        match self.simd {
            SimdLevel::None => 25.0,
            SimdLevel::Sse42 => 30.0,
            SimdLevel::Avx2 => 40.0,
            SimdLevel::Avx512 => 50.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xeon_avx2() -> CpuModel {
        CpuModel {
            name: "Xeon E5-2640 v4".into(),
            cores: 10,
            threads: 20,
            clock_ghz: 3.4,
            simd: SimdLevel::Avx2,
            thread_spawn_base: SimTime::from_micros(8.0),
            thread_spawn_per_thread: SimTime::from_micros(1.0),
        }
    }

    #[test]
    fn same_precision_conversion_is_free() {
        let cpu = xeon_avx2();
        assert_eq!(
            cpu.convert_ns_per_elem(Precision::Double, Precision::Double),
            0.0
        );
    }

    #[test]
    fn f16c_makes_half_conversion_cheap() {
        let mut cpu = xeon_avx2();
        let with = cpu.convert_ns_per_elem(Precision::Single, Precision::Half);
        cpu.simd = SimdLevel::None;
        let without = cpu.convert_ns_per_elem(Precision::Single, Precision::Half);
        assert!(
            without / with > 10.0,
            "software half must be an order of magnitude slower"
        );
    }

    #[test]
    fn avx512_beats_avx2() {
        let mut cpu = xeon_avx2();
        let avx2 = cpu.convert_ns_per_elem(Precision::Double, Precision::Single);
        cpu.simd = SimdLevel::Avx512;
        let avx512 = cpu.convert_ns_per_elem(Precision::Double, Precision::Single);
        assert!(avx512 < avx2);
    }

    #[test]
    fn multithreading_helps_large_arrays_only() {
        let cpu = xeon_avx2();
        let big = 1 << 24;
        let small = 1 << 8;
        let pair = (Precision::Double, Precision::Single);
        assert!(
            cpu.convert_time_multi(big, pair.0, pair.1, 20)
                < cpu.convert_time_single(big, pair.0, pair.1),
            "20 threads must win on 16M elements"
        );
        assert!(
            cpu.convert_time_multi(small, pair.0, pair.1, 20)
                > cpu.convert_time_single(small, pair.0, pair.1),
            "spawn overhead must dominate on 256 elements"
        );
    }

    #[test]
    fn thread_count_is_clamped() {
        let cpu = xeon_avx2();
        let a = cpu.convert_time_multi(1 << 20, Precision::Double, Precision::Half, 64);
        let b = cpu.convert_time_multi(1 << 20, Precision::Double, Precision::Half, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn smt_threads_have_diminishing_returns() {
        let cpu = xeon_avx2();
        let elems = 1 << 24;
        let t10 = cpu.convert_time_multi(elems, Precision::Double, Precision::Single, 10);
        let t20 = cpu.convert_time_multi(elems, Precision::Double, Precision::Single, 20);
        // 20 threads still help, but not 2x.
        assert!(t20 < t10);
        let speedup = t10 / t20;
        assert!(speedup < 1.6, "SMT speedup should be modest, got {speedup}");
    }

    #[test]
    fn slower_clock_means_slower_conversion() {
        let mut cpu = xeon_avx2();
        let fast = cpu.convert_ns_per_elem(Precision::Double, Precision::Single);
        cpu.clock_ghz = 1.7;
        let slow = cpu.convert_ns_per_elem(Precision::Double, Precision::Single);
        assert!(slow > fast);
    }
}
