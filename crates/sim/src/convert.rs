//! Type-conversion methods for data moving between host and device.
//!
//! The paper's Figure 3 enumerates five shapes for scaling a memory object
//! during transfer: (a) single-loop host conversion, (b) multithreaded host
//! conversion, (c) device-side conversion, (d) *transient* conversion
//! through an intermediate type, and (e) pipelined conversion+transfer.
//! This module provides both:
//!
//! * a **cost model** — [`TransferPlan::time`] computes the virtual time of
//!   any (method, type-path, size) combination on a [`SystemModel`]; and
//! * a **functional implementation** — [`TransferPlan::apply`] performs the
//!   actual element-wise conversions (optionally on real threads), so the
//!   numeric consequences of every path (including double-rounding through
//!   a transient intermediate) are real.

use crate::cpu::CpuModel;
use crate::system::SystemModel;
use crate::time::SimTime;
use prescaler_ir::{FloatVec, Precision};
use serde::{Deserialize, Serialize};

/// Direction of a transfer between host and device memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host to device (kernel inputs).
    HtoD,
    /// Device to host (kernel outputs).
    DtoH,
}

impl Direction {
    /// The OpenCL-ish label ("HtoD"/"DtoH").
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Direction::HtoD => "HtoD",
            Direction::DtoH => "DtoH",
        }
    }
}

/// How the *host-side* leg of a conversion runs (paper Fig. 3 a/b/e).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostMethod {
    /// One scalar/SIMD loop on the calling thread.
    Loop,
    /// The loop split over `threads` worker threads.
    Multithread {
        /// Worker thread count.
        threads: usize,
    },
    /// Conversion overlapped chunk-by-chunk with the PCIe transfer.
    Pipelined {
        /// Worker thread count for the conversion stage.
        threads: usize,
        /// Number of pipeline chunks.
        chunks: usize,
    },
}

impl HostMethod {
    /// Short label used in reports ("loop", "mt16", "pipe8x16").
    #[must_use]
    pub fn label(self) -> String {
        match self {
            HostMethod::Loop => "loop".to_owned(),
            HostMethod::Multithread { threads } => format!("mt{threads}"),
            HostMethod::Pipelined { threads, chunks } => format!("pipe{chunks}x{threads}"),
        }
    }
}

/// A complete plan for moving one memory object across PCIe with an
/// optional precision change.
///
/// The value path is `src → intermediate → dst`:
///
/// * the leg on the **host side of the wire** (`src → intermediate` for
///   HtoD, `intermediate → dst` for DtoH) runs on the CPU with
///   [`HostMethod`];
/// * the wire carries `intermediate`-typed bytes;
/// * the leg on the **device side** runs as a conversion kernel.
///
/// Direct host-side scaling is `intermediate == dst` (HtoD); device-side
/// scaling is `intermediate == src`; *transient* conversion is an
/// intermediate distinct from both.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferPlan {
    /// Transfer direction.
    pub direction: Direction,
    /// Element type at the source memory.
    pub src: Precision,
    /// Element type on the wire.
    pub intermediate: Precision,
    /// Element type at the destination memory.
    pub dst: Precision,
    /// How the host-side conversion leg (if any) executes.
    pub host_method: HostMethod,
}

/// The virtual-time breakdown of one executed transfer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferCost {
    /// Host-side conversion time.
    pub host_convert: SimTime,
    /// Wire time.
    pub transfer: SimTime,
    /// Device-side conversion time.
    pub device_convert: SimTime,
}

impl TransferCost {
    /// Total time of the transfer.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.host_convert + self.transfer + self.device_convert
    }

    /// Every component scaled by `factor` — measurement noise applied to
    /// one observed transfer. A factor of exactly `1.0` is an identity.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> TransferCost {
        TransferCost {
            host_convert: self.host_convert * factor,
            transfer: self.transfer * factor,
            device_convert: self.device_convert * factor,
        }
    }

    /// Only the wire component stretched for a transfer moving at
    /// `bandwidth_factor` of nominal PCIe bandwidth — a degraded link
    /// slows the bytes on the bus, not the host/device conversion work.
    /// A factor of exactly `1.0` is an identity.
    #[must_use]
    pub fn at_bandwidth(&self, bandwidth_factor: f64) -> TransferCost {
        if bandwidth_factor == 1.0 {
            return *self;
        }
        TransferCost {
            host_convert: self.host_convert,
            transfer: self.transfer * (1.0 / bandwidth_factor.clamp(0.05, 1.0)),
            device_convert: self.device_convert,
        }
    }
}

impl TransferPlan {
    /// A plain transfer with no conversion.
    #[must_use]
    pub fn direct(direction: Direction, p: Precision) -> TransferPlan {
        TransferPlan {
            direction,
            src: p,
            intermediate: p,
            dst: p,
            host_method: HostMethod::Loop,
        }
    }

    /// Host-side direct scaling: convert on the host, wire carries `dst`
    /// (HtoD) or convert after a `src`-typed wire transfer (DtoH).
    #[must_use]
    pub fn host_scaled(
        direction: Direction,
        src: Precision,
        dst: Precision,
        method: HostMethod,
    ) -> TransferPlan {
        let intermediate = match direction {
            Direction::HtoD => dst,
            Direction::DtoH => src,
        };
        TransferPlan {
            direction,
            src,
            intermediate,
            dst,
            host_method: method,
        }
    }

    /// Device-side scaling: the wire carries the source type, the device
    /// converts (HtoD), or the device converts first (DtoH).
    #[must_use]
    pub fn device_scaled(direction: Direction, src: Precision, dst: Precision) -> TransferPlan {
        let intermediate = match direction {
            Direction::HtoD => src,
            Direction::DtoH => dst,
        };
        TransferPlan {
            direction,
            src,
            intermediate,
            dst,
            host_method: HostMethod::Loop,
        }
    }

    /// Transient scaling through an explicit intermediate wire type.
    #[must_use]
    pub fn transient(
        direction: Direction,
        src: Precision,
        intermediate: Precision,
        dst: Precision,
        method: HostMethod,
    ) -> TransferPlan {
        TransferPlan {
            direction,
            src,
            intermediate,
            dst,
            host_method: method,
        }
    }

    /// `true` when the wire type differs from both endpoints — the paper's
    /// transient conversion, which can round twice.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        self.intermediate != self.src && self.intermediate != self.dst
    }

    /// The `(from, to)` pair of the host-side conversion leg.
    #[must_use]
    pub fn host_leg(&self) -> (Precision, Precision) {
        match self.direction {
            Direction::HtoD => (self.src, self.intermediate),
            Direction::DtoH => (self.intermediate, self.dst),
        }
    }

    /// The `(from, to)` pair of the device-side conversion leg.
    #[must_use]
    pub fn device_leg(&self) -> (Precision, Precision) {
        match self.direction {
            Direction::HtoD => (self.intermediate, self.dst),
            Direction::DtoH => (self.src, self.intermediate),
        }
    }

    /// Virtual-time cost of transferring `elems` elements under this plan.
    #[must_use]
    pub fn time(&self, system: &SystemModel, elems: usize) -> TransferCost {
        let wire_bytes = (elems * self.intermediate.size_bytes()) as u64;
        let (hf, ht) = self.host_leg();
        let (df, dt) = self.device_leg();
        let device_convert = system.gpu.device_convert_time(elems, df, dt);

        match self.host_method {
            HostMethod::Pipelined { threads, chunks } if hf != ht && elems > 0 => {
                // Chunked overlap: each chunk is converted then sent while
                // the next converts. Total ≈ max(total convert, total wire)
                // plus the non-overlapped first/last chunk and per-chunk
                // enqueue latency.
                let chunks = chunks.max(2);
                let conv = host_convert_time(&system.cpu, elems, hf, ht, threads);
                let wire = system.pcie.transfer_time(wire_bytes);
                let per_chunk = (conv + wire) * (1.0 / chunks as f64);
                let enqueue = system.enqueue_latency * chunks as f64;
                TransferCost {
                    host_convert: SimTime::ZERO,
                    transfer: conv.max(wire) + per_chunk + enqueue,
                    device_convert,
                }
            }
            _ => {
                let host_convert = if hf == ht {
                    SimTime::ZERO
                } else {
                    let threads = match self.host_method {
                        HostMethod::Loop => 1,
                        HostMethod::Multithread { threads } => threads,
                        HostMethod::Pipelined { threads, .. } => threads,
                    };
                    host_convert_time(&system.cpu, elems, hf, ht, threads)
                };
                TransferCost {
                    host_convert,
                    transfer: system.pcie.transfer_time(wire_bytes),
                    device_convert,
                }
            }
        }
    }

    /// Functionally applies the plan's value path to `data` (which must be
    /// `src`-typed), producing `dst`-typed data rounded exactly as the
    /// plan's conversion chain rounds.
    ///
    /// Multithreaded and pipelined host methods use real worker threads —
    /// element-wise conversion is order-independent, so the result is
    /// identical to the sequential path (a property the tests pin down).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not `src`-typed.
    #[must_use]
    pub fn apply(&self, data: &FloatVec) -> FloatVec {
        let threads = match self.host_method {
            HostMethod::Loop => 1,
            HostMethod::Multithread { threads } | HostMethod::Pipelined { threads, .. } => threads,
        };
        self.apply_with_threads(data, threads)
    }

    /// [`TransferPlan::apply`] with an explicit *real* worker-thread
    /// count, decoupled from the simulated [`HostMethod`]: the method
    /// drives the cost model ([`TransferPlan::time`]), while the host
    /// running the simulation parallelizes with however many threads its
    /// own execution budget allows. Conversion is element-wise, so the
    /// result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not `src`-typed.
    #[must_use]
    pub fn apply_with_threads(&self, data: &FloatVec, threads: usize) -> FloatVec {
        assert_eq!(
            data.precision(),
            self.src,
            "transfer plan applied to data of the wrong precision"
        );
        let mid = convert_parallel(data, self.intermediate, threads);
        // The device leg (or host leg for DtoH) is elementwise too.
        convert_parallel(&mid, self.dst, threads)
    }
}

/// Host conversion time with the streaming-bandwidth ceiling applied: the
/// conversion cannot move data faster than the participating threads'
/// aggregate memory bandwidth (capped by the socket).
fn host_convert_time(
    cpu: &CpuModel,
    elems: usize,
    from: Precision,
    to: Precision,
    threads: usize,
) -> SimTime {
    let compute = if threads <= 1 {
        cpu.convert_time_single(elems, from, to)
    } else {
        cpu.convert_time_multi(elems, from, to, threads)
    };
    let bytes = (elems * (from.size_bytes() + to.size_bytes())) as f64;
    let bw = (cpu.effective_parallelism(threads) * cpu.per_core_stream_gbps())
        .min(cpu.socket_stream_gbps());
    let floor = SimTime::from_secs(bytes / (bw * 1e9));
    compute.max(floor)
}

/// Element-wise conversion of `data` to precision `p`, split over up to
/// `threads` real threads. Identical results to [`FloatVec::converted`].
#[must_use]
pub fn convert_parallel(data: &FloatVec, p: Precision, threads: usize) -> FloatVec {
    use prescaler_fp16::F16;

    /// Below this size, thread-spawn latency dominates conversion work.
    const MIN_PARALLEL_ELEMS: usize = 4096;

    let n = data.len();
    let threads = threads.clamp(1, 64).min(n.max(1));
    if data.precision() == p || threads <= 1 || n < MIN_PARALLEL_ELEMS {
        return data.converted(p);
    }
    let chunk = n.div_ceil(threads);

    /// Converts `src` chunk-by-chunk into disjoint chunks of a fresh
    /// typed output vector, one scoped worker per chunk. Each worker
    /// runs the same typed narrowing loop as [`FloatVec::converted`],
    /// so the result is bit-identical regardless of thread count.
    fn run<S: Sync, D: Send + Copy>(
        src: &[S],
        zero: D,
        chunk: usize,
        f: impl Fn(&S) -> D + Sync,
    ) -> Vec<D> {
        let mut out = vec![zero; src.len()];
        std::thread::scope(|scope| {
            for (s, d) in src.chunks(chunk).zip(out.chunks_mut(chunk)) {
                let f = &f;
                scope.spawn(move || {
                    for (x, y) in s.iter().zip(d.iter_mut()) {
                        *y = f(x);
                    }
                });
            }
        });
        out
    }

    // Each arm rounds exactly once, matching `FloatVec::set` semantics.
    match (data, p) {
        (FloatVec::F16(v), Precision::Single) => {
            FloatVec::F32(run(v, 0.0, chunk, |x| x.to_f64() as f32))
        }
        (FloatVec::F16(v), Precision::Double) => FloatVec::F64(run(v, 0.0, chunk, |x| x.to_f64())),
        (FloatVec::F32(v), Precision::Half) => {
            FloatVec::F16(run(v, F16::ZERO, chunk, |&x| F16::from_f64(f64::from(x))))
        }
        (FloatVec::F32(v), Precision::Double) => {
            FloatVec::F64(run(v, 0.0, chunk, |&x| f64::from(x)))
        }
        (FloatVec::F64(v), Precision::Half) => {
            FloatVec::F16(run(v, F16::ZERO, chunk, |&x| F16::from_f64(x)))
        }
        (FloatVec::F64(v), Precision::Single) => FloatVec::F32(run(v, 0.0, chunk, |&x| x as f32)),
        // Identity pairs returned above.
        _ => data.converted(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemModel;

    fn sys() -> SystemModel {
        SystemModel::system1()
    }

    #[test]
    fn direct_transfer_has_no_conversion_cost() {
        let plan = TransferPlan::direct(Direction::HtoD, Precision::Double);
        let c = plan.time(&sys(), 1 << 20);
        assert_eq!(c.host_convert, SimTime::ZERO);
        assert_eq!(c.device_convert, SimTime::ZERO);
        assert!(c.transfer > SimTime::ZERO);
    }

    #[test]
    fn host_scaling_shrinks_the_wire() {
        let s = sys();
        let n = 1 << 22;
        let direct = TransferPlan::direct(Direction::HtoD, Precision::Double).time(&s, n);
        let scaled = TransferPlan::host_scaled(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            HostMethod::Multithread { threads: 20 },
        )
        .time(&s, n);
        assert!(
            scaled.transfer < direct.transfer,
            "wire carries 4-byte elements"
        );
        assert!(
            scaled.total() < direct.total(),
            "for large arrays the conversion pays for itself"
        );
    }

    #[test]
    fn device_scaling_keeps_the_wire_at_source_size() {
        let s = sys();
        let n = 1 << 20;
        let plan = TransferPlan::device_scaled(Direction::HtoD, Precision::Double, Precision::Half);
        assert_eq!(plan.intermediate, Precision::Double);
        let c = plan.time(&s, n);
        assert_eq!(c.host_convert, SimTime::ZERO);
        assert!(c.device_convert > SimTime::ZERO);
    }

    #[test]
    fn dtoh_legs_mirror_htod() {
        let plan = TransferPlan::host_scaled(
            Direction::DtoH,
            Precision::Single,
            Precision::Double,
            HostMethod::Loop,
        );
        // Host leg converts after the wire: single-typed wire.
        assert_eq!(plan.intermediate, Precision::Single);
        assert_eq!(plan.host_leg(), (Precision::Single, Precision::Double));
        assert_eq!(plan.device_leg(), (Precision::Single, Precision::Single));
    }

    #[test]
    fn transient_is_flagged_and_rounds_twice() {
        let plan = TransferPlan::transient(
            Direction::HtoD,
            Precision::Double,
            Precision::Half,
            Precision::Single,
            HostMethod::Loop,
        );
        assert!(plan.is_transient());
        let data = FloatVec::from_f64_slice(&[0.1], Precision::Double);
        let out = plan.apply(&data);
        assert_eq!(out.precision(), Precision::Single);
        // Through half, only ~11 bits of 0.1 survive.
        assert_ne!(out.get(0), 0.1f32 as f64);
        let direct = TransferPlan::host_scaled(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            HostMethod::Loop,
        )
        .apply(&data);
        assert_eq!(direct.get(0), f64::from(0.1f32));
        assert!((out.get(0) - 0.1).abs() > (direct.get(0) - 0.1).abs());
    }

    #[test]
    fn transient_through_half_beats_direct_when_transfer_dominates() {
        // On a narrow link, sending 2-byte elements and converting twice
        // can beat sending 4-byte elements — the wildcard's reason to
        // exist.
        let mut s = sys();
        s.pcie = s.pcie.with_lanes(8);
        let n = 1 << 23;
        let direct = TransferPlan::host_scaled(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            HostMethod::Multithread { threads: 20 },
        )
        .time(&s, n)
        .total();
        let transient = TransferPlan::transient(
            Direction::HtoD,
            Precision::Double,
            Precision::Half,
            Precision::Single,
            HostMethod::Multithread { threads: 20 },
        )
        .time(&s, n)
        .total();
        assert!(
            transient < direct,
            "transient {transient} must beat direct {direct} on x8"
        );
    }

    #[test]
    fn pipelining_approaches_the_max_of_stages_for_large_arrays() {
        let s = sys();
        let n = 1 << 24;
        let seq = TransferPlan::host_scaled(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            HostMethod::Multithread { threads: 20 },
        )
        .time(&s, n);
        let pipe = TransferPlan::host_scaled(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            HostMethod::Pipelined {
                threads: 20,
                chunks: 8,
            },
        )
        .time(&s, n);
        assert!(
            pipe.total() < seq.total(),
            "overlap must beat convert-then-send on 16M elements"
        );
    }

    #[test]
    fn pipelining_loses_on_tiny_arrays() {
        let s = sys();
        let n = 256;
        let seq = TransferPlan::host_scaled(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            HostMethod::Loop,
        )
        .time(&s, n);
        let pipe = TransferPlan::host_scaled(
            Direction::HtoD,
            Precision::Double,
            Precision::Single,
            HostMethod::Pipelined {
                threads: 20,
                chunks: 8,
            },
        )
        .time(&s, n);
        assert!(
            pipe.total() > seq.total(),
            "per-chunk enqueue latency must dominate at 256 elements"
        );
    }

    #[test]
    fn parallel_conversion_matches_sequential_exactly() {
        let xs: Vec<f64> = (0..20_000).map(|i| (i as f64).sin() * 1000.0).collect();
        let data = FloatVec::from_f64_slice(&xs, Precision::Double);
        for p in [Precision::Half, Precision::Single] {
            let seq = data.converted(p);
            let par = convert_parallel(&data, p, 8);
            assert_eq!(seq, par, "threaded conversion must be bit-identical");
        }
    }

    #[test]
    fn apply_checks_source_precision() {
        let plan = TransferPlan::direct(Direction::HtoD, Precision::Double);
        let data = FloatVec::zeros(4, Precision::Single);
        let r = std::panic::catch_unwind(|| plan.apply(&data));
        assert!(r.is_err());
    }

    #[test]
    fn method_labels() {
        assert_eq!(HostMethod::Loop.label(), "loop");
        assert_eq!(HostMethod::Multithread { threads: 16 }.label(), "mt16");
        assert_eq!(
            HostMethod::Pipelined {
                threads: 4,
                chunks: 8
            }
            .label(),
            "pipe8x4"
        );
    }
}
