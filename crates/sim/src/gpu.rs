//! The GPU device model.
//!
//! Kernel time is computed from exact per-precision operation counts (from
//! the IR interpreter or static analysis) against the per-architecture
//! instruction throughput table the paper reproduces in its Table 1
//! (sourced from NVIDIA's CUDA programming guide): results per cycle per
//! SM for FP16/FP32/FP64, per compute capability. The model is a roofline:
//! `kernel time = max(compute time, memory time) + launch latency`.

use crate::time::SimTime;
use prescaler_ir::{OpCounts, Precision};
use serde::{Deserialize, Serialize};

/// NVIDIA compute capabilities covered by the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeCapability {
    /// Kepler (3.0, 3.2).
    Cc30,
    /// Kepler (3.5, 3.7).
    Cc35,
    /// Maxwell (5.0, 5.2).
    Cc50,
    /// Maxwell/Tegra (5.3) — first with fast FP16.
    Cc53,
    /// Pascal P100 (6.0).
    Cc60,
    /// Pascal consumer (6.1) — Titan Xp; FP16 is *slower* than FP64.
    Cc61,
    /// Pascal Tegra (6.2).
    Cc62,
    /// Volta (7.0) — V100.
    Cc70,
    /// Turing (7.5) — RTX 2080 Ti; FP64 is crippled.
    Cc75,
}

impl ComputeCapability {
    /// All capabilities, in Table 1 order.
    pub const ALL: [ComputeCapability; 9] = [
        ComputeCapability::Cc30,
        ComputeCapability::Cc35,
        ComputeCapability::Cc50,
        ComputeCapability::Cc53,
        ComputeCapability::Cc60,
        ComputeCapability::Cc61,
        ComputeCapability::Cc62,
        ComputeCapability::Cc70,
        ComputeCapability::Cc75,
    ];

    /// Human-readable version string ("6.1" etc.).
    #[must_use]
    pub const fn version(self) -> &'static str {
        match self {
            ComputeCapability::Cc30 => "3.0",
            ComputeCapability::Cc35 => "3.5",
            ComputeCapability::Cc50 => "5.0",
            ComputeCapability::Cc53 => "5.3",
            ComputeCapability::Cc60 => "6.0",
            ComputeCapability::Cc61 => "6.1",
            ComputeCapability::Cc62 => "6.2",
            ComputeCapability::Cc70 => "7.0",
            ComputeCapability::Cc75 => "7.5",
        }
    }
}

/// Native arithmetic throughput in results per cycle per SM (paper Table 1
/// / CUDA programming guide §5.4.1). `None` means "not supported" — the
/// operation is emulated through FP32 at a steep penalty.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThroughputTable {
    /// FP16 results/cycle/SM, if natively supported.
    pub fp16: Option<f64>,
    /// FP32 results/cycle/SM.
    pub fp32: f64,
    /// FP64 results/cycle/SM.
    pub fp64: f64,
}

impl ThroughputTable {
    /// The table row for a compute capability.
    ///
    /// Values follow the CUDA programming guide (the paper's source): note
    /// the two famous anomalies the paper leans on — cc 6.1 executes FP16
    /// at 2 results/cycle/SM (slower than its FP64), and cc 7.5 executes
    /// FP64 at 2 (so precision scaling pays off most there).
    #[must_use]
    pub const fn for_capability(cc: ComputeCapability) -> ThroughputTable {
        match cc {
            ComputeCapability::Cc30 => ThroughputTable {
                fp16: None,
                fp32: 192.0,
                fp64: 8.0,
            },
            ComputeCapability::Cc35 => ThroughputTable {
                fp16: None,
                fp32: 192.0,
                fp64: 64.0,
            },
            ComputeCapability::Cc50 => ThroughputTable {
                fp16: None,
                fp32: 128.0,
                fp64: 4.0,
            },
            ComputeCapability::Cc53 => ThroughputTable {
                fp16: Some(256.0),
                fp32: 128.0,
                fp64: 4.0,
            },
            ComputeCapability::Cc60 => ThroughputTable {
                fp16: Some(128.0),
                fp32: 64.0,
                fp64: 32.0,
            },
            ComputeCapability::Cc61 => ThroughputTable {
                fp16: Some(2.0),
                fp32: 128.0,
                fp64: 4.0,
            },
            ComputeCapability::Cc62 => ThroughputTable {
                fp16: Some(256.0),
                fp32: 128.0,
                fp64: 4.0,
            },
            ComputeCapability::Cc70 => ThroughputTable {
                fp16: Some(128.0),
                fp32: 64.0,
                fp64: 32.0,
            },
            ComputeCapability::Cc75 => ThroughputTable {
                fp16: Some(128.0),
                fp32: 64.0,
                fp64: 2.0,
            },
        }
    }

    /// Results/cycle/SM for a precision; unsupported FP16 is emulated at a
    /// quarter of the FP32 rate (widen, compute, narrow).
    #[must_use]
    pub fn rate(&self, p: Precision) -> f64 {
        match p {
            Precision::Half => self.fp16.unwrap_or(self.fp32 / 4.0),
            Precision::Single => self.fp32,
            Precision::Double => self.fp64,
        }
    }
}

/// A GPU device model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Marketing name ("Titan Xp").
    pub name: String,
    /// Architecture generation.
    pub compute_capability: ComputeCapability,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Device (global) memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Device memory size in bytes.
    pub global_mem_bytes: u64,
    /// Fixed overhead per kernel launch.
    pub launch_latency: SimTime,
    /// Fraction of element loads that miss in cache and reach DRAM.
    ///
    /// Kernels reuse loaded data heavily (tiling, caches); counting every
    /// IR-level load as DRAM traffic would make everything memory-bound.
    /// 1/16 is a deliberately coarse but stable stand-in for L1/L2 reuse.
    pub load_miss_rate: f64,
}

impl GpuModel {
    /// The device's Table 1 row.
    #[must_use]
    pub fn throughput(&self) -> ThroughputTable {
        ThroughputTable::for_capability(self.compute_capability)
    }

    /// A copy of this device running thermally throttled at
    /// `clock_factor` of its nominal core clock (`1.0` is an identity).
    ///
    /// Throttling bites on the compute side of the roofline — arithmetic,
    /// conversion, and integer throughput all scale with the core clock —
    /// while DRAM bandwidth and launch latency are unaffected, so
    /// memory-bound kernels feel it less than compute-bound ones, exactly
    /// as on real silicon.
    #[must_use]
    pub fn throttled(&self, clock_factor: f64) -> GpuModel {
        let mut gpu = self.clone();
        gpu.clock_ghz *= clock_factor.clamp(0.05, 1.0);
        gpu
    }

    /// Arithmetic throughput for a precision, in results per second
    /// across the whole device.
    #[must_use]
    pub fn flops(&self, p: Precision) -> f64 {
        self.throughput().rate(p) * f64::from(self.sms) * self.clock_ghz * 1e9
    }

    /// Special-function (sqrt/exp/log) throughput in results/s.
    ///
    /// SFUs run at roughly a quarter of the FMA rate; double-precision
    /// special functions are software sequences, modelled at half the
    /// (already slow) FP64 rate.
    #[must_use]
    pub fn special_flops(&self, p: Precision) -> f64 {
        match p {
            Precision::Double => self.flops(p) / 2.0,
            _ => self.flops(p) / 4.0,
        }
    }

    /// Type-conversion instruction throughput in conversions/s (the
    /// `convert_*` instructions inserted by in-kernel scaling and used by
    /// device-side conversion kernels): 32/cycle/SM on every modelled
    /// architecture.
    #[must_use]
    pub fn convert_throughput(&self) -> f64 {
        32.0 * f64::from(self.sms) * self.clock_ghz * 1e9
    }

    /// Integer ALU throughput in ops/s.
    #[must_use]
    pub fn int_throughput(&self) -> f64 {
        128.0 * f64::from(self.sms) * self.clock_ghz * 1e9
    }

    /// Virtual execution time of a kernel with the given operation counts.
    ///
    /// Roofline: `max(compute, memory) + launch latency`, where compute
    /// sums per-precision arithmetic at Table 1 rates (plus conversions
    /// and integer ops), and memory is the cache-filtered DRAM traffic at
    /// the device bandwidth.
    #[must_use]
    pub fn kernel_time(&self, counts: &OpCounts) -> SimTime {
        let mut compute = 0.0f64;
        for p in Precision::ALL {
            let c = counts.at(p);
            let fma_class = (c.add_sub + c.mul + c.cmp) as f64;
            // A division costs several FMA-class slots.
            let div_cost = c.div as f64 * 4.0;
            compute += (fma_class + div_cost) / self.flops(p);
            compute += c.special as f64 / self.special_flops(p);
        }
        compute += counts.converts as f64 / self.convert_throughput();
        compute += counts.int_ops as f64 / self.int_throughput();

        let mut dram_bytes = 0.0f64;
        for p in Precision::ALL {
            let c = counts.at(p);
            dram_bytes +=
                (c.loads as f64 * self.load_miss_rate + c.stores as f64) * p.size_bytes() as f64;
        }
        let memory = dram_bytes / (self.mem_bandwidth_gbps * 1e9);

        SimTime::from_secs(compute.max(memory)) + self.launch_latency
    }

    /// Virtual time of the device-side conversion of `elems` elements
    /// (one load, one convert, one store per element, plus a launch).
    #[must_use]
    pub fn device_convert_time(&self, elems: usize, from: Precision, to: Precision) -> SimTime {
        if from == to || elems == 0 {
            return SimTime::ZERO;
        }
        let n = elems as f64;
        let compute = n / self.convert_throughput();
        let bytes = n * (from.size_bytes() + to.size_bytes()) as f64;
        let memory = bytes / (self.mem_bandwidth_gbps * 1e9);
        SimTime::from_secs(compute.max(memory)) + self.launch_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan_xp() -> GpuModel {
        GpuModel {
            name: "Titan Xp".into(),
            compute_capability: ComputeCapability::Cc61,
            sms: 30,
            clock_ghz: 1.582,
            mem_bandwidth_gbps: 547.0,
            global_mem_bytes: 12 << 30,
            launch_latency: SimTime::from_micros(6.0),
            load_miss_rate: 1.0 / 16.0,
        }
    }

    #[test]
    fn table1_rows_match_the_paper() {
        let t61 = ThroughputTable::for_capability(ComputeCapability::Cc61);
        assert_eq!(t61.fp16, Some(2.0), "cc 6.1 FP16 is pathologically slow");
        assert_eq!(t61.fp32, 128.0);
        assert_eq!(t61.fp64, 4.0);

        let t70 = ThroughputTable::for_capability(ComputeCapability::Cc70);
        assert_eq!((t70.fp16, t70.fp32, t70.fp64), (Some(128.0), 64.0, 32.0));

        let t75 = ThroughputTable::for_capability(ComputeCapability::Cc75);
        assert_eq!(t75.fp64, 2.0, "Turing FP64 is crippled");

        let t30 = ThroughputTable::for_capability(ComputeCapability::Cc30);
        assert_eq!(t30.fp16, None, "pre-5.3 has no native FP16");
    }

    #[test]
    fn unsupported_fp16_is_emulated_slower_than_fp32() {
        let t = ThroughputTable::for_capability(ComputeCapability::Cc50);
        assert!(t.rate(Precision::Half) < t.rate(Precision::Single));
    }

    #[test]
    fn on_cc61_half_compute_is_slower_than_double() {
        let gpu = titan_xp();
        assert!(gpu.flops(Precision::Half) < gpu.flops(Precision::Double));
        assert!(gpu.flops(Precision::Single) > gpu.flops(Precision::Double));
    }

    #[test]
    fn compute_bound_kernel_time_scales_with_rate() {
        let gpu = titan_xp();
        let mut c64 = OpCounts::new();
        c64.at_mut(Precision::Double).mul = 1_000_000_000;
        let mut c32 = OpCounts::new();
        c32.at_mut(Precision::Single).mul = 1_000_000_000;
        let t64 = gpu.kernel_time(&c64).saturating_sub(gpu.launch_latency);
        let t32 = gpu.kernel_time(&c32).saturating_sub(gpu.launch_latency);
        let ratio = t64 / t32;
        assert!((ratio - 32.0).abs() < 0.5, "fp32/fp64 = 128/4, got {ratio}");
    }

    #[test]
    fn memory_bound_kernel_benefits_from_smaller_elements() {
        let gpu = titan_xp();
        // Streaming kernel: 2 loads + 1 store, 1 add per element.
        let make = |p: Precision| {
            let mut c = OpCounts::new();
            let n = 50_000_000;
            c.at_mut(p).loads = 2 * n;
            c.at_mut(p).stores = n;
            c.at_mut(p).add_sub = n;
            c
        };
        let t64 = gpu.kernel_time(&make(Precision::Double));
        let t32 = gpu.kernel_time(&make(Precision::Single));
        assert!(
            t32 < t64,
            "halving element size must speed up a memory-bound kernel"
        );
    }

    #[test]
    fn launch_latency_floors_empty_kernels() {
        let gpu = titan_xp();
        assert_eq!(gpu.kernel_time(&OpCounts::new()), gpu.launch_latency);
    }

    #[test]
    fn device_conversion_is_fast_but_not_free() {
        let gpu = titan_xp();
        let t = gpu.device_convert_time(1 << 20, Precision::Double, Precision::Single);
        assert!(t > gpu.launch_latency);
        assert!(t < SimTime::from_millis(1.0));
        assert_eq!(
            gpu.device_convert_time(1 << 20, Precision::Single, Precision::Single),
            SimTime::ZERO
        );
    }

    #[test]
    fn version_strings_cover_all_capabilities() {
        for cc in ComputeCapability::ALL {
            assert!(!cc.version().is_empty());
        }
    }
}
