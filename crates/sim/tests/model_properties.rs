//! Property tests over the system cost models — the invariants the
//! decision maker's reasoning depends on.

use prescaler_ir::{OpCounts, Precision};
use prescaler_sim::convert::{Direction, HostMethod, TransferPlan};
use prescaler_sim::{SimTime, SystemModel};
use proptest::prelude::*;

fn arb_system() -> impl Strategy<Value = SystemModel> {
    prop_oneof![
        Just(SystemModel::system1()),
        Just(SystemModel::system2()),
        Just(SystemModel::system3()),
        Just(SystemModel::system1().with_pcie_lanes(8)),
    ]
}

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Half),
        Just(Precision::Single),
        Just(Precision::Double),
    ]
}

proptest! {
    /// Kernel time is monotone in every operation counter.
    #[test]
    fn kernel_time_is_monotone_in_counts(
        system in arb_system(),
        p in arb_precision(),
        muls in 0u64..1_000_000,
        loads in 0u64..1_000_000,
        extra in 1u64..100_000,
    ) {
        let mut c = OpCounts::new();
        c.at_mut(p).mul = muls;
        c.at_mut(p).loads = loads;
        let t0 = system.gpu.kernel_time(&c);
        let mut c2 = c;
        c2.at_mut(p).mul += extra;
        prop_assert!(system.gpu.kernel_time(&c2) >= t0);
        let mut c3 = c;
        c3.at_mut(p).loads += extra;
        prop_assert!(system.gpu.kernel_time(&c3) >= t0);
        let mut c4 = c;
        c4.converts += extra;
        prop_assert!(system.gpu.kernel_time(&c4) >= t0);
    }

    /// Compute-bound kernel time orders by the throughput table: at a
    /// fixed operation count, a faster-rated precision is never slower.
    #[test]
    fn kernel_time_orders_by_throughput(
        system in arb_system(),
        muls in 1_000_000u64..100_000_000,
    ) {
        let time_of = |p: Precision| {
            let mut c = OpCounts::new();
            c.at_mut(p).mul = muls;
            system.gpu.kernel_time(&c)
        };
        let rate_of = |p: Precision| system.gpu.flops(p);
        for a in Precision::ALL {
            for b in Precision::ALL {
                if rate_of(a) >= rate_of(b) {
                    prop_assert!(
                        time_of(a) <= time_of(b),
                        "{a:?} rated faster than {b:?} but slower in time"
                    );
                }
            }
        }
    }

    /// Every transfer plan's cost is finite, positive for nonzero sizes,
    /// and no cheaper than the raw wire time of its intermediate type.
    #[test]
    fn plan_cost_is_bounded_below_by_wire_time(
        system in arb_system(),
        src in arb_precision(),
        mid in arb_precision(),
        dst in arb_precision(),
        elems in 1usize..5_000_000,
        threads in 1usize..40,
        chunks in 2usize..16,
        which in 0u8..3,
    ) {
        let host_method = match which {
            0 => HostMethod::Loop,
            1 => HostMethod::Multithread { threads },
            _ => HostMethod::Pipelined { threads, chunks },
        };
        let plan = TransferPlan {
            direction: Direction::HtoD,
            src,
            intermediate: mid,
            dst,
            host_method,
        };
        let cost = plan.time(&system, elems);
        let total = cost.total();
        prop_assert!(total > SimTime::ZERO);
        prop_assert!(total.as_secs().is_finite());
        // The wire itself is a hard lower bound... except for pipelining,
        // which may overlap, but never below the pure bandwidth term.
        let wire_bytes = (elems * mid.size_bytes()) as f64;
        let floor = wire_bytes / (system.pcie.effective_gbps() * 1e9);
        prop_assert!(
            total.as_secs() >= floor * 0.999,
            "plan {total} under the bandwidth floor {floor}s"
        );
    }

    /// Narrower wire types never increase pure wire time.
    #[test]
    fn narrower_wires_are_never_slower(
        system in arb_system(),
        elems in 1usize..10_000_000,
    ) {
        let t = |p: Precision| {
            TransferPlan::direct(Direction::HtoD, p).time(&system, elems).total()
        };
        prop_assert!(t(Precision::Half) <= t(Precision::Single));
        prop_assert!(t(Precision::Single) <= t(Precision::Double));
    }

    /// Halving PCIe lanes never makes any transfer faster, and for pure
    /// (conversion-free) transfers it is strictly slower.
    #[test]
    fn fewer_lanes_never_help(
        elems in 1usize..5_000_000,
        p in arb_precision(),
    ) {
        let s16 = SystemModel::system1();
        let s8 = SystemModel::system1().with_pcie_lanes(8);
        let plan = TransferPlan::direct(Direction::HtoD, p);
        let t16 = plan.time(&s16, elems).total();
        let t8 = plan.time(&s8, elems).total();
        prop_assert!(t8 > t16);
    }

    /// Device conversion time is symmetric in direction of the pair and
    /// zero only for the identity.
    #[test]
    fn device_conversion_properties(
        system in arb_system(),
        a in arb_precision(),
        b in arb_precision(),
        elems in 1usize..2_000_000,
    ) {
        let t_ab = system.gpu.device_convert_time(elems, a, b);
        let t_ba = system.gpu.device_convert_time(elems, b, a);
        if a == b {
            prop_assert_eq!(t_ab, SimTime::ZERO);
        } else {
            prop_assert!(t_ab > SimTime::ZERO);
            prop_assert_eq!(t_ab, t_ba);
        }
    }
}
