//! Differential fuzzing: random well-typed kernels must behave
//! identically under the tree-walking interpreter and the bytecode VM
//! (bit-identical buffers and operation counts), and — because the
//! generator only emits integer-driven control flow — the static analysis
//! must predict the dynamic counts exactly.

use prescaler_ir::analysis::count_launch;
use prescaler_ir::dsl::*;
use prescaler_ir::interp::{run_kernel, BufferMap, Launch};
use prescaler_ir::parse::parse_kernel;
use prescaler_ir::print::kernel_to_string;
use prescaler_ir::typeck::check_kernel;
use prescaler_ir::vm::{compile_kernel, VmScratch};
use prescaler_ir::{Access, Expr, FloatVec, Kernel, Precision, Stmt};
use proptest::prelude::*;
use std::cell::RefCell;

const BUF_LEN: i64 = 17;

/// Clamps an arbitrary integer expression into `[0, BUF_LEN)` so loads
/// and stores are always in bounds.
fn clamped(e: Expr) -> Expr {
    min2(max2(e, int(0)), int(BUF_LEN - 1))
}

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::Half),
        Just(Precision::Single),
        Just(Precision::Double),
    ]
}

/// Integer expressions. `in_loop` enables the loop variable `k`.
fn arb_int_expr(depth: u32, in_loop: bool) -> BoxedStrategy<Expr> {
    let mut leaves = vec![
        (-3i64..20).prop_map(int).boxed(),
        Just(global_id(0)).boxed(),
        Just(global_id(1)).boxed(),
        Just(var("n")).boxed(),
    ];
    if in_loop {
        leaves.push(Just(var("k")).boxed());
    }
    let leaf = proptest::strategy::Union::new(leaves);
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_int_expr(depth - 1, in_loop);
    prop_oneof![
        4 => leaf,
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a + b),
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a * b),
        1 => (sub.clone(), sub).prop_map(|(a, b)| min2(a, b)),
    ]
    .boxed()
}

/// Float expressions. May reference the scalar `alpha` and loads from
/// `a`/`b`; the locals `t0`/`t1` only once `locals` is true (they are
/// declared at the top of the body).
fn arb_float_expr(depth: u32, in_loop: bool, locals: bool) -> BoxedStrategy<Expr> {
    let mut leaves = vec![
        (-4.0f64..4.0).prop_map(flit).boxed(),
        Just(var("alpha")).boxed(),
        arb_int_expr(1, in_loop)
            .prop_map(|i| load("a", clamped(i)))
            .boxed(),
        arb_int_expr(1, in_loop)
            .prop_map(|i| load("b", clamped(i)))
            .boxed(),
    ];
    if locals {
        leaves.push(Just(var("t0")).boxed());
        leaves.push(Just(var("t1")).boxed());
    }
    let leaf = proptest::strategy::Union::new(leaves);
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_float_expr(depth - 1, in_loop, locals);
    let isub = arb_int_expr(1, in_loop);
    prop_oneof![
        4 => leaf,
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a + b),
        2 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a * b),
        1 => (sub.clone(), sub.clone()).prop_map(|(a, b)| a - b),
        1 => sub.clone().prop_map(fabs),
        1 => sub.clone().prop_map(|a| sqrt(fabs(a))),
        1 => (arb_precision(), sub.clone()).prop_map(|(p, a)| cast(p, a)),
        // Select with a float condition: both engines evaluate both arms.
        1 => (sub.clone(), sub.clone(), sub.clone())
            .prop_map(|(c, a, b)| select(gt(c, flit(0.5)), a, b)),
        // Int/float mixing through arithmetic.
        1 => (isub, sub).prop_map(|(i, f)| f * cast(Precision::Double, i)),
    ]
    .boxed()
}

/// Statements (bounded nesting). Only integer `if` conditions, so the
/// static analysis stays exact.
fn arb_stmts(depth: u32, in_loop: bool) -> BoxedStrategy<Vec<Stmt>> {
    let store_stmt = (arb_int_expr(1, in_loop), arb_float_expr(2, in_loop, true))
        .prop_map(|(i, v)| store("b", clamped(i), v));
    let assign0 = arb_float_expr(2, in_loop, true).prop_map(|v| assign("t0", v));
    let assign1 = arb_float_expr(2, in_loop, true).prop_map(|v| assign("t1", v));
    if depth == 0 {
        return proptest::collection::vec(prop_oneof![store_stmt, assign0, assign1], 1..3).boxed();
    }
    let body = arb_stmts(depth - 1, true);
    let ibody = arb_stmts(depth - 1, in_loop);
    let for_stmt = (arb_int_expr(0, in_loop), 1i64..4, body).prop_map(|(s, trips, b)| {
        // Bounds may be negative → empty loops are exercised too.
        for_("k", s.clone(), s + int(trips), b)
    });
    let if_stmt = (
        arb_int_expr(1, in_loop),
        arb_int_expr(1, in_loop),
        ibody.clone(),
        ibody.clone(),
    )
        .prop_map(|(x, y, t, e)| if_else(lt(x, y), t, e));
    proptest::collection::vec(
        prop_oneof![3 => store_stmt, 1 => assign0, 1 => assign1, 1 => for_stmt, 1 => if_stmt],
        1..4,
    )
    .boxed()
}

/// A complete random kernel over two buffers with random precisions.
fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (
        arb_precision(),
        arb_precision(),
        arb_float_expr(1, false, false),
        arb_float_expr(1, false, false),
        arb_stmts(2, false),
    )
        .prop_map(|(pa, pb, init0, init1, stmts)| {
            let mut body = vec![let_ty("t0", pa, init0), let_ty("t1", pb, init1)];
            body.extend(stmts);
            kernel("fuzz")
                .buffer("a", pa, Access::Read)
                .buffer("b", pb, Access::ReadWrite)
                .int_param("n")
                .float_param_like("alpha", "a")
                .body(body)
        })
}

fn buffers(pa: Precision, pb: Precision) -> BufferMap {
    let mut m = BufferMap::new();
    let xs: Vec<f64> = (0..BUF_LEN)
        .map(|i| (i as f64 * 0.71).sin() * 3.0)
        .collect();
    let ys: Vec<f64> = (0..BUF_LEN)
        .map(|i| (i as f64 * 0.37).cos() * 2.0)
        .collect();
    m.insert("a".into(), FloatVec::from_f64_slice(&xs, pa));
    m.insert("b".into(), FloatVec::from_f64_slice(&ys, pb));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_and_analysis_agree_on_random_kernels(k in arb_kernel()) {
        check_kernel(&k).expect("generated kernels are well-typed");
        let pa = k.buffer_elem("a").unwrap();
        let pb = k.buffer_elem("b").unwrap();
        let launch = Launch::two_d(5, 2).arg_int("n", 7).arg_float("alpha", 1.25);

        let mut bufs_i = buffers(pa, pb);
        let counts_i = run_kernel(&k, &mut bufs_i, &launch).expect("interp runs");

        let compiled = compile_kernel(&k).expect("well-typed kernels compile");
        let mut bufs_v = buffers(pa, pb);
        // One scratch reused across all proptest cases on this thread —
        // the VM's pooled-allocation contract, exercised under fuzzing.
        thread_local! {
            static SCRATCH: RefCell<VmScratch> = RefCell::new(VmScratch::new());
        }
        let counts_v = SCRATCH
            .with(|s| compiled.run_with_scratch(&mut bufs_v, &launch, &mut s.borrow_mut()))
            .expect("vm runs");

        prop_assert_eq!(counts_i, counts_v, "dynamic counts diverge");

        // The parallel entry point must agree bit-for-bit as well, whether
        // it engages chunked execution or falls back to sequential.
        let mut bufs_p = buffers(pa, pb);
        let counts_p = SCRATCH
            .with(|s| compiled.run_parallel(&mut bufs_p, &launch, &mut s.borrow_mut(), 4))
            .expect("parallel vm runs");
        prop_assert_eq!(counts_i, counts_p, "parallel counts diverge");
        for name in ["a", "b"] {
            let x = &bufs_v[name];
            let y = &bufs_p[name];
            for i in 0..x.len() {
                let (a, b) = (x.get(i), y.get(i));
                prop_assert!(
                    a == b || (a.is_nan() && b.is_nan()),
                    "parallel buffer {}[{}]: seq {} vs par {}", name, i, a, b
                );
            }
        }
        for name in ["a", "b"] {
            let x = &bufs_i[name];
            let y = &bufs_v[name];
            prop_assert_eq!(x.len(), y.len());
            for i in 0..x.len() {
                let (a, b) = (x.get(i), y.get(i));
                prop_assert!(
                    a == b || (a.is_nan() && b.is_nan()),
                    "buffer {}[{}]: interp {} vs vm {}", name, i, a, b
                );
            }
        }

        // Integer-driven control flow ⇒ the static analysis is exact.
        let counts_s = count_launch(&k, &launch).expect("analysis runs");
        prop_assert_eq!(counts_s, counts_i, "static counts diverge from dynamic");

        // Printer/parser round trip: printing is a fixed point, and the
        // reparsed kernel behaves identically.
        let printed = kernel_to_string(&k);
        let reparsed = parse_kernel(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        check_kernel(&reparsed).expect("reparsed kernel type-checks");
        prop_assert_eq!(
            kernel_to_string(&reparsed),
            printed.clone(),
            "printing is not idempotent"
        );
        let mut bufs_r = buffers(pa, pb);
        let counts_r = run_kernel(&reparsed, &mut bufs_r, &launch).expect("reparsed runs");
        prop_assert_eq!(counts_r, counts_i, "reparsed kernel counts diverge");
        for name in ["a", "b"] {
            let x = &bufs_i[name];
            let y = &bufs_r[name];
            for i in 0..x.len() {
                let (a, b) = (x.get(i), y.get(i));
                prop_assert!(
                    a == b || (a.is_nan() && b.is_nan()),
                    "reparsed buffer {}[{}]: {} vs {}", name, i, a, b
                );
            }
        }
    }
}
