//! Type checking for kernels and programs.
//!
//! The checker validates a kernel against its *current* parameter table, so
//! it doubles as the post-condition of every precision-rewriting pass: a
//! retyped or cast-inserted kernel must still check.

use crate::ast::{Expr, Kernel, Param, Program, Stmt, TypeRef};
use crate::types::{Precision, ScalarType};
use crate::value::UnaryFn;
use core::fmt;
use std::collections::{HashMap, HashSet};

/// A type error, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    kernel: String,
    message: String,
}

impl TypeError {
    fn new(kernel: &str, message: impl Into<String>) -> TypeError {
        TypeError {
            kernel: kernel.to_owned(),
            message: message.into(),
        }
    }

    /// The kernel in which the error occurred.
    #[must_use]
    pub fn kernel(&self) -> &str {
        &self.kernel
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "type error in kernel `{}`: {}",
            self.kernel, self.message
        )
    }
}

impl std::error::Error for TypeError {}

/// The inferred type of an expression; float literals are *weak* until
/// context pins them to a precision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InferTy {
    /// A definite scalar type.
    Known(ScalarType),
    /// A float of context-determined precision.
    WeakFloat,
}

impl InferTy {
    /// `true` for any float (weak or known) or int — i.e. usable in
    /// arithmetic.
    #[must_use]
    pub fn is_numeric(self) -> bool {
        !matches!(self, InferTy::Known(ScalarType::Bool))
    }

    /// Resolves a weak float to `double`, mirroring C literal semantics
    /// when no context constrains it.
    #[must_use]
    pub fn resolved(self) -> ScalarType {
        match self {
            InferTy::Known(t) => t,
            InferTy::WeakFloat => ScalarType::Float(Precision::Double),
        }
    }
}

/// Type-checks a whole program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found: duplicate kernel names, or any
/// kernel-level error from [`check_kernel`].
pub fn check_program(program: &Program) -> Result<(), TypeError> {
    let mut seen = HashSet::new();
    for k in &program.kernels {
        if !seen.insert(k.name.as_str()) {
            return Err(TypeError::new(&k.name, "duplicate kernel name in program"));
        }
        check_kernel(k)?;
    }
    Ok(())
}

/// Type-checks a single kernel.
///
/// # Errors
///
/// Returns a [`TypeError`] for: duplicate parameter names, dangling
/// `ElemOf` references, unbound variables, loads/stores violating the
/// declared access mode, non-integer indices or loop bounds, non-boolean
/// conditions, booleans in arithmetic, assignment to loop variables or
/// parameters, or redeclaration of a live local.
pub fn check_kernel(kernel: &Kernel) -> Result<(), TypeError> {
    let mut names = HashSet::new();
    for p in &kernel.params {
        if !names.insert(p.name().to_owned()) {
            return Err(TypeError::new(
                &kernel.name,
                format!("duplicate parameter `{}`", p.name()),
            ));
        }
        if let Param::Scalar {
            ty: TypeRef::ElemOf(buf),
            name,
        } = p
        {
            ensure_buffer(kernel, buf)
                .map_err(|m| TypeError::new(&kernel.name, format!("parameter `{name}`: {m}")))?;
        }
    }
    let mut cx = Ctx {
        kernel,
        scopes: vec![HashMap::new()],
    };
    cx.check_block(&kernel.body)
}

fn ensure_buffer(kernel: &Kernel, buf: &str) -> Result<Precision, String> {
    match kernel.param(buf) {
        Some(Param::Buffer { elem, .. }) => Ok(*elem),
        Some(Param::Scalar { .. }) => Err(format!("`{buf}` is a scalar, not a buffer")),
        None => Err(format!("unknown buffer `{buf}`")),
    }
}

/// What a name means inside a kernel body.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Binding {
    Local(ScalarType),
    LoopVar,
}

struct Ctx<'k> {
    kernel: &'k Kernel,
    scopes: Vec<HashMap<String, Binding>>,
}

impl Ctx<'_> {
    fn err(&self, message: impl Into<String>) -> TypeError {
        TypeError::new(&self.kernel.name, message)
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(*b);
            }
        }
        None
    }

    fn declare(&mut self, name: &str, b: Binding) -> Result<(), TypeError> {
        if self.kernel.param(name).is_some() {
            return Err(self.err(format!("`{name}` shadows a kernel parameter")));
        }
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        let top = self.scopes.len() - 1;
        let scope = &mut self.scopes[top];
        if scope.insert(name.to_owned(), b).is_some() {
            return Err(self.err(format!("redeclaration of `{name}` in the same scope")));
        }
        Ok(())
    }

    fn check_block(&mut self, stmts: &[Stmt]) -> Result<(), TypeError> {
        for s in stmts {
            self.check_stmt(s)?;
        }
        Ok(())
    }

    fn scoped(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<(), TypeError>,
    ) -> Result<(), TypeError> {
        self.scopes.push(HashMap::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), TypeError> {
        match stmt {
            Stmt::Let { name, ty, value } => {
                let vt = self.infer(value)?;
                if !vt.is_numeric() {
                    return Err(self.err(format!("local `{name}` initialized with a boolean")));
                }
                let declared = match ty {
                    Some(TypeRef::Concrete(t)) => *t,
                    Some(TypeRef::ElemOf(buf)) => {
                        let p = ensure_buffer(self.kernel, buf)
                            .map_err(|m| self.err(format!("local `{name}`: {m}")))?;
                        ScalarType::Float(p)
                    }
                    None => vt.resolved(),
                };
                self.declare(name, Binding::Local(declared))
            }
            Stmt::Assign { name, value } => {
                let vt = self.infer(value)?;
                match self.lookup(name) {
                    Some(Binding::Local(t)) => {
                        if t == ScalarType::Bool || !vt.is_numeric() {
                            return Err(
                                self.err(format!("assignment to `{name}` mixes bool and number"))
                            );
                        }
                        Ok(())
                    }
                    Some(Binding::LoopVar) => {
                        Err(self.err(format!("cannot assign to loop variable `{name}`")))
                    }
                    None => {
                        if self.kernel.param(name).is_some() {
                            Err(self.err(format!("cannot assign to parameter `{name}`")))
                        } else {
                            Err(self.err(format!("assignment to undeclared `{name}`")))
                        }
                    }
                }
            }
            Stmt::Store { buf, index, value } => {
                match self.kernel.param(buf) {
                    Some(Param::Buffer { access, .. }) if access.writable() => {}
                    Some(Param::Buffer { .. }) => {
                        return Err(self.err(format!("store to read-only buffer `{buf}`")))
                    }
                    _ => return Err(self.err(format!("store to unknown buffer `{buf}`"))),
                }
                self.expect_int(index, "store index")?;
                let vt = self.infer(value)?;
                if !vt.is_numeric() {
                    return Err(self.err(format!("storing a boolean into `{buf}`")));
                }
                Ok(())
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                self.expect_int(start, "loop start")?;
                self.expect_int(end, "loop end")?;
                self.scoped(|cx| {
                    cx.declare(var, Binding::LoopVar)?;
                    cx.check_block(body)
                })
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let ct = self.infer(cond)?;
                if ct != InferTy::Known(ScalarType::Bool) {
                    return Err(self.err("if condition is not a boolean"));
                }
                self.scoped(|cx| cx.check_block(then_body))?;
                self.scoped(|cx| cx.check_block(else_body))
            }
        }
    }

    fn expect_int(&mut self, e: &Expr, what: &str) -> Result<(), TypeError> {
        match self.infer(e)? {
            InferTy::Known(ScalarType::Int) => Ok(()),
            other => Err(self.err(format!("{what} must be an integer, found {other:?}"))),
        }
    }

    fn infer(&mut self, e: &Expr) -> Result<InferTy, TypeError> {
        match e {
            Expr::FloatConst(_) => Ok(InferTy::WeakFloat),
            Expr::IntConst(_) => Ok(InferTy::Known(ScalarType::Int)),
            Expr::GlobalId(dim) => {
                if *dim > 2 {
                    return Err(self.err(format!("get_global_id({dim}) exceeds 3 dimensions")));
                }
                Ok(InferTy::Known(ScalarType::Int))
            }
            Expr::Var(name) => {
                if let Some(b) = self.lookup(name) {
                    return Ok(match b {
                        Binding::Local(t) => InferTy::Known(t),
                        Binding::LoopVar => InferTy::Known(ScalarType::Int),
                    });
                }
                match self.kernel.param(name) {
                    Some(Param::Scalar { ty, .. }) => Ok(InferTy::Known(self.kernel.resolve(ty))),
                    Some(Param::Buffer { .. }) => {
                        Err(self.err(format!("buffer `{name}` used as a scalar")))
                    }
                    None => Err(self.err(format!("unbound variable `{name}`"))),
                }
            }
            Expr::Load { buf, index } => match self.kernel.param(buf) {
                Some(Param::Buffer { access, elem, .. }) => {
                    if !access.readable() {
                        return Err(self.err(format!("load from write-only buffer `{buf}`")));
                    }
                    self.expect_int(index, "load index")?;
                    Ok(InferTy::Known(ScalarType::Float(*elem)))
                }
                _ => Err(self.err(format!("load from unknown buffer `{buf}`"))),
            },
            Expr::Unary { op, arg } => {
                let at = self.infer(arg)?;
                if !at.is_numeric() {
                    return Err(self.err("math function applied to a boolean"));
                }
                match op {
                    UnaryFn::Neg | UnaryFn::Fabs => Ok(at),
                    // sqrt/exp/log of an int computes in double.
                    _ => Ok(match at {
                        InferTy::Known(ScalarType::Int) => {
                            InferTy::Known(ScalarType::Float(Precision::Double))
                        }
                        other => other,
                    }),
                }
            }
            Expr::Bin { lhs, rhs, .. } => {
                let lt = self.infer(lhs)?;
                let rt = self.infer(rhs)?;
                self.promote(lt, rt)
            }
            Expr::Cmp { lhs, rhs, .. } => {
                let lt = self.infer(lhs)?;
                let rt = self.infer(rhs)?;
                self.promote(lt, rt)?; // validates numeric operands
                Ok(InferTy::Known(ScalarType::Bool))
            }
            Expr::Cast { to, arg } => {
                let at = self.infer(arg)?;
                if !at.is_numeric() {
                    return Err(self.err("cast applied to a boolean"));
                }
                let target = match to {
                    TypeRef::Concrete(ScalarType::Bool) => {
                        return Err(self.err("cast to bool is not allowed"))
                    }
                    TypeRef::Concrete(t) => *t,
                    TypeRef::ElemOf(buf) => {
                        ScalarType::Float(ensure_buffer(self.kernel, buf).map_err(|m| self.err(m))?)
                    }
                };
                Ok(InferTy::Known(target))
            }
            Expr::Select { cond, then, els } => {
                if self.infer(cond)? != InferTy::Known(ScalarType::Bool) {
                    return Err(self.err("select condition is not a boolean"));
                }
                let tt = self.infer(then)?;
                let et = self.infer(els)?;
                // Arms must agree in kind (both integer or both float):
                // a mixed select would need a branch-dependent conversion.
                let int_arm = |t: InferTy| t == InferTy::Known(ScalarType::Int);
                if int_arm(tt) != int_arm(et) {
                    return Err(self.err("select arms mix integer and float"));
                }
                self.promote(tt, et)
            }
        }
    }

    fn promote(&self, a: InferTy, b: InferTy) -> Result<InferTy, TypeError> {
        use InferTy::{Known, WeakFloat};
        use ScalarType::{Bool, Float, Int};
        match (a, b) {
            (Known(Bool), _) | (_, Known(Bool)) => Err(self.err("boolean operand in arithmetic")),
            (Known(Int), Known(Int)) => Ok(Known(Int)),
            (Known(Float(x)), Known(Float(y))) => Ok(Known(Float(x.max(y)))),
            (Known(Float(x)), Known(Int)) | (Known(Int), Known(Float(x))) => Ok(Known(Float(x))),
            (WeakFloat, Known(Float(x))) | (Known(Float(x)), WeakFloat) => Ok(Known(Float(x))),
            // A weak literal against an int computes in double (C rules).
            (WeakFloat, Known(Int)) | (Known(Int), WeakFloat) => {
                Ok(Known(Float(Precision::Double)))
            }
            (WeakFloat, WeakFloat) => Ok(WeakFloat),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Access;
    use crate::dsl::*;

    fn simple_kernel(body: Vec<Stmt>) -> Kernel {
        kernel("k")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Single, Access::Write)
            .int_param("n")
            .float_param_like("alpha", "a")
            .body(body)
    }

    #[test]
    fn valid_kernel_checks() {
        let k = simple_kernel(vec![
            let_("i", global_id(0)),
            if_(
                lt(var("i"), var("n")),
                vec![store(
                    "c",
                    var("i"),
                    var("alpha") * load("a", var("i")) + flit(1.0),
                )],
            ),
        ]);
        check_kernel(&k).unwrap();
    }

    #[test]
    fn load_from_write_only_buffer_fails() {
        let k = simple_kernel(vec![let_("x", load("c", int(0)))]);
        let e = check_kernel(&k).unwrap_err();
        assert!(e.to_string().contains("write-only"), "{e}");
    }

    #[test]
    fn store_to_read_only_buffer_fails() {
        let k = simple_kernel(vec![store("a", int(0), flit(1.0))]);
        let e = check_kernel(&k).unwrap_err();
        assert!(e.to_string().contains("read-only"), "{e}");
    }

    #[test]
    fn float_index_fails() {
        let k = simple_kernel(vec![let_("x", load("a", flit(0.0)))]);
        assert!(check_kernel(&k).is_err());
    }

    #[test]
    fn unbound_variable_fails() {
        let k = simple_kernel(vec![let_("x", var("ghost"))]);
        let e = check_kernel(&k).unwrap_err();
        assert!(e.to_string().contains("unbound"), "{e}");
        assert_eq!(e.kernel(), "k");
    }

    #[test]
    fn assignment_to_loop_var_fails() {
        let k = simple_kernel(vec![for_("i", int(0), int(4), vec![assign("i", int(0))])]);
        assert!(check_kernel(&k).is_err());
    }

    #[test]
    fn loop_scopes_isolate_locals() {
        // `x` declared inside the loop is not visible after it.
        let k = simple_kernel(vec![
            for_("i", int(0), int(4), vec![let_("x", flit(0.0))]),
            assign("x", flit(1.0)),
        ]);
        let e = check_kernel(&k).unwrap_err();
        assert!(e.to_string().contains("undeclared"), "{e}");
    }

    #[test]
    fn redeclaration_in_same_scope_fails() {
        let k = simple_kernel(vec![let_("x", flit(0.0)), let_("x", flit(1.0))]);
        assert!(check_kernel(&k).is_err());
    }

    #[test]
    fn shadowing_a_parameter_fails() {
        let k = simple_kernel(vec![let_("n", int(0))]);
        assert!(check_kernel(&k).is_err());
    }

    #[test]
    fn non_bool_condition_fails() {
        let k = simple_kernel(vec![if_(var("n"), vec![])]);
        assert!(check_kernel(&k).is_err());
    }

    #[test]
    fn weak_literal_adopts_buffer_precision() {
        // a[i] (double) + 1.0 → double; c stores single: fine (implicit
        // store conversion), and the checker accepts the mixed store.
        let k = simple_kernel(vec![
            let_("i", global_id(0)),
            store("c", var("i"), load("a", var("i")) + flit(1.0)),
        ]);
        check_kernel(&k).unwrap();
    }

    #[test]
    fn elem_of_unknown_buffer_in_param_fails() {
        let k = kernel("k").float_param_like("alpha", "ghost").body(vec![]);
        let e = check_kernel(&k).unwrap_err();
        assert!(e.to_string().contains("unknown buffer"), "{e}");
    }

    #[test]
    fn duplicate_kernel_names_fail_program_check() {
        let p = Program::new("p")
            .with_kernel(simple_kernel(vec![]))
            .with_kernel(simple_kernel(vec![]));
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn duplicate_param_names_fail() {
        let k = kernel("k").int_param("n").int_param("n").body(vec![]);
        assert!(check_kernel(&k).is_err());
    }

    #[test]
    fn cast_to_bool_fails() {
        let k = simple_kernel(vec![let_(
            "x",
            Expr::Cast {
                to: TypeRef::Concrete(ScalarType::Bool),
                arg: Box::new(int(1)),
            },
        )]);
        assert!(check_kernel(&k).is_err());
    }

    #[test]
    fn select_promotes_operands() {
        let k = simple_kernel(vec![
            let_("i", global_id(0)),
            let_(
                "x",
                select(lt(var("i"), var("n")), load("a", var("i")), flit(0.0)),
            ),
        ]);
        check_kernel(&k).unwrap();
    }
}
