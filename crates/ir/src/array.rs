//! Typed float arrays — the data that lives inside OpenCL memory objects.

use crate::types::Precision;
use crate::value::Scalar;
use core::fmt;
use prescaler_fp16::F16;

/// A homogeneous float array at one of the three precisions.
///
/// This is the payload of both host arrays and device memory objects in the
/// reproduction. Precision scaling converts a `FloatVec` between variants;
/// every conversion rounds element-wise exactly once, so the numeric effect
/// of host-side, device-side and transient conversion chains is faithful.
///
/// ```
/// use prescaler_ir::{FloatVec, Precision};
///
/// let xs = FloatVec::from_f64_slice(&[1.0, 2.5, 3.25], Precision::Double);
/// let halves = xs.converted(Precision::Half);
/// assert_eq!(halves.precision(), Precision::Half);
/// assert_eq!(halves.get(1), 2.5);
/// ```
#[derive(Clone, PartialEq)]
pub enum FloatVec {
    /// Binary16 storage.
    F16(Vec<F16>),
    /// Binary32 storage.
    F32(Vec<f32>),
    /// Binary64 storage.
    F64(Vec<f64>),
}

impl FloatVec {
    /// An array of `len` zeros at precision `p`.
    #[must_use]
    pub fn zeros(len: usize, p: Precision) -> FloatVec {
        match p {
            Precision::Half => FloatVec::F16(vec![F16::ZERO; len]),
            Precision::Single => FloatVec::F32(vec![0.0; len]),
            Precision::Double => FloatVec::F64(vec![0.0; len]),
        }
    }

    /// Builds an array at precision `p` by rounding each `f64` once.
    #[must_use]
    pub fn from_f64_slice(values: &[f64], p: Precision) -> FloatVec {
        match p {
            Precision::Half => FloatVec::F16(values.iter().map(|&v| F16::from_f64(v)).collect()),
            Precision::Single => FloatVec::F32(values.iter().map(|&v| v as f32).collect()),
            Precision::Double => FloatVec::F64(values.to_vec()),
        }
    }

    /// The storage precision.
    #[must_use]
    pub fn precision(&self) -> Precision {
        match self {
            FloatVec::F16(_) => Precision::Half,
            FloatVec::F32(_) => Precision::Single,
            FloatVec::F64(_) => Precision::Double,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            FloatVec::F16(v) => v.len(),
            FloatVec::F32(v) => v.len(),
            FloatVec::F64(v) => v.len(),
        }
    }

    /// `true` when the array holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total storage size in bytes at the current precision.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.len() * self.precision().size_bytes()
    }

    /// Reads element `i`, widened to `f64` (exact).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> f64 {
        match self {
            FloatVec::F16(v) => v[i].to_f64(),
            FloatVec::F32(v) => f64::from(v[i]),
            FloatVec::F64(v) => v[i],
        }
    }

    /// Reads element `i` as a [`Scalar`] of the storage precision.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn get_scalar(&self, i: usize) -> Scalar {
        match self {
            FloatVec::F16(v) => Scalar::F16(v[i]),
            FloatVec::F32(v) => Scalar::F32(v[i]),
            FloatVec::F64(v) => Scalar::F64(v[i]),
        }
    }

    /// Writes `value` to element `i`, rounding once to the storage
    /// precision.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, value: f64) {
        match self {
            FloatVec::F16(v) => v[i] = F16::from_f64(value),
            FloatVec::F32(v) => v[i] = value as f32,
            FloatVec::F64(v) => v[i] = value,
        }
    }

    /// Writes a [`Scalar`], converting to the storage precision (one
    /// rounding from the scalar's own precision — exactly what a typed
    /// store instruction does).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `value` is not a float.
    pub fn set_scalar(&mut self, i: usize, value: Scalar) {
        self.set(i, value.as_f64());
    }

    /// Returns a copy converted to precision `p` (identity if equal).
    ///
    /// Each element is rounded exactly once from its current stored value;
    /// chaining conversions (e.g. double→half→single, the paper's transient
    /// conversion) therefore accumulates real rounding error.
    #[must_use]
    pub fn converted(&self, p: Precision) -> FloatVec {
        // Typed direct loops per (src, dst) pair: same single rounding as
        // `set(i, get(i))` — each narrowing below rounds exactly once —
        // but monomorphic, so the compiler vectorizes them.
        match (self, p) {
            (FloatVec::F16(_), Precision::Half)
            | (FloatVec::F32(_), Precision::Single)
            | (FloatVec::F64(_), Precision::Double) => self.clone(),
            (FloatVec::F16(v), Precision::Single) => {
                FloatVec::F32(v.iter().map(|x| x.to_f64() as f32).collect())
            }
            (FloatVec::F16(v), Precision::Double) => {
                FloatVec::F64(v.iter().map(|x| x.to_f64()).collect())
            }
            (FloatVec::F32(v), Precision::Half) => {
                FloatVec::F16(v.iter().map(|&x| F16::from_f64(f64::from(x))).collect())
            }
            (FloatVec::F32(v), Precision::Double) => {
                FloatVec::F64(v.iter().map(|&x| f64::from(x)).collect())
            }
            (FloatVec::F64(v), Precision::Half) => {
                FloatVec::F16(v.iter().map(|&x| F16::from_f64(x)).collect())
            }
            (FloatVec::F64(v), Precision::Single) => {
                FloatVec::F32(v.iter().map(|&x| x as f32).collect())
            }
        }
    }

    /// Widens to a plain `f64` vector (exact).
    #[must_use]
    pub fn to_f64_vec(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Iterator over elements widened to `f64`.
    pub fn iter_f64(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Counts elements that became non-finite at this precision — the
    /// signature of half-precision range overflow (paper §3.2.3).
    #[must_use]
    pub fn count_non_finite(&self) -> usize {
        self.iter_f64().filter(|v| !v.is_finite()).count()
    }
}

impl fmt::Debug for FloatVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FloatVec<{}>[len {}]", self.precision(), self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_have_requested_precision_and_len() {
        for p in Precision::ALL {
            let v = FloatVec::zeros(5, p);
            assert_eq!(v.precision(), p);
            assert_eq!(v.len(), 5);
            assert_eq!(v.size_bytes(), 5 * p.size_bytes());
            assert!((0..5).all(|i| v.get(i) == 0.0));
        }
        assert!(FloatVec::zeros(0, Precision::Half).is_empty());
    }

    #[test]
    fn set_get_round_trips_at_each_precision() {
        for p in Precision::ALL {
            let mut v = FloatVec::zeros(3, p);
            v.set(1, 1.5); // representable at every precision
            assert_eq!(v.get(1), 1.5);
            assert_eq!(v.get_scalar(1).precision(), Some(p));
        }
    }

    #[test]
    fn storing_rounds_to_storage_precision() {
        let mut v = FloatVec::zeros(1, Precision::Half);
        v.set(0, 2049.0);
        assert_eq!(v.get(0), 2048.0, "2049 is not representable in binary16");
    }

    #[test]
    fn conversion_is_elementwise_single_rounding() {
        let xs = FloatVec::from_f64_slice(&[1.0, 1.0 + 2f64.powi(-11)], Precision::Double);
        let h = xs.converted(Precision::Half);
        assert_eq!(h.get(0), 1.0);
        assert_eq!(h.get(1), 1.0, "tie rounds to even");
        // Identity conversion clones.
        assert_eq!(xs.converted(Precision::Double), xs);
    }

    #[test]
    fn transient_chain_accumulates_error() {
        let x = 0.1f64;
        let direct = FloatVec::from_f64_slice(&[x], Precision::Single);
        let transient = FloatVec::from_f64_slice(&[x], Precision::Double)
            .converted(Precision::Half)
            .converted(Precision::Single);
        // Through half, 0.1 keeps only 11 significand bits.
        assert_ne!(direct.get(0), transient.get(0));
        assert!((transient.get(0) - x).abs() > (direct.get(0) - x).abs());
    }

    #[test]
    fn overflow_to_infinity_is_detected() {
        let xs = FloatVec::from_f64_slice(&[1.0, 1e6, -1e6], Precision::Half);
        assert_eq!(xs.count_non_finite(), 2);
        let ys = FloatVec::from_f64_slice(&[1.0, 1e6], Precision::Single);
        assert_eq!(ys.count_non_finite(), 0);
    }

    #[test]
    fn debug_formatting_is_compact() {
        let v = FloatVec::zeros(4, Precision::Single);
        assert_eq!(format!("{v:?}"), "FloatVec<float>[len 4]");
    }
}
