//! A parser for the OpenCL-C-like surface syntax the pretty-printer emits.
//!
//! Together with [`crate::print`] this closes the loop: kernels can be
//! authored as source text, parsed to the IR, transformed by the passes,
//! and printed back — `parse(print(k))` is behaviourally identical to `k`,
//! and printing is idempotent (`print(parse(print(k))) == print(k)`,
//! pinned by tests).
//!
//! Three deliberate simplifications relative to the DSL:
//!
//! * parsed local/scalar types are always *concrete* (the printer resolves
//!   `ElemOf` references before emitting source);
//! * a `const __global` buffer parameter parses as read-only, a plain
//!   `__global` one as read-write — [`crate::passes::infer_access`] can
//!   refine this afterwards;
//! * a minus sign directly before a literal folds into the literal, so an
//!   explicit `Neg(Const)` node does not survive a round trip (a negative
//!   constant does).

use crate::ast::{Access, Expr, Kernel, Param, Program, Stmt, TypeRef};
use crate::types::{Precision, ScalarType};
use crate::value::{CmpOp, FloatBinOp, UnaryFn};
use core::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a whole program: zero or more kernels, optionally preceded by a
/// `// program: <name>` header comment (as emitted by the printer).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut name = String::from("program");
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("// program:") {
            name = rest.trim().to_owned();
            break;
        }
        if !t.is_empty() && !t.starts_with("//") {
            break;
        }
    }
    let mut p = Parser::new(src)?;
    let mut program = Program::new(name);
    while !p.at_end() {
        program.kernels.push(p.kernel()?);
    }
    Ok(program)
}

/// Parses a single kernel.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let mut p = Parser::new(src)?;
    let k = p.kernel()?;
    if !p.at_end() {
        return Err(p.err("trailing input after kernel"));
    }
    Ok(k)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let puncts: [&'static str; 24] = [
        "<=", ">=", "==", "!=", "++", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", "<", ">",
        "=", "+", "-", "*", "/", ".", "!",
    ];

    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let (tline, tcol) = (line, col);
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i];
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' {
                    is_float = true;
                    i += 1;
                } else if d == 'e' || d == 'E' {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == '+' || bytes[i] == '-') {
                        i += 1;
                    }
                } else {
                    break;
                }
            }
            let text: String = bytes[start..i].iter().collect();
            col += i - start;
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| ParseError {
                    line: tline,
                    col: tcol,
                    message: format!("bad float literal `{text}`"),
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| ParseError {
                    line: tline,
                    col: tcol,
                    message: format!("bad integer literal `{text}`"),
                })?)
            };
            out.push(Token {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            col += i - start;
            // `inf`/`nan` float literals (printer can emit them).
            let tok = match text.as_str() {
                "inf" => Tok::Float(f64::INFINITY),
                "nan" => Tok::Float(f64::NAN),
                _ => Tok::Ident(text),
            };
            out.push(Token {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Punctuation (longest match first).
        let mut matched = false;
        for p in puncts {
            let pc: Vec<char> = p.chars().collect();
            if bytes[i..].starts_with(&pc) {
                out.push(Token {
                    tok: Tok::Punct(p),
                    line: tline,
                    col: tcol,
                });
                i += pc.len();
                col += pc.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(ParseError {
                line,
                col,
                message: format!("unexpected character `{c}`"),
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or((0, 0), |t| (t.line, t.col));
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?
            .tok
            .clone();
        self.pos += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        match self.bump()? {
            Tok::Punct(q) if q == p => Ok(()),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected `{p}`, found {other:?}")))
            }
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if self.peek() == Some(&Tok::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected an identifier, found {other:?}")))
            }
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn peek_type(&self) -> Option<ScalarType> {
        match self.peek() {
            Some(Tok::Ident(s)) => scalar_type(s),
            _ => None,
        }
    }

    // -- grammar ---------------------------------------------------------

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        self.expect_kw("__kernel")?;
        self.expect_kw("void")?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.param()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Kernel { name, params, body })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let is_const = self.eat_kw("const");
        if self.eat_kw("__global") {
            let ty = self.ident()?;
            let elem = precision(&ty)
                .ok_or_else(|| self.err(format!("`{ty}` is not a float element type")))?;
            self.expect_punct("*")?;
            let name = self.ident()?;
            return Ok(Param::Buffer {
                name,
                elem,
                access: if is_const {
                    Access::Read
                } else {
                    Access::ReadWrite
                },
            });
        }
        if is_const {
            return Err(self.err("`const` scalar parameters are not supported"));
        }
        let ty = self.ident()?;
        let st = scalar_type(&ty).ok_or_else(|| self.err(format!("unknown type `{ty}`")))?;
        let name = self.ident()?;
        Ok(Param::Scalar {
            name,
            ty: TypeRef::Concrete(st),
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        // for (...) { ... }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            self.expect_kw("long")?;
            let var = self.ident()?;
            self.expect_punct("=")?;
            let start = self.expr()?;
            self.expect_punct(";")?;
            let v2 = self.ident()?;
            if v2 != var {
                return Err(self.err("loop condition variable differs from declaration"));
            }
            self.expect_punct("<")?;
            let end = self.expr()?;
            self.expect_punct(";")?;
            self.expect_punct("++")?;
            let v3 = self.ident()?;
            if v3 != var {
                return Err(self.err("loop increment variable differs from declaration"));
            }
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::For {
                var,
                start,
                end,
                body,
            });
        }
        // if (...) { ... } [else { ... }]
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_body = self.block()?;
            let else_body = if self.eat_kw("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_body,
                else_body,
            });
        }
        // Declaration: `<type>|auto ident = expr ;`
        let declared_ty = if self.eat_kw("auto") {
            Some(None)
        } else if let Some(st) = self.peek_type() {
            // Only a declaration when followed by `ident =`; `long` etc.
            // cannot start an expression statement, so this is safe.
            self.pos += 1;
            Some(Some(st))
        } else {
            None
        };
        if let Some(ty) = declared_ty {
            let name = self.ident()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let {
                name,
                ty: ty.map(TypeRef::Concrete),
                value,
            });
        }
        // Assignment or store: `ident = expr ;` or `ident [ e ] = expr ;`
        let name = self.ident()?;
        if self.eat_punct("[") {
            let index = self.expr()?;
            self.expect_punct("]")?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Store {
                buf: name,
                index,
                value,
            });
        }
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign { name, value })
    }

    /// expr := cmp ("?" expr ":" expr)?
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let c = self.cmp_expr()?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.expr()?;
            return Ok(Expr::Select {
                cond: Box::new(c),
                then: Box::new(then),
                els: Box::new(els),
            });
        }
        Ok(c)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Punct("<")) => Some(CmpOp::Lt),
            Some(Tok::Punct("<=")) => Some(CmpOp::Le),
            Some(Tok::Punct(">")) => Some(CmpOp::Gt),
            Some(Tok::Punct(">=")) => Some(CmpOp::Ge),
            Some(Tok::Punct("==")) => Some(CmpOp::Eq),
            Some(Tok::Punct("!=")) => Some(CmpOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            return Ok(Expr::Cmp {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("+")) => FloatBinOp::Add,
                Some(Tok::Punct("-")) => FloatBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("*")) => FloatBinOp::Mul,
                Some(Tok::Punct("/")) => FloatBinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            // A minus directly before a literal is part of the literal
            // (keeps `-2.5` ↔ `FloatConst(-2.5)` a round trip); anything
            // else is a negation operation.
            match self.peek() {
                Some(Tok::Float(v)) => {
                    let v = -*v;
                    self.pos += 1;
                    return Ok(Expr::FloatConst(v));
                }
                Some(Tok::Int(v)) => {
                    let v = v.wrapping_neg();
                    self.pos += 1;
                    return Ok(Expr::IntConst(v));
                }
                _ => {}
            }
            let arg = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryFn::Neg,
                arg: Box::new(arg),
            });
        }
        // Cast: `( type ) ( expr )` — distinguished from a parenthesized
        // expression by the type keyword.
        if self.peek() == Some(&Tok::Punct("(")) {
            if let Some(Tok::Ident(s)) = self.peek2() {
                if let Some(st) = scalar_type(s) {
                    // ( type )
                    self.pos += 2;
                    self.expect_punct(")")?;
                    self.expect_punct("(")?;
                    let arg = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Cast {
                        to: TypeRef::Concrete(st),
                        arg: Box::new(arg),
                    });
                }
            }
            self.pos += 1; // consume "("
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump()? {
            Tok::Int(v) => Ok(Expr::IntConst(v)),
            Tok::Float(v) => Ok(Expr::FloatConst(v)),
            Tok::Ident(name) => {
                // Builtins.
                let unary = match name.as_str() {
                    "sqrt" => Some(UnaryFn::Sqrt),
                    "exp" => Some(UnaryFn::Exp),
                    "log" => Some(UnaryFn::Log),
                    "fabs" => Some(UnaryFn::Fabs),
                    _ => None,
                };
                if let Some(op) = unary {
                    self.expect_punct("(")?;
                    let arg = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Unary {
                        op,
                        arg: Box::new(arg),
                    });
                }
                if name == "min" || name == "max" {
                    self.expect_punct("(")?;
                    let a = self.expr()?;
                    self.expect_punct(",")?;
                    let b = self.expr()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::Bin {
                        op: if name == "min" {
                            FloatBinOp::Min
                        } else {
                            FloatBinOp::Max
                        },
                        lhs: Box::new(a),
                        rhs: Box::new(b),
                    });
                }
                if name == "get_global_id" {
                    self.expect_punct("(")?;
                    let dim = match self.bump()? {
                        Tok::Int(v) if (0..=2).contains(&v) => v as usize,
                        _ => return Err(self.err("get_global_id takes 0, 1 or 2")),
                    };
                    self.expect_punct(")")?;
                    return Ok(Expr::GlobalId(dim));
                }
                // Load: ident [ expr ]
                if self.eat_punct("[") {
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    return Ok(Expr::Load {
                        buf: name,
                        index: Box::new(index),
                    });
                }
                Ok(Expr::Var(name))
            }
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected an expression, found {other:?}")))
            }
        }
    }
}

fn precision(s: &str) -> Option<Precision> {
    match s {
        "half" => Some(Precision::Half),
        "float" => Some(Precision::Single),
        "double" => Some(Precision::Double),
        _ => None,
    }
}

fn scalar_type(s: &str) -> Option<ScalarType> {
    match s {
        "long" => Some(ScalarType::Int),
        _ => precision(s).map(ScalarType::Float),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::print::kernel_to_string;
    use crate::typeck::check_kernel;

    #[test]
    fn parses_a_hand_written_kernel() {
        let src = r"
            __kernel void saxpy(const __global float* x, __global float* y,
                                float a, long n) {
                long i = get_global_id(0);
                if (i < n) {
                    y[i] = (a * x[i]) + y[i];
                }
            }
        ";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.name, "saxpy");
        assert_eq!(k.params.len(), 4);
        assert_eq!(k.buffer_elem("x"), Some(Precision::Single));
        check_kernel(&k).unwrap();
    }

    #[test]
    fn print_parse_print_is_idempotent_on_gemm_like_kernels() {
        let k = kernel("gemm")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .float_param("alpha", Precision::Double)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_(
                    lt(var("i"), var("n")),
                    vec![
                        let_ty("acc", Precision::Double, flit(0.0)),
                        for_(
                            "k",
                            int(0),
                            var("n"),
                            vec![add_assign(
                                "acc",
                                load("a", var("i") * var("n") + var("k"))
                                    * load("b", var("k") * var("n") + var("j")),
                            )],
                        ),
                        store(
                            "c",
                            var("i") * var("n") + var("j"),
                            var("alpha") * var("acc")
                                + select(
                                    gt(var("acc"), flit(0.5)),
                                    cast(Precision::Half, var("acc")),
                                    flit(0.25),
                                ),
                        ),
                    ],
                ),
            ]);
        let printed = kernel_to_string(&k);
        let parsed = parse_kernel(&printed).unwrap();
        check_kernel(&parsed).unwrap();
        let reprinted = kernel_to_string(&parsed);
        assert_eq!(printed, reprinted, "printing must be a fixed point");
    }

    #[test]
    fn parsed_kernel_executes_like_the_original() {
        use crate::interp::{run_kernel, BufferMap, Launch};
        use crate::FloatVec;
        let original = kernel("scale")
            .buffer("x", Precision::Single, Access::ReadWrite)
            .float_param("a", Precision::Single)
            .body(vec![
                let_("i", global_id(0)),
                store(
                    "x",
                    var("i"),
                    min2(load("x", var("i")) * var("a") + flit(1.0), flit(100.0)),
                ),
            ]);
        let parsed = parse_kernel(&kernel_to_string(&original)).unwrap();
        let run = |k: &Kernel| {
            let mut bufs = BufferMap::new();
            bufs.insert(
                "x".into(),
                FloatVec::from_f64_slice(&[1.5, -2.0, 80.0], Precision::Single),
            );
            run_kernel(k, &mut bufs, &Launch::one_d(3).arg_float("a", 2.0)).unwrap();
            bufs.remove("x").unwrap()
        };
        assert_eq!(run(&original), run(&parsed));
    }

    #[test]
    fn program_header_names_the_program() {
        let p = Program::new("myprog").with_kernel(
            kernel("k")
                .buffer("x", Precision::Double, Access::ReadWrite)
                .body(vec![store("x", int(0), flit(1.0))]),
        );
        let printed = crate::print::program_to_string(&p);
        let parsed = parse_program(&printed).unwrap();
        assert_eq!(parsed.name, "myprog");
        assert_eq!(parsed.kernels.len(), 1);
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let src = "__kernel void k() {\n    long i = @;\n}";
        let e = parse_kernel(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unexpected character"), "{e}");
    }

    #[test]
    fn rejects_malformed_loops() {
        let src = "__kernel void k(__global float* x) {\n for (long i = 0; j < 4; ++i) { x[i] = 1.0; }\n}";
        let e = parse_kernel(src).unwrap_err();
        assert!(e.message.contains("condition variable"), "{e}");
    }

    #[test]
    fn casts_and_parens_disambiguate() {
        let src = r"
            __kernel void k(__global double* x) {
                long i = get_global_id(0);
                x[i] = (half)((x[i] + 1.0)) * (x[i] - 1.0);
            }
        ";
        let k = parse_kernel(src).unwrap();
        check_kernel(&k).unwrap();
        let printed = kernel_to_string(&k);
        assert!(printed.contains("(half)("), "{printed}");
    }

    #[test]
    fn float_literal_forms() {
        let src = r"
            __kernel void k(__global double* x) {
                x[0] = 1.5e3;
                x[1] = 0.25;
                x[2] = 2.0;
            }
        ";
        let k = parse_kernel(src).unwrap();
        match &k.body[0] {
            Stmt::Store { value, .. } => assert_eq!(value, &Expr::FloatConst(1500.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_polybench_style_shape_round_trips() {
        // A kernel exercising every statement and expression form.
        let k = kernel("omni")
            .buffer("a", Precision::Half, Access::Read)
            .buffer("c", Precision::Single, Access::ReadWrite)
            .int_param("n")
            .float_param("beta", Precision::Single)
            .body(vec![
                let_("i", global_id(0)),
                let_("jj", global_id(1)),
                let_ty("t", Precision::Single, flit(0.0)),
                for_(
                    "k",
                    int(0),
                    var("n"),
                    vec![
                        assign("t", var("t") + cast(Precision::Single, load("a", var("k")))),
                        if_else(
                            le(var("k"), int(2)),
                            vec![store("c", var("k"), sqrt(fabs(var("t"))))],
                            vec![store("c", var("k"), exp(var("t") / var("beta")))],
                        ),
                    ],
                ),
                store(
                    "c",
                    var("i") + var("jj"),
                    max2(var("t"), -load("c", var("i"))),
                ),
            ]);
        let printed = kernel_to_string(&k);
        let parsed = parse_kernel(&printed).unwrap();
        check_kernel(&parsed).unwrap();
        assert_eq!(printed, kernel_to_string(&parsed));
    }
}
