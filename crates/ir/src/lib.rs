//! A typed kernel IR with precision-rewriting passes, static analyses, and
//! a precision-faithful interpreter.
//!
//! This crate is the "compiler half" of the PreScaler (CGO'20)
//! reproduction. The paper transforms OpenCL kernels with LLVM; here the
//! same transformations are expressed over a small structured IR:
//!
//! * [`ast`] — kernels, parameters, statements, expressions;
//! * [`dsl`] — a builder DSL so kernels read close to OpenCL C;
//! * [`typeck`] — a type checker (also the post-condition of every pass);
//! * [`passes`] — memory-object retyping, in-kernel cast insertion,
//!   constant folding, access inference;
//! * [`interp`] — functional execution in true binary16/32/64 arithmetic,
//!   with exact dynamic operation counts;
//! * [`analysis`] — static operation counts that match the interpreter
//!   bit-for-bit on integer-controlled kernels;
//! * [`range`] — forward value-range dataflow (interval arithmetic with
//!   widening at loop heads) proving precision-safety verdicts;
//! * [`verify`] — a structural IR verifier with typed diagnostics, run
//!   before kernel compilation;
//! * [`print`] — OpenCL-C-like pretty-printing.
//!
//! # Example
//!
//! ```
//! use prescaler_ir::dsl::*;
//! use prescaler_ir::{Access, FloatVec, Launch, Precision};
//! use prescaler_ir::interp::{run_kernel, BufferMap};
//!
//! // y[i] = a * x[i] + y[i], computed at whatever precision the buffers use.
//! let k = kernel("saxpy")
//!     .buffer("x", Precision::Double, Access::Read)
//!     .buffer("y", Precision::Double, Access::ReadWrite)
//!     .float_param_like("a", "x")
//!     .body(vec![
//!         let_("i", global_id(0)),
//!         store("y", var("i"), var("a") * load("x", var("i")) + load("y", var("i"))),
//!     ]);
//! prescaler_ir::typeck::check_kernel(&k)?;
//!
//! let mut bufs = BufferMap::new();
//! bufs.insert("x".into(), FloatVec::from_f64_slice(&[1.0, 2.0], Precision::Double));
//! bufs.insert("y".into(), FloatVec::from_f64_slice(&[10.0, 20.0], Precision::Double));
//! let counts = run_kernel(&k, &mut bufs, &Launch::one_d(2).arg_float("a", 3.0))?;
//! assert_eq!(bufs["y"].get(1), 26.0);
//! assert_eq!(counts.at(Precision::Double).mul, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod array;
pub mod ast;
pub mod counts;
pub mod dsl;
pub mod interp;
pub mod parse;
pub mod passes;
pub mod print;
pub mod range;
pub mod typeck;
pub mod types;
pub mod value;
pub mod verify;
pub mod vm;

pub use analysis::ParallelSafety;
pub use array::FloatVec;
pub use ast::{Access, Expr, Ident, Kernel, Param, Program, Stmt, TypeRef};
pub use counts::{OpCounts, PrecCounts};
pub use interp::{ArgValue, BufferMap, ExecError, Launch};
pub use parse::{parse_kernel, parse_program, ParseError};
pub use range::{
    analyze_kernel, verdict_for, Interval, LaunchBounds, PrecisionVerdict, ScalarBound,
    StoreSummary, UnsafeReason, ValueRange,
};
pub use types::{Precision, ScalarType};
pub use value::{CmpOp, FloatBinOp, Scalar, UnaryFn};
pub use verify::{verify_kernel, verify_program, Severity, VerifyDiagnostic};
