//! The IR verifier: structural lints over a kernel, reported as typed
//! diagnostics instead of a first-error abort.
//!
//! The type checker ([`crate::typeck`]) answers "can this kernel run?"
//! and stops at the first violation. The verifier answers "is this
//! kernel *well-formed*?": it walks the whole kernel, collects every
//! finding, and classifies each one with a severity, so a runtime can
//! refuse to compile genuinely broken kernels ([`Severity::Error`])
//! while merely reporting suspicious-but-runnable shapes
//! ([`Severity::Warning`]). `ocl::Session` runs it on every scaled
//! kernel variant before handing it to the compiler, and the
//! `prescaler-verify` check runs it over the whole polybench suite,
//! where zero diagnostics of any severity are expected.

use crate::ast::{Expr, Kernel, Param, Program, Stmt, TypeRef};
use crate::typeck::check_kernel;
use crate::value::FloatBinOp;
use core::fmt;
use std::collections::{HashMap, HashSet};

/// How bad a [`VerifyDiagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The kernel must not be compiled or executed.
    Error,
    /// The kernel is runnable but almost certainly not what the author
    /// meant (dead work, unused inputs).
    Warning,
}

/// One verifier finding, typed by its cause.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyDiagnostic {
    /// A variable is referenced but bound by no parameter, local, or
    /// loop variable.
    UnboundVar {
        /// Kernel name.
        kernel: String,
        /// The dangling name.
        name: String,
    },
    /// The kernel violates the type system (the verifier bridges
    /// [`check_kernel`] findings that no more specific diagnostic
    /// explains).
    TypeClash {
        /// Kernel name.
        kernel: String,
        /// The type checker's description.
        detail: String,
    },
    /// A load or store uses a constant index that is negative — out of
    /// bounds for a buffer of any length.
    OobConstIndex {
        /// Kernel name.
        kernel: String,
        /// Buffer parameter.
        buf: String,
        /// The provably out-of-bounds index.
        index: i64,
    },
    /// A store to a constant index is overwritten by a later store to
    /// the same index with no intervening read of the buffer: the first
    /// store is dead.
    DeadStore {
        /// Kernel name.
        kernel: String,
        /// Buffer parameter.
        buf: String,
        /// The constant index stored twice.
        index: i64,
    },
    /// A kernel parameter is never referenced by the body (or by
    /// another parameter's element type).
    UnusedParam {
        /// Kernel name.
        kernel: String,
        /// The unused parameter.
        param: String,
    },
    /// A store targets a name that is not a buffer parameter (a scalar
    /// parameter, a local, or nothing at all).
    NonBufferStore {
        /// Kernel name.
        kernel: String,
        /// The non-buffer store target.
        name: String,
    },
}

impl VerifyDiagnostic {
    /// The kernel the finding is in.
    #[must_use]
    pub fn kernel(&self) -> &str {
        match self {
            VerifyDiagnostic::UnboundVar { kernel, .. }
            | VerifyDiagnostic::TypeClash { kernel, .. }
            | VerifyDiagnostic::OobConstIndex { kernel, .. }
            | VerifyDiagnostic::DeadStore { kernel, .. }
            | VerifyDiagnostic::UnusedParam { kernel, .. }
            | VerifyDiagnostic::NonBufferStore { kernel, .. } => kernel,
        }
    }

    /// How severe the finding is.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            VerifyDiagnostic::UnboundVar { .. }
            | VerifyDiagnostic::TypeClash { .. }
            | VerifyDiagnostic::OobConstIndex { .. }
            | VerifyDiagnostic::NonBufferStore { .. } => Severity::Error,
            VerifyDiagnostic::DeadStore { .. } | VerifyDiagnostic::UnusedParam { .. } => {
                Severity::Warning
            }
        }
    }
}

impl fmt::Display for VerifyDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyDiagnostic::UnboundVar { kernel, name } => {
                write!(f, "kernel `{kernel}`: unbound variable `{name}`")
            }
            VerifyDiagnostic::TypeClash { kernel, detail } => {
                write!(f, "kernel `{kernel}`: type clash: {detail}")
            }
            VerifyDiagnostic::OobConstIndex { kernel, buf, index } => {
                write!(
                    f,
                    "kernel `{kernel}`: constant index {index} into `{buf}` is out of bounds"
                )
            }
            VerifyDiagnostic::DeadStore { kernel, buf, index } => {
                write!(
                    f,
                    "kernel `{kernel}`: dead store to `{buf}[{index}]` (overwritten before any read)"
                )
            }
            VerifyDiagnostic::UnusedParam { kernel, param } => {
                write!(f, "kernel `{kernel}`: parameter `{param}` is never used")
            }
            VerifyDiagnostic::NonBufferStore { kernel, name } => {
                write!(f, "kernel `{kernel}`: store through non-buffer `{name}`")
            }
        }
    }
}

/// Verifies every kernel of a program; diagnostics come back in kernel
/// declaration order.
#[must_use]
pub fn verify_program(program: &Program) -> Vec<VerifyDiagnostic> {
    program.kernels.iter().flat_map(verify_kernel).collect()
}

/// Verifies one kernel, returning *all* findings (empty = clean).
#[must_use]
pub fn verify_kernel(kernel: &Kernel) -> Vec<VerifyDiagnostic> {
    let mut v = Verifier {
        kernel,
        diagnostics: Vec::new(),
        scopes: vec![HashSet::new()],
        used_params: HashSet::new(),
    };
    // Parameters can reference each other through `ElemOf` element
    // types; that anchors the referenced buffer and counts as a use.
    for p in &kernel.params {
        if let Param::Scalar {
            ty: TypeRef::ElemOf(buf),
            ..
        } = p
        {
            v.used_params.insert(buf.clone());
        }
    }
    v.walk_block(&kernel.body);
    for p in &kernel.params {
        if !v.used_params.contains(p.name()) {
            v.diagnostics.push(VerifyDiagnostic::UnusedParam {
                kernel: kernel.name.clone(),
                param: p.name().to_owned(),
            });
        }
    }
    // Bridge the type checker: anything it rejects that no structural
    // diagnostic above already explains surfaces as a TypeClash, so the
    // verifier never passes a kernel the compiler would refuse.
    if let Err(e) = check_kernel(kernel) {
        let already_fatal = v
            .diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error);
        if !already_fatal {
            v.diagnostics.push(VerifyDiagnostic::TypeClash {
                kernel: kernel.name.clone(),
                detail: e.to_string(),
            });
        }
    }
    v.diagnostics
}

struct Verifier<'k> {
    kernel: &'k Kernel,
    diagnostics: Vec<VerifyDiagnostic>,
    /// Lexical scopes of locals and loop variables.
    scopes: Vec<HashSet<String>>,
    used_params: HashSet<String>,
}

/// Evaluates an integer-constant expression (literals and arithmetic on
/// literals); `None` for anything runtime-dependent.
fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::IntConst(v) => Some(*v),
        Expr::Unary {
            op: crate::value::UnaryFn::Neg,
            arg,
        } => const_int(arg).map(i64::wrapping_neg),
        Expr::Bin { op, lhs, rhs } => {
            let (l, r) = (const_int(lhs)?, const_int(rhs)?);
            Some(match op {
                FloatBinOp::Add => l.wrapping_add(r),
                FloatBinOp::Sub => l.wrapping_sub(r),
                FloatBinOp::Mul => l.wrapping_mul(r),
                // Constant division by zero has no value to fold to;
                // treating it as runtime-dependent keeps the index out
                // of the OOB and dead-store logic entirely.
                FloatBinOp::Div => {
                    if r == 0 {
                        return None;
                    }
                    l.wrapping_div(r)
                }
                FloatBinOp::Min => l.min(r),
                FloatBinOp::Max => l.max(r),
            })
        }
        _ => None,
    }
}

impl Verifier<'_> {
    fn diag(&mut self, d: VerifyDiagnostic) {
        self.diagnostics.push(d);
    }

    fn name(&self) -> String {
        self.kernel.name.clone()
    }

    fn bound(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains(name))
    }

    fn declare(&mut self, name: &str) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_owned());
        }
    }

    fn scoped(&mut self, f: impl FnOnce(&mut Self)) {
        self.scopes.push(HashSet::new());
        f(self);
        self.scopes.pop();
    }

    fn walk_block(&mut self, stmts: &[Stmt]) {
        // Straight-line dead-store scan: a pending store to a constant
        // index dies if the same (buffer, index) is stored again before
        // any read of that buffer. Control flow and dynamic indices
        // conservatively clear the pending set.
        let mut pending: HashMap<(String, i64), ()> = HashMap::new();
        for s in stmts {
            match s {
                Stmt::Store { buf, index, value } => {
                    // Reads inside the index or stored value — of any
                    // buffer, not just the one being written — happen
                    // before the write lands and keep earlier stores
                    // to the read buffer alive.
                    pending.retain(|(b, _), ()| {
                        !self.reads_buffer(index, b) && !self.reads_buffer(value, b)
                    });
                    if let Some(i) = const_int(index) {
                        if pending.insert((buf.clone(), i), ()).is_some() {
                            self.diag(VerifyDiagnostic::DeadStore {
                                kernel: self.name(),
                                buf: buf.clone(),
                                index: i,
                            });
                        }
                    } else {
                        // A dynamic store may alias any pending index.
                        pending.retain(|(b, _), ()| b != buf);
                    }
                }
                Stmt::Let { value, .. } | Stmt::Assign { value, .. } => {
                    pending.retain(|(b, _), ()| !self.reads_buffer(value, b));
                }
                Stmt::For { .. } | Stmt::If { .. } => pending.clear(),
            }
            self.walk_stmt(s);
        }
    }

    /// Whether evaluating `e` loads from buffer `buf`.
    fn reads_buffer(&self, e: &Expr, buf: &str) -> bool {
        let mut found = false;
        visit(e, &mut |x| {
            if let Expr::Load { buf: b, .. } = x {
                if b == buf {
                    found = true;
                }
            }
        });
        found
    }

    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { name, ty, value } => {
                if let Some(TypeRef::ElemOf(buf)) = ty {
                    self.used_params.insert(buf.clone());
                }
                self.walk_expr(value);
                self.declare(name);
            }
            Stmt::Assign { name, value } => {
                self.walk_expr(value);
                if !self.bound(name) && self.kernel.param(name).is_none() {
                    self.diag(VerifyDiagnostic::UnboundVar {
                        kernel: self.name(),
                        name: name.clone(),
                    });
                }
            }
            Stmt::Store { buf, index, value } => {
                match self.kernel.param(buf) {
                    Some(Param::Buffer { .. }) => {
                        self.used_params.insert(buf.clone());
                        if let Some(i) = const_int(index) {
                            if i < 0 {
                                self.diag(VerifyDiagnostic::OobConstIndex {
                                    kernel: self.name(),
                                    buf: buf.clone(),
                                    index: i,
                                });
                            }
                        }
                    }
                    _ => self.diag(VerifyDiagnostic::NonBufferStore {
                        kernel: self.name(),
                        name: buf.clone(),
                    }),
                }
                self.walk_expr(index);
                self.walk_expr(value);
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                self.walk_expr(start);
                self.walk_expr(end);
                self.scoped(|v| {
                    v.declare(var);
                    v.walk_block(body);
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.walk_expr(cond);
                self.scoped(|v| v.walk_block(then_body));
                self.scoped(|v| v.walk_block(else_body));
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        let mut unbound: Vec<String> = Vec::new();
        let mut oob: Vec<(String, i64)> = Vec::new();
        visit(e, &mut |x| match x {
            Expr::Var(name) => {
                if self.bound(name) {
                    return;
                }
                match self.kernel.param(name.as_str()) {
                    Some(_) => {
                        // Both scalar use and (invalid) buffer-as-scalar
                        // use reference the parameter; the latter also
                        // trips the TypeClash bridge.
                        self.used_params.insert(name.clone());
                    }
                    None => unbound.push(name.clone()),
                }
            }
            Expr::Load { buf, index } => {
                if self.kernel.param(buf.as_str()).is_some() {
                    self.used_params.insert(buf.clone());
                }
                if let Some(i) = const_int(index) {
                    if i < 0 {
                        oob.push((buf.clone(), i));
                    }
                }
            }
            Expr::Cast {
                to: TypeRef::ElemOf(buf),
                ..
            } => {
                self.used_params.insert(buf.clone());
            }
            _ => {}
        });
        for name in unbound {
            self.diag(VerifyDiagnostic::UnboundVar {
                kernel: self.name(),
                name,
            });
        }
        for (buf, index) in oob {
            self.diag(VerifyDiagnostic::OobConstIndex {
                kernel: self.name(),
                buf,
                index,
            });
        }
    }
}

/// Depth-first expression visitor (including sub-expressions of loads,
/// casts, and selects).
fn visit(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::FloatConst(_) | Expr::IntConst(_) | Expr::Var(_) | Expr::GlobalId(_) => {}
        Expr::Load { index, .. } => visit(index, f),
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => visit(arg, f),
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            visit(lhs, f);
            visit(rhs, f);
        }
        Expr::Select { cond, then, els } => {
            visit(cond, f);
            visit(then, f);
            visit(els, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Access;
    use crate::dsl::*;
    use crate::types::Precision;

    fn base() -> crate::dsl::KernelBuilder {
        kernel("k")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .int_param("n")
    }

    /// A body that uses every parameter, so only the seeded defect
    /// reports.
    fn use_all() -> Vec<Stmt> {
        vec![
            let_("i", global_id(0)),
            if_(
                lt(var("i"), var("n")),
                vec![store("c", var("i"), load("a", var("i")) + flit(1.0))],
            ),
        ]
    }

    #[test]
    fn clean_kernel_has_no_diagnostics() {
        let k = base().body(use_all());
        assert_eq!(verify_kernel(&k), vec![]);
    }

    #[test]
    fn unbound_var_is_reported() {
        let mut body = use_all();
        body.push(store("c", int(0), var("ghost")));
        let k = base().body(body);
        let ds = verify_kernel(&k);
        assert!(
            ds.iter().any(|d| matches!(
                d,
                VerifyDiagnostic::UnboundVar { kernel, name } if kernel == "k" && name == "ghost"
            )),
            "{ds:?}"
        );
        assert!(ds.iter().all(|d| d.severity() == Severity::Error));
    }

    #[test]
    fn type_clash_is_reported() {
        // Float-typed loop bound: runnable nowhere, caught by the
        // typeck bridge as a TypeClash (no structural diagnostic covers
        // it).
        let mut body = use_all();
        body.push(for_("j", int(0), Expr::FloatConst(4.0), vec![]));
        let k = base().body(body);
        let ds = verify_kernel(&k);
        assert!(
            ds.iter()
                .any(|d| matches!(d, VerifyDiagnostic::TypeClash { kernel, .. } if kernel == "k")),
            "{ds:?}"
        );
    }

    #[test]
    fn negative_constant_index_is_reported() {
        let mut body = use_all();
        body.push(let_("x", load("a", int(0) - int(3))));
        let k = base().body(body);
        let ds = verify_kernel(&k);
        assert!(
            ds.iter().any(|d| matches!(
                d,
                VerifyDiagnostic::OobConstIndex { buf, index: -3, .. } if buf == "a"
            )),
            "{ds:?}"
        );
    }

    #[test]
    fn dead_store_is_reported() {
        let mut body = use_all();
        body.push(store("c", int(0), flit(1.0)));
        body.push(store("c", int(0), flit(2.0)));
        let k = base().body(body);
        let ds = verify_kernel(&k);
        assert!(
            ds.iter().any(|d| matches!(
                d,
                VerifyDiagnostic::DeadStore { buf, index: 0, .. } if buf == "c"
            )),
            "{ds:?}"
        );
        assert!(ds.iter().all(|d| d.severity() == Severity::Warning));
    }

    #[test]
    fn read_between_stores_keeps_the_first_alive() {
        let mut body = use_all();
        body.push(store("c", int(0), flit(1.0)));
        body.push(store("c", int(1), load("c", int(0))));
        body.push(store("c", int(0), flit(2.0)));
        let k = base().body(body);
        assert_eq!(verify_kernel(&k), vec![]);
    }

    #[test]
    fn cross_buffer_read_inside_a_store_keeps_the_store_alive() {
        // The read of `c` happens inside a store to a *different*
        // buffer; it must still count as a use of c[0].
        let mut body = use_all();
        body.push(store("c", int(0), flit(1.0)));
        body.push(store("a", int(0), load("c", int(0))));
        body.push(store("c", int(0), flit(2.0)));
        let k = kernel("k")
            .buffer("a", Precision::Double, Access::ReadWrite)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .int_param("n")
            .body(body);
        assert_eq!(verify_kernel(&k), vec![]);
    }

    #[test]
    fn constant_division_by_zero_is_not_a_constant_index() {
        // `5/0` must not fold to index 0: the store is treated as
        // dynamic, so no dead-store (or OOB) diagnostic may fire.
        let mut body = use_all();
        body.push(store("c", int(5) / int(0), flit(1.0)));
        body.push(store("c", int(0), flit(2.0)));
        let k = base().body(body);
        assert_eq!(verify_kernel(&k), vec![]);
        assert_eq!(const_int(&(int(5) / int(0))), None);
    }

    #[test]
    fn unused_param_is_reported() {
        let k = base()
            .float_param("beta", Precision::Double)
            .body(use_all());
        let ds = verify_kernel(&k);
        assert_eq!(
            ds,
            vec![VerifyDiagnostic::UnusedParam {
                kernel: "k".into(),
                param: "beta".into(),
            }]
        );
        assert_eq!(ds[0].severity(), Severity::Warning);
    }

    #[test]
    fn elem_of_reference_counts_as_a_use() {
        // `alpha`'s type anchors buffer `a`; storing `alpha` uses both.
        let k = kernel("k")
            .buffer("a", Precision::Double, Access::ReadWrite)
            .float_param_like("alpha", "a")
            .body(vec![store("a", global_id(0), var("alpha"))]);
        assert_eq!(verify_kernel(&k), vec![]);
    }

    #[test]
    fn non_buffer_store_is_reported() {
        let mut body = use_all();
        body.push(store("n", int(0), flit(1.0)));
        let k = base().body(body);
        let ds = verify_kernel(&k);
        assert!(
            ds.iter().any(|d| matches!(
                d,
                VerifyDiagnostic::NonBufferStore { name, .. } if name == "n"
            )),
            "{ds:?}"
        );
    }

    #[test]
    fn program_verification_covers_every_kernel() {
        let p = crate::ast::Program::new("p")
            .with_kernel(base().body(use_all()))
            .with_kernel(
                kernel("broken")
                    .buffer("o", Precision::Double, Access::Write)
                    .body(vec![store("o", int(0), var("ghost"))]),
            );
        let ds = verify_program(&p);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].kernel(), "broken");
    }

    #[test]
    fn diagnostics_render_their_context() {
        let d = VerifyDiagnostic::DeadStore {
            kernel: "gemm".into(),
            buf: "c".into(),
            index: 7,
        };
        let s = d.to_string();
        assert!(s.contains("gemm") && s.contains("c[7]"), "{s}");
    }
}
