//! Runtime scalar values with precision-faithful arithmetic.

use crate::types::{Precision, ScalarType};
use core::fmt;
use prescaler_fp16::F16;

/// A runtime scalar value in the interpreter.
///
/// Float arithmetic on mixed precisions promotes to the wider operand and
/// computes *in that precision*: half×half is true binary16 multiplication
/// (via [`prescaler_fp16`]), not f64 math rounded later. This is what makes
/// the reproduction's accuracy losses real rather than modelled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scalar {
    /// Binary16 float.
    F16(F16),
    /// Binary32 float.
    F32(f32),
    /// Binary64 float.
    F64(f64),
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
}

impl Scalar {
    /// The float value `v` at precision `p` (rounding once).
    #[must_use]
    pub fn float(v: f64, p: Precision) -> Scalar {
        match p {
            Precision::Half => Scalar::F16(F16::from_f64(v)),
            Precision::Single => Scalar::F32(v as f32),
            Precision::Double => Scalar::F64(v),
        }
    }

    /// The type of this value.
    #[must_use]
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Scalar::F16(_) => ScalarType::Float(Precision::Half),
            Scalar::F32(_) => ScalarType::Float(Precision::Single),
            Scalar::F64(_) => ScalarType::Float(Precision::Double),
            Scalar::Int(_) => ScalarType::Int,
            Scalar::Bool(_) => ScalarType::Bool,
        }
    }

    /// Widens any numeric value to `f64` (exact for every float precision).
    ///
    /// # Panics
    ///
    /// Panics on `Bool`.
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match self {
            Scalar::F16(x) => x.to_f64(),
            Scalar::F32(x) => f64::from(*x),
            Scalar::F64(x) => *x,
            Scalar::Int(x) => *x as f64,
            Scalar::Bool(_) => panic!("boolean used as a number"),
        }
    }

    /// Integer view.
    ///
    /// # Panics
    ///
    /// Panics unless the value is `Int`.
    #[must_use]
    pub fn as_int(&self) -> i64 {
        match self {
            Scalar::Int(x) => *x,
            other => panic!("expected an integer, found {other:?}"),
        }
    }

    /// Boolean view.
    ///
    /// # Panics
    ///
    /// Panics unless the value is `Bool`.
    #[must_use]
    pub fn as_bool(&self) -> bool {
        match self {
            Scalar::Bool(x) => *x,
            other => panic!("expected a boolean, found {other:?}"),
        }
    }

    /// Numeric view, or `None` for booleans — the non-panicking twin of
    /// [`Scalar::as_f64`] for callers that must degrade on malformed
    /// kernels instead of aborting.
    #[must_use]
    pub fn try_f64(&self) -> Option<f64> {
        match self {
            Scalar::Bool(_) => None,
            other => Some(other.as_f64()),
        }
    }

    /// Integer view, or `None` unless the value is `Int`.
    #[must_use]
    pub fn try_int(&self) -> Option<i64> {
        match self {
            Scalar::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// Boolean view, or `None` unless the value is `Bool`.
    #[must_use]
    pub fn try_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(x) => Some(*x),
            _ => None,
        }
    }

    /// Converts to the given float precision with a single rounding, as an
    /// explicit `convert_<type>()` OpenCL call or C cast would.
    #[must_use]
    pub fn cast_float(&self, p: Precision) -> Scalar {
        Scalar::float(self.as_f64(), p)
    }

    /// The precision this value computes in, if it is a float.
    #[must_use]
    pub fn precision(&self) -> Option<Precision> {
        self.scalar_type().precision()
    }

    /// Applies a binary float operation at the promoted precision of the
    /// operands. Integer operands are promoted to the other side's float
    /// precision (or compute exactly as integers when both are ints).
    #[must_use]
    pub fn binop(op: FloatBinOp, a: Scalar, b: Scalar) -> Scalar {
        match (a, b) {
            (Scalar::Int(x), Scalar::Int(y)) => Scalar::Int(op.apply_int(x, y)),
            _ => {
                let p = promote(a, b);
                match p {
                    Precision::Half => {
                        let x = F16::from_f64(a.as_f64());
                        let y = F16::from_f64(b.as_f64());
                        Scalar::F16(op.apply_f16(x, y))
                    }
                    Precision::Single => {
                        let x = a.as_f64() as f32;
                        let y = b.as_f64() as f32;
                        Scalar::F32(op.apply_f32(x, y))
                    }
                    Precision::Double => Scalar::F64(op.apply_f64(a.as_f64(), b.as_f64())),
                }
            }
        }
    }

    /// Compares two numeric values (in `f64`, which is exact for all
    /// operand precisions).
    #[must_use]
    pub fn compare(op: CmpOp, a: Scalar, b: Scalar) -> Scalar {
        let (x, y) = (a.as_f64(), b.as_f64());
        Scalar::Bool(match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        })
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::F16(x) => write!(f, "{x}"),
            Scalar::F32(x) => write!(f, "{x}"),
            Scalar::F64(x) => write!(f, "{x}"),
            Scalar::Int(x) => write!(f, "{x}"),
            Scalar::Bool(x) => write!(f, "{x}"),
        }
    }
}

/// The promotion precision for a mixed binary operation.
fn promote(a: Scalar, b: Scalar) -> Precision {
    match (a.precision(), b.precision()) {
        (Some(x), Some(y)) => x.max(y),
        (Some(x), None) | (None, Some(x)) => x,
        // Int/Int never reaches here; Bool operands are a type error
        // caught by the checker, so default to double for robustness.
        (None, None) => Precision::Double,
    }
}

/// Arithmetic binary operators on floats (and ints, for index math).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FloatBinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum (IEEE `minNum` semantics on floats).
    Min,
    /// Maximum (IEEE `maxNum` semantics on floats).
    Max,
}

impl FloatBinOp {
    fn apply_f64(self, x: f64, y: f64) -> f64 {
        match self {
            FloatBinOp::Add => x + y,
            FloatBinOp::Sub => x - y,
            FloatBinOp::Mul => x * y,
            FloatBinOp::Div => x / y,
            FloatBinOp::Min => x.min(y),
            FloatBinOp::Max => x.max(y),
        }
    }

    fn apply_f32(self, x: f32, y: f32) -> f32 {
        match self {
            FloatBinOp::Add => x + y,
            FloatBinOp::Sub => x - y,
            FloatBinOp::Mul => x * y,
            FloatBinOp::Div => x / y,
            FloatBinOp::Min => x.min(y),
            FloatBinOp::Max => x.max(y),
        }
    }

    fn apply_f16(self, x: F16, y: F16) -> F16 {
        match self {
            FloatBinOp::Add => x + y,
            FloatBinOp::Sub => x - y,
            FloatBinOp::Mul => x * y,
            FloatBinOp::Div => x / y,
            FloatBinOp::Min => x.min(y),
            FloatBinOp::Max => x.max(y),
        }
    }

    fn apply_int(self, x: i64, y: i64) -> i64 {
        match self {
            FloatBinOp::Add => x.wrapping_add(y),
            FloatBinOp::Sub => x.wrapping_sub(y),
            FloatBinOp::Mul => x.wrapping_mul(y),
            FloatBinOp::Div => {
                if y == 0 {
                    0
                } else {
                    x.wrapping_div(y)
                }
            }
            FloatBinOp::Min => x.min(y),
            FloatBinOp::Max => x.max(y),
        }
    }

    /// The C spelling of the operator (`min`/`max` print as calls).
    #[must_use]
    pub const fn c_symbol(self) -> &'static str {
        match self {
            FloatBinOp::Add => "+",
            FloatBinOp::Sub => "-",
            FloatBinOp::Mul => "*",
            FloatBinOp::Div => "/",
            FloatBinOp::Min => "min",
            FloatBinOp::Max => "max",
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The C spelling of the operator.
    #[must_use]
    pub const fn c_symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// Unary built-in math functions available to kernels.
///
/// On `Half` operands these compute by widening to `f32` and rounding back,
/// matching how GPU half-precision math libraries implement them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryFn {
    /// Negation.
    Neg,
    /// Absolute value.
    Fabs,
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
}

impl UnaryFn {
    /// Applies the function at the operand's precision.
    #[must_use]
    pub fn apply(self, x: Scalar) -> Scalar {
        match x {
            Scalar::Int(v) => match self {
                UnaryFn::Neg => Scalar::Int(v.wrapping_neg()),
                UnaryFn::Fabs => Scalar::Int(v.wrapping_abs()),
                _ => Scalar::F64(self.apply_f64(v as f64)),
            },
            Scalar::F16(v) => Scalar::F16(match self {
                UnaryFn::Neg => -v,
                UnaryFn::Fabs => v.abs(),
                UnaryFn::Sqrt => v.sqrt(),
                UnaryFn::Exp => F16::from_f32(v.to_f32().exp()),
                UnaryFn::Log => F16::from_f32(v.to_f32().ln()),
            }),
            Scalar::F32(v) => Scalar::F32(match self {
                UnaryFn::Neg => -v,
                UnaryFn::Fabs => v.abs(),
                UnaryFn::Sqrt => v.sqrt(),
                UnaryFn::Exp => v.exp(),
                UnaryFn::Log => v.ln(),
            }),
            Scalar::F64(v) => Scalar::F64(self.apply_f64(v)),
            Scalar::Bool(_) => panic!("boolean passed to a math function"),
        }
    }

    fn apply_f64(self, v: f64) -> f64 {
        match self {
            UnaryFn::Neg => -v,
            UnaryFn::Fabs => v.abs(),
            UnaryFn::Sqrt => v.sqrt(),
            UnaryFn::Exp => v.exp(),
            UnaryFn::Log => v.ln(),
        }
    }

    /// The C spelling of the function.
    #[must_use]
    pub const fn c_name(self) -> &'static str {
        match self {
            UnaryFn::Neg => "-",
            UnaryFn::Fabs => "fabs",
            UnaryFn::Sqrt => "sqrt",
            UnaryFn::Exp => "exp",
            UnaryFn::Log => "log",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_precision_promotes_to_wider() {
        let a = Scalar::F16(F16::from_f32(1.5));
        let b = Scalar::F32(2.5);
        let r = Scalar::binop(FloatBinOp::Add, a, b);
        assert_eq!(r.scalar_type(), ScalarType::Float(Precision::Single));
        assert_eq!(r.as_f64(), 4.0);
    }

    #[test]
    fn half_arithmetic_actually_loses_precision() {
        let a = Scalar::float(2048.0, Precision::Half);
        let b = Scalar::float(1.0, Precision::Half);
        let r = Scalar::binop(FloatBinOp::Add, a, b);
        assert_eq!(r.as_f64(), 2048.0, "binary16 cannot represent 2049");
        let rd = Scalar::binop(
            FloatBinOp::Add,
            Scalar::float(2048.0, Precision::Double),
            Scalar::float(1.0, Precision::Double),
        );
        assert_eq!(rd.as_f64(), 2049.0);
    }

    #[test]
    fn int_arithmetic_is_exact() {
        let r = Scalar::binop(FloatBinOp::Mul, Scalar::Int(1 << 40), Scalar::Int(3));
        assert_eq!(r.as_int(), 3 << 40);
        let d = Scalar::binop(FloatBinOp::Div, Scalar::Int(7), Scalar::Int(2));
        assert_eq!(d.as_int(), 3);
        let z = Scalar::binop(FloatBinOp::Div, Scalar::Int(7), Scalar::Int(0));
        assert_eq!(z.as_int(), 0, "division by zero is defined as 0 in the IR");
    }

    #[test]
    fn int_float_mix_promotes_to_float_side() {
        let r = Scalar::binop(FloatBinOp::Div, Scalar::F32(1.0), Scalar::Int(3));
        assert_eq!(r.scalar_type(), ScalarType::Float(Precision::Single));
        assert_eq!(r.as_f64(), f64::from(1.0f32 / 3.0f32));
    }

    #[test]
    fn comparisons_yield_bools() {
        assert!(Scalar::compare(CmpOp::Lt, Scalar::Int(1), Scalar::Int(2)).as_bool());
        assert!(Scalar::compare(CmpOp::Ge, Scalar::F64(2.0), Scalar::F64(2.0)).as_bool());
        assert!(!Scalar::compare(CmpOp::Ne, Scalar::F32(1.0), Scalar::Int(1)).as_bool());
    }

    #[test]
    fn cast_float_rounds_once() {
        let x = Scalar::F64(1.0 + 2f64.powi(-11));
        assert_eq!(x.cast_float(Precision::Half).as_f64(), 1.0);
        assert_eq!(x.cast_float(Precision::Double), x);
    }

    #[test]
    fn unary_fns_respect_precision() {
        let h = Scalar::float(2.0, Precision::Half);
        let r = UnaryFn::Sqrt.apply(h);
        assert_eq!(r.scalar_type(), ScalarType::Float(Precision::Half));
        assert_eq!(r.as_f64(), F16::from_f64(2f64.sqrt()).to_f64());
        assert_eq!(UnaryFn::Neg.apply(Scalar::Int(5)).as_int(), -5);
        assert_eq!(UnaryFn::Fabs.apply(Scalar::F64(-3.0)).as_f64(), 3.0);
    }

    #[test]
    #[should_panic(expected = "expected an integer")]
    fn as_int_panics_on_float() {
        let _ = Scalar::F64(1.0).as_int();
    }

    #[test]
    fn min_max_ops() {
        assert_eq!(
            Scalar::binop(FloatBinOp::Max, Scalar::F64(1.0), Scalar::F64(2.0)).as_f64(),
            2.0
        );
        assert_eq!(
            Scalar::binop(FloatBinOp::Min, Scalar::Int(4), Scalar::Int(2)).as_int(),
            2
        );
    }
}
