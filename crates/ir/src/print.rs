//! Pretty-printing of kernels as OpenCL-C-like source.
//!
//! This is the human-readable face of the reproduction's "code generation":
//! the decision maker's chosen configuration can be rendered as the kernel
//! source PreScaler's LLVM backend would have emitted.

use crate::ast::{Access, Expr, Kernel, Param, Program, Stmt, TypeRef};
use crate::value::{FloatBinOp, UnaryFn};
use core::fmt::Write as _;

/// Renders a whole program.
#[must_use]
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program: {}", program.name);
    for k in &program.kernels {
        out.push('\n');
        out.push_str(&kernel_to_string(k));
    }
    out
}

/// Renders one kernel as OpenCL-C-like source.
///
/// ```
/// use prescaler_ir::dsl::*;
/// use prescaler_ir::{print::kernel_to_string, Access, Precision};
///
/// let k = kernel("scale")
///     .buffer("x", Precision::Single, Access::ReadWrite)
///     .body(vec![
///         let_("i", global_id(0)),
///         store("x", var("i"), load("x", var("i")) * flit(2.0)),
///     ]);
/// let src = kernel_to_string(&k);
/// assert!(src.contains("__kernel void scale"));
/// assert!(src.contains("x[i] = (x[i] * 2.0)"));
/// ```
#[must_use]
pub fn kernel_to_string(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = write!(out, "__kernel void {}(", kernel.name);
    let params: Vec<String> = kernel
        .params
        .iter()
        .map(|p| match p {
            Param::Buffer { name, elem, access } => {
                let qual = match access {
                    Access::Read => "const __global",
                    _ => "__global",
                };
                format!("{qual} {elem}* {name}")
            }
            Param::Scalar { name, ty } => {
                format!("{} {}", type_ref(kernel, ty), name)
            }
        })
        .collect();
    let _ = write!(out, "{}", params.join(", "));
    out.push_str(") {\n");
    block(&mut out, &kernel.body, 1, kernel);
    out.push_str("}\n");
    out
}

/// Formats a float literal so it lexes back as a float (`2` → `2.0`).
fn float_literal(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'n', 'i']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn type_ref(kernel: &Kernel, ty: &TypeRef) -> String {
    // Print the *resolved* type: that is what generated source contains.
    kernel.resolve(ty).to_string()
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn block(out: &mut String, stmts: &[Stmt], depth: usize, kernel: &Kernel) {
    for s in stmts {
        stmt(out, s, depth, kernel);
    }
}

fn stmt(out: &mut String, s: &Stmt, depth: usize, kernel: &Kernel) {
    indent(out, depth);
    match s {
        Stmt::Let { name, ty, value } => {
            let t = match ty {
                Some(t) => type_ref(kernel, t),
                None => "auto".to_owned(),
            };
            let _ = writeln!(out, "{t} {name} = {};", expr(value, kernel));
        }
        Stmt::Assign { name, value } => {
            let _ = writeln!(out, "{name} = {};", expr(value, kernel));
        }
        Stmt::Store { buf, index, value } => {
            let _ = writeln!(
                out,
                "{buf}[{}] = {};",
                expr(index, kernel),
                expr(value, kernel)
            );
        }
        Stmt::For {
            var,
            start,
            end,
            body,
        } => {
            let _ = writeln!(
                out,
                "for (long {var} = {}; {var} < {}; ++{var}) {{",
                expr(start, kernel),
                expr(end, kernel)
            );
            block(out, body, depth + 1, kernel);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr(cond, kernel));
            block(out, then_body, depth + 1, kernel);
            indent(out, depth);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                block(out, else_body, depth + 1, kernel);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
    }
}

fn expr(e: &Expr, kernel: &Kernel) -> String {
    match e {
        Expr::FloatConst(v) => float_literal(*v),
        Expr::IntConst(v) => format!("{v}"),
        Expr::Var(n) => n.clone(),
        Expr::GlobalId(d) => format!("get_global_id({d})"),
        Expr::Load { buf, index } => format!("{buf}[{}]", expr(index, kernel)),
        Expr::Unary { op, arg } => match op {
            UnaryFn::Neg => format!("(-{})", expr(arg, kernel)),
            _ => format!("{}({})", op.c_name(), expr(arg, kernel)),
        },
        Expr::Bin { op, lhs, rhs } => match op {
            FloatBinOp::Min | FloatBinOp::Max => format!(
                "{}({}, {})",
                op.c_symbol(),
                expr(lhs, kernel),
                expr(rhs, kernel)
            ),
            _ => format!(
                "({} {} {})",
                expr(lhs, kernel),
                op.c_symbol(),
                expr(rhs, kernel)
            ),
        },
        Expr::Cmp { op, lhs, rhs } => format!(
            "({} {} {})",
            expr(lhs, kernel),
            op.c_symbol(),
            expr(rhs, kernel)
        ),
        Expr::Cast { to, arg } => format!("({})({})", type_ref(kernel, to), expr(arg, kernel)),
        Expr::Select { cond, then, els } => format!(
            "({} ? {} : {})",
            expr(cond, kernel),
            expr(then, kernel),
            expr(els, kernel)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::types::Precision;

    #[test]
    fn kernel_header_lists_qualified_params() {
        let k = kernel("k")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Half, Access::Write)
            .int_param("n")
            .float_param_like("alpha", "c")
            .body(vec![]);
        let src = kernel_to_string(&k);
        assert!(src.contains("const __global double* a"), "{src}");
        assert!(src.contains("__global half* c"), "{src}");
        assert!(src.contains("long n"), "{src}");
        assert!(src.contains("half alpha"), "{src}");
    }

    #[test]
    fn statements_render_structurally() {
        let k = kernel("k")
            .buffer("c", Precision::Single, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_else(
                    lt(var("i"), var("n")),
                    vec![for_(
                        "j",
                        int(0),
                        var("n"),
                        vec![store("c", var("j"), sqrt(load("c", var("j"))))],
                    )],
                    vec![store("c", var("i"), flit(0.0))],
                ),
            ]);
        let src = kernel_to_string(&k);
        assert!(src.contains("if ((i < n)) {"), "{src}");
        assert!(src.contains("for (long j = 0; j < n; ++j) {"), "{src}");
        assert!(src.contains("c[j] = sqrt(c[j]);"), "{src}");
        assert!(src.contains("} else {"), "{src}");
    }

    #[test]
    fn casts_print_resolved_types() {
        let k = kernel("k")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Half, Access::Write)
            .body(vec![store(
                "c",
                int(0),
                cast_elem_of("c", load("a", int(0))),
            )]);
        let src = kernel_to_string(&k);
        assert!(src.contains("(half)(a[0])"), "{src}");
    }

    #[test]
    fn program_rendering_includes_all_kernels() {
        let p = crate::ast::Program::new("prog")
            .with_kernel(kernel("k1").body(vec![]))
            .with_kernel(kernel("k2").body(vec![]));
        let src = program_to_string(&p);
        assert!(src.contains("__kernel void k1"));
        assert!(src.contains("__kernel void k2"));
        assert!(src.contains("// program: prog"));
    }

    #[test]
    fn min_max_print_as_calls() {
        let k = kernel("k")
            .buffer("c", Precision::Double, Access::ReadWrite)
            .body(vec![store("c", int(0), max2(load("c", int(0)), flit(1.0)))]);
        let src = kernel_to_string(&k);
        assert!(src.contains("max(c[0], 1.0)"), "{src}");
    }
}
