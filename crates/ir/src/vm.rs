//! A bytecode compiler and virtual machine for kernels.
//!
//! The tree-walking interpreter in [`crate::interp`] is the semantic
//! reference; this module compiles a kernel once into a flat register
//! bytecode that executes the same semantics an order of magnitude faster —
//! which is what makes paper-scale experiments (millions of work-items,
//! dozens of search trials) practical.
//!
//! Equivalence contract (pinned by tests here and across the benchmark
//! suite): for any type-correct kernel, [`CompiledKernel::run`] produces
//! **bit-identical buffer contents and identical [`OpCounts`]** to
//! [`crate::interp::run_kernel`].
//!
//! Two implementation points matter for the equivalence:
//!
//! * Float registers hold `f64` values that are always exactly
//!   representable at the operand's static precision, so computing a
//!   binary16/32 operation by rounding the `f64` inputs is exact.
//! * Counting is *static per straight-line region*: the compiler
//!   pre-computes each region's [`OpCounts`] delta and the VM adds it once
//!   per execution, which is exact because within a region every counted
//!   operation executes unconditionally.

use crate::array::FloatVec;
use crate::ast::{Expr, Kernel, Param, Stmt, TypeRef};
use crate::counts::OpCounts;
use crate::interp::{ArgValue, BufferMap, ExecError, Launch};
use crate::types::{Precision, ScalarType};
use crate::value::{CmpOp, FloatBinOp, UnaryFn};
use prescaler_fp16::F16;
use std::collections::HashMap;

/// Index of an integer register.
type IReg = u32;
/// Index of a float register.
type FReg = u32;

/// One VM instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    /// Unconditional jump.
    Jump(u32),
    /// Jump when the integer register is zero (false).
    JumpIfFalse { cond: IReg, target: u32 },
    /// `i[dst] = v`.
    IConst { dst: IReg, v: i64 },
    /// `f[dst] = v` (already rounded to the static precision).
    FConst { dst: FReg, v: f64 },
    /// `i[dst] = i[src]`.
    IMov { dst: IReg, src: IReg },
    /// `f[dst] = f[src]`.
    FMov { dst: FReg, src: FReg },
    /// Integer arithmetic.
    IBin {
        op: FloatBinOp,
        dst: IReg,
        a: IReg,
        b: IReg,
    },
    /// `i[dst] = i[a] + imm` (loop bookkeeping).
    IAddImm { dst: IReg, a: IReg, imm: i64 },
    /// Integer negate / abs.
    IUn { op: UnaryFn, dst: IReg, a: IReg },
    /// Integer comparison → 0/1.
    ICmp {
        op: CmpOp,
        dst: IReg,
        a: IReg,
        b: IReg,
    },
    /// Float comparison (exact on the f64 representations) → 0/1.
    FCmp {
        op: CmpOp,
        dst: IReg,
        a: FReg,
        b: FReg,
    },
    /// Float arithmetic at a precision.
    FBin {
        prec: Precision,
        op: FloatBinOp,
        dst: FReg,
        a: FReg,
        b: FReg,
    },
    /// Float unary function at a precision.
    FUn {
        prec: Precision,
        op: UnaryFn,
        dst: FReg,
        a: FReg,
    },
    /// Round to a (different) float precision.
    Cvt { prec: Precision, dst: FReg, a: FReg },
    /// Exact i64 → f64, then round to the precision.
    IToF { prec: Precision, dst: FReg, a: IReg },
    /// Truncating f64 → i64 (C cast semantics).
    FToI { dst: IReg, a: FReg },
    /// `f[dst] = buffers[buf][i[idx]]` widened to f64.
    Load { buf: u16, idx: IReg, dst: FReg },
    /// `buffers[buf][i[idx]] = f[src]` rounded to the element type.
    Store { buf: u16, idx: IReg, src: FReg },
    /// `f[dst] = i[cond] != 0 ? f[a] : f[b]`.
    SelectF {
        cond: IReg,
        dst: FReg,
        a: FReg,
        b: FReg,
    },
    /// `i[dst] = i[cond] != 0 ? i[a] : i[b]`.
    SelectI {
        cond: IReg,
        dst: IReg,
        a: IReg,
        b: IReg,
    },
    /// Add `counts_table[idx]` to the running counters.
    Count { idx: u32 },
    /// End of the work-item.
    Halt,
}

/// How one kernel parameter binds at launch.
#[derive(Clone, Debug, PartialEq)]
enum ParamBind {
    Buffer {
        name: String,
        elem: Precision,
    },
    ScalarInt {
        name: String,
        reg: IReg,
    },
    ScalarFloat {
        name: String,
        prec: Precision,
        reg: FReg,
    },
}

/// A compiled kernel.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    name: String,
    ops: Vec<Op>,
    counts_table: Vec<OpCounts>,
    params: Vec<ParamBind>,
    n_iregs: u32,
    n_fregs: u32,
}

/// Compile-time value classification.
#[derive(Clone, Copy, Debug, PartialEq)]
enum CTy {
    Int,
    F(Precision),
    Bool,
}

impl CTy {
    fn precision(self) -> Option<Precision> {
        match self {
            CTy::F(p) => Some(p),
            _ => None,
        }
    }
}

/// Compile-time value location.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Val {
    I(IReg),
    F(FReg),
}

impl Val {
    fn ireg(self) -> IReg {
        match self {
            Val::I(r) => r,
            Val::F(_) => unreachable!("checked: expected an integer value"),
        }
    }

    fn freg(self) -> FReg {
        match self {
            Val::F(r) => r,
            Val::I(_) => unreachable!("checked: expected a float value"),
        }
    }
}

/// Compiles a kernel to bytecode.
///
/// Kernels that pass [`crate::typeck::check_kernel`] always compile;
/// malformed ones degrade into the same typed [`ExecError`]s the
/// interpreter reports instead of panicking.
///
/// # Errors
///
/// Returns [`ExecError::UnboundVar`], [`ExecError::NotABuffer`], or
/// [`ExecError::KindError`] for constructs the type checker rejects.
pub fn compile_kernel(kernel: &Kernel) -> Result<CompiledKernel, ExecError> {
    let mut c = Compiler {
        kernel,
        ops: Vec::new(),
        counts_table: Vec::new(),
        pending: OpCounts::new(),
        scopes: vec![HashMap::new()],
        next_i: 2, // iregs 0/1 are get_global_id(0)/(1)
        next_f: 0,
        params: Vec::new(),
        buf_index: HashMap::new(),
    };

    for p in &kernel.params {
        match p {
            Param::Buffer { name, elem, .. } => {
                c.buf_index.insert(name.clone(), c.params.len() as u16);
                c.params.push(ParamBind::Buffer {
                    name: name.clone(),
                    elem: *elem,
                });
            }
            Param::Scalar { name, ty } => match kernel.resolve(ty) {
                ScalarType::Int => {
                    let reg = c.alloc_i();
                    c.params.push(ParamBind::ScalarInt {
                        name: name.clone(),
                        reg,
                    });
                    c.scopes[0].insert(name.clone(), (Val::I(reg), CTy::Int));
                }
                ScalarType::Float(prec) => {
                    let reg = c.alloc_f();
                    c.params.push(ParamBind::ScalarFloat {
                        name: name.clone(),
                        prec,
                        reg,
                    });
                    c.scopes[0].insert(name.clone(), (Val::F(reg), CTy::F(prec)));
                }
                ScalarType::Bool => {
                    return Err(ExecError::KindError(format!(
                        "parameter `{name}` declares a boolean type"
                    )));
                }
            },
        }
    }

    c.block(&kernel.body)?;
    c.flush();
    c.ops.push(Op::Halt);

    Ok(CompiledKernel {
        name: kernel.name.clone(),
        ops: c.ops,
        counts_table: c.counts_table,
        params: c.params,
        n_iregs: c.next_i,
        n_fregs: c.next_f,
    })
}

struct Compiler<'k> {
    kernel: &'k Kernel,
    ops: Vec<Op>,
    counts_table: Vec<OpCounts>,
    pending: OpCounts,
    scopes: Vec<HashMap<String, (Val, CTy)>>,
    next_i: u32,
    next_f: u32,
    params: Vec<ParamBind>,
    buf_index: HashMap<String, u16>,
}

impl<'k> Compiler<'k> {
    fn alloc_i(&mut self) -> IReg {
        let r = self.next_i;
        self.next_i += 1;
        r
    }

    fn alloc_f(&mut self) -> FReg {
        let r = self.next_f;
        self.next_f += 1;
        r
    }

    fn lookup(&self, name: &str) -> Result<(Val, CTy), ExecError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        Err(ExecError::UnboundVar(name.to_owned()))
    }

    /// The innermost scope, recreating the root scope if it was lost.
    fn top_scope(&mut self) -> &mut HashMap<String, (Val, CTy)> {
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        let top = self.scopes.len() - 1;
        &mut self.scopes[top]
    }

    /// Flushes the pending straight-line counts as a `Count` op.
    fn flush(&mut self) {
        if self.pending == OpCounts::new() {
            return;
        }
        let idx = self.counts_table.len() as u32;
        self.counts_table.push(self.pending);
        self.pending = OpCounts::new();
        self.ops.push(Op::Count { idx });
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch_jump(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t) => *t = target,
            Op::JumpIfFalse { target: t, .. } => *t = target,
            other => unreachable!("patching a non-jump {other:?}"),
        }
    }

    fn block(&mut self, stmts: &'k [Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn scoped(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<(), ExecError>,
    ) -> Result<(), ExecError> {
        self.scopes.push(HashMap::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    fn stmt(&mut self, stmt: &'k Stmt) -> Result<(), ExecError> {
        match stmt {
            Stmt::Let { name, ty, value } => {
                let hint = ty.as_ref().and_then(|t| match self.kernel.resolve(t) {
                    ScalarType::Float(p) => Some(p),
                    _ => None,
                });
                let (mut v, mut t) = self.expr(value, hint)?;
                if let Some(tr) = ty {
                    (v, t) = self.coerce(v, t, self.kernel.resolve(tr));
                }
                // Copy into a dedicated register so reassignment works.
                let slot = match v {
                    Val::I(src) => {
                        let dst = self.alloc_i();
                        self.ops.push(Op::IMov { dst, src });
                        Val::I(dst)
                    }
                    Val::F(src) => {
                        let dst = self.alloc_f();
                        self.ops.push(Op::FMov { dst, src });
                        Val::F(dst)
                    }
                };
                self.top_scope().insert(name.clone(), (slot, t));
            }
            Stmt::Assign { name, value } => {
                let (slot, t) = self.lookup(name)?;
                let hint = t.precision();
                let (v, vt) = self.expr(value, hint)?;
                let target = match t {
                    CTy::Int => ScalarType::Int,
                    CTy::F(p) => ScalarType::Float(p),
                    CTy::Bool => ScalarType::Bool,
                };
                let (v, _) = self.coerce(v, vt, target);
                match (slot, v) {
                    (Val::I(dst), Val::I(src)) => self.ops.push(Op::IMov { dst, src }),
                    (Val::F(dst), Val::F(src)) => self.ops.push(Op::FMov { dst, src }),
                    _ => {
                        return Err(ExecError::KindError(format!(
                            "assignment changes the kind of `{name}`"
                        )));
                    }
                }
            }
            Stmt::Store { buf, index, value } => {
                let Some(elem) = self.kernel.buffer_elem(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                let (iv, it) = self.expr(index, None)?;
                if it != CTy::Int {
                    return Err(ExecError::KindError(format!(
                        "index into `{buf}` must be an integer"
                    )));
                }
                let idx = iv.ireg();
                let (v, vt) = self.expr(value, Some(elem))?;
                // Mirror the interpreter: a store converts unless the value
                // is already a float of the element precision.
                let src = match vt {
                    CTy::F(p) if p == elem => v.freg(),
                    CTy::F(_) => {
                        self.pending.converts += 1;
                        v.freg() // Store itself rounds to the element type
                    }
                    CTy::Int => {
                        self.pending.converts += 1;
                        let dst = self.alloc_f();
                        self.ops.push(Op::IToF {
                            prec: Precision::Double,
                            dst,
                            a: v.ireg(),
                        });
                        dst
                    }
                    CTy::Bool => {
                        return Err(ExecError::KindError(format!(
                            "cannot store a boolean into `{buf}`"
                        )));
                    }
                };
                self.pending.at_mut(elem).stores += 1;
                let Some(&b) = self.buf_index.get(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                self.ops.push(Op::Store { buf: b, idx, src });
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let (sv, st) = self.expr(start, None)?;
                let (ev, et) = self.expr(end, None)?;
                if st != CTy::Int || et != CTy::Int {
                    return Err(ExecError::KindError(format!(
                        "loop bound for `{var}` must be an integer"
                    )));
                }
                let s = sv.ireg();
                let e = ev.ireg();
                // Copy the end bound: it must stay stable even if its
                // source register is reused (it is not, but be explicit).
                let var_reg = self.alloc_i();
                self.ops.push(Op::IMov {
                    dst: var_reg,
                    src: s,
                });
                self.flush();
                let head = self.here();
                let cond = self.alloc_i();
                self.ops.push(Op::ICmp {
                    op: CmpOp::Lt,
                    dst: cond,
                    a: var_reg,
                    b: e,
                });
                let exit_jump = self.ops.len();
                self.ops.push(Op::JumpIfFalse {
                    cond,
                    target: u32::MAX,
                });
                // Per-iteration loop bookkeeping (compare + increment).
                self.pending.int_ops += 2;
                self.scoped(|c| {
                    c.top_scope()
                        .insert(var.clone(), (Val::I(var_reg), CTy::Int));
                    c.block(body)
                })?;
                self.flush();
                self.ops.push(Op::IAddImm {
                    dst: var_reg,
                    a: var_reg,
                    imm: 1,
                });
                self.ops.push(Op::Jump(head));
                let after = self.here();
                self.patch_jump(exit_jump, after);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (cv, ct) = self.expr(cond, None)?;
                if ct != CTy::Bool {
                    return Err(ExecError::KindError(
                        "if condition must be a boolean".to_owned(),
                    ));
                }
                let c = cv.ireg();
                self.flush();
                let else_jump = self.ops.len();
                self.ops.push(Op::JumpIfFalse {
                    cond: c,
                    target: u32::MAX,
                });
                self.scoped(|cc| cc.block(then_body))?;
                self.flush();
                if else_body.is_empty() {
                    let after = self.here();
                    self.patch_jump(else_jump, after);
                } else {
                    let end_jump = self.ops.len();
                    self.ops.push(Op::Jump(u32::MAX));
                    let else_start = self.here();
                    self.patch_jump(else_jump, else_start);
                    self.scoped(|cc| cc.block(else_body))?;
                    self.flush();
                    let after = self.here();
                    self.patch_jump(end_jump, after);
                }
            }
        }
        Ok(())
    }

    /// Coerces a value to a scalar type, mirroring `Interp::coerce`
    /// (counts a conversion when the representation changes).
    fn coerce(&mut self, v: Val, t: CTy, target: ScalarType) -> (Val, CTy) {
        match (t, target) {
            (CTy::Bool, _) | (_, ScalarType::Bool) => (v, t),
            (CTy::Int, ScalarType::Int) => (v, t),
            (CTy::Int, ScalarType::Float(p)) => {
                self.pending.converts += 1;
                let dst = self.alloc_f();
                self.ops.push(Op::IToF {
                    prec: p,
                    dst,
                    a: v.ireg(),
                });
                (Val::F(dst), CTy::F(p))
            }
            (CTy::F(_), ScalarType::Int) => {
                self.pending.converts += 1;
                let dst = self.alloc_i();
                self.ops.push(Op::FToI { dst, a: v.freg() });
                (Val::I(dst), CTy::Int)
            }
            (CTy::F(q), ScalarType::Float(p)) => {
                if q == p {
                    (v, t)
                } else {
                    self.pending.converts += 1;
                    let dst = self.alloc_f();
                    self.ops.push(Op::Cvt {
                        prec: p,
                        dst,
                        a: v.freg(),
                    });
                    (Val::F(dst), CTy::F(p))
                }
            }
        }
    }

    /// Compiles an expression, mirroring `Interp::eval`'s hint threading.
    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &'k Expr, hint: Option<Precision>) -> Result<(Val, CTy), ExecError> {
        match e {
            Expr::FloatConst(v) => {
                let p = hint.unwrap_or(Precision::Double);
                let rounded = match p {
                    Precision::Half => F16::from_f64(*v).to_f64(),
                    Precision::Single => f64::from(*v as f32),
                    Precision::Double => *v,
                };
                let dst = self.alloc_f();
                self.ops.push(Op::FConst { dst, v: rounded });
                Ok((Val::F(dst), CTy::F(p)))
            }
            Expr::IntConst(v) => {
                let dst = self.alloc_i();
                self.ops.push(Op::IConst { dst, v: *v });
                Ok((Val::I(dst), CTy::Int))
            }
            Expr::GlobalId(d) => {
                if *d < 2 {
                    Ok((Val::I(*d as IReg), CTy::Int))
                } else {
                    let dst = self.alloc_i();
                    self.ops.push(Op::IConst { dst, v: 0 });
                    Ok((Val::I(dst), CTy::Int))
                }
            }
            Expr::Var(name) => self.lookup(name),
            Expr::Load { buf, index } => {
                let (iv, it) = self.expr(index, None)?;
                if it != CTy::Int {
                    return Err(ExecError::KindError(format!(
                        "index into `{buf}` must be an integer"
                    )));
                }
                let idx = iv.ireg();
                let Some(elem) = self.kernel.buffer_elem(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                self.pending.at_mut(elem).loads += 1;
                let dst = self.alloc_f();
                let Some(&b) = self.buf_index.get(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                self.ops.push(Op::Load { buf: b, idx, dst });
                Ok((Val::F(dst), CTy::F(elem)))
            }
            Expr::Unary { op, arg } => {
                let (v, t) = self.expr(arg, hint)?;
                match t {
                    CTy::F(p) => {
                        let slot = self.pending.at_mut(p);
                        match op {
                            UnaryFn::Neg | UnaryFn::Fabs => slot.add_sub += 1,
                            _ => slot.special += 1,
                        }
                        let dst = self.alloc_f();
                        self.ops.push(Op::FUn {
                            prec: p,
                            op: *op,
                            dst,
                            a: v.freg(),
                        });
                        Ok((Val::F(dst), CTy::F(p)))
                    }
                    CTy::Int => {
                        self.pending.int_ops += 1;
                        match op {
                            UnaryFn::Neg | UnaryFn::Fabs => {
                                let dst = self.alloc_i();
                                self.ops.push(Op::IUn {
                                    op: *op,
                                    dst,
                                    a: v.ireg(),
                                });
                                Ok((Val::I(dst), CTy::Int))
                            }
                            _ => {
                                // sqrt/exp/log of an int computes in double.
                                let wide = self.alloc_f();
                                self.ops.push(Op::IToF {
                                    prec: Precision::Double,
                                    dst: wide,
                                    a: v.ireg(),
                                });
                                let dst = self.alloc_f();
                                self.ops.push(Op::FUn {
                                    prec: Precision::Double,
                                    op: *op,
                                    dst,
                                    a: wide,
                                });
                                Ok((Val::F(dst), CTy::F(Precision::Double)))
                            }
                        }
                    }
                    CTy::Bool => Err(ExecError::KindError(
                        "boolean passed to a math function".to_owned(),
                    )),
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let (a, ta, b, tb) = self.pair(lhs, rhs, hint)?;
                if ta == CTy::Bool || tb == CTy::Bool {
                    return Err(ExecError::KindError(
                        "boolean operand in arithmetic".to_owned(),
                    ));
                }
                match (ta, tb) {
                    (CTy::Int, CTy::Int) => {
                        self.pending.int_ops += 1;
                        let dst = self.alloc_i();
                        self.ops.push(Op::IBin {
                            op: *op,
                            dst,
                            a: a.ireg(),
                            b: b.ireg(),
                        });
                        Ok((Val::I(dst), CTy::Int))
                    }
                    _ => {
                        let p = promote_cty(ta, tb);
                        let fa = self.float_operand(a, ta);
                        let fb = self.float_operand(b, tb);
                        let slot = self.pending.at_mut(p);
                        match op {
                            FloatBinOp::Add
                            | FloatBinOp::Sub
                            | FloatBinOp::Min
                            | FloatBinOp::Max => slot.add_sub += 1,
                            FloatBinOp::Mul => slot.mul += 1,
                            FloatBinOp::Div => slot.div += 1,
                        }
                        let dst = self.alloc_f();
                        self.ops.push(Op::FBin {
                            prec: p,
                            op: *op,
                            dst,
                            a: fa,
                            b: fb,
                        });
                        Ok((Val::F(dst), CTy::F(p)))
                    }
                }
            }
            Expr::Cmp { op, lhs, rhs } => {
                let (a, ta, b, tb) = self.pair(lhs, rhs, None)?;
                if ta == CTy::Bool || tb == CTy::Bool {
                    return Err(ExecError::KindError(
                        "boolean operand in comparison".to_owned(),
                    ));
                }
                match (ta, tb) {
                    (CTy::Int, CTy::Int) => {
                        self.pending.int_ops += 1;
                        let dst = self.alloc_i();
                        self.ops.push(Op::ICmp {
                            op: *op,
                            dst,
                            a: a.ireg(),
                            b: b.ireg(),
                        });
                        Ok((Val::I(dst), CTy::Bool))
                    }
                    _ => {
                        let p = promote_cty(ta, tb);
                        self.pending.at_mut(p).cmp += 1;
                        let fa = self.float_operand(a, ta);
                        let fb = self.float_operand(b, tb);
                        let dst = self.alloc_i();
                        self.ops.push(Op::FCmp {
                            op: *op,
                            dst,
                            a: fa,
                            b: fb,
                        });
                        Ok((Val::I(dst), CTy::Bool))
                    }
                }
            }
            Expr::Cast { to, arg } => {
                let (v, t) = self.expr(arg, None)?;
                let target = match to {
                    TypeRef::Concrete(t) => *t,
                    TypeRef::ElemOf(_) => self.kernel.resolve(to),
                };
                Ok(self.coerce(v, t, target))
            }
            Expr::Select { cond, then, els } => {
                let (cv, ct) = self.expr(cond, None)?;
                if ct != CTy::Bool {
                    return Err(ExecError::KindError(
                        "select condition must be a boolean".to_owned(),
                    ));
                }
                let c = cv.ireg();
                let (a, ta, b, tb) = self.pair(then, els, hint)?;
                match (ta, tb) {
                    (CTy::Int, CTy::Int) => {
                        let dst = self.alloc_i();
                        self.ops.push(Op::SelectI {
                            cond: c,
                            dst,
                            a: a.ireg(),
                            b: b.ireg(),
                        });
                        Ok((Val::I(dst), CTy::Int))
                    }
                    (CTy::F(pa), CTy::F(pb)) => {
                        let p = pa.max(pb);
                        let fa = if pa < p {
                            self.coerce(a, ta, ScalarType::Float(p)).0.freg()
                        } else {
                            a.freg()
                        };
                        let fb = if pb < p {
                            self.coerce(b, tb, ScalarType::Float(p)).0.freg()
                        } else {
                            b.freg()
                        };
                        let dst = self.alloc_f();
                        self.ops.push(Op::SelectF {
                            cond: c,
                            dst,
                            a: fa,
                            b: fb,
                        });
                        Ok((Val::F(dst), CTy::F(p)))
                    }
                    _ => Err(ExecError::KindError(
                        "select arms disagree in kind".to_owned(),
                    )),
                }
            }
        }
    }

    /// Mirror of `Interp::eval_pair`'s weak-literal resolution.
    fn pair(
        &mut self,
        lhs: &'k Expr,
        rhs: &'k Expr,
        hint: Option<Precision>,
    ) -> Result<(Val, CTy, Val, CTy), ExecError> {
        let lw = expr_is_weak(lhs);
        let rw = expr_is_weak(rhs);
        if lw && !rw {
            let (b, tb) = self.expr(rhs, hint)?;
            let (a, ta) = self.expr(lhs, tb.precision())?;
            Ok((a, ta, b, tb))
        } else if rw && !lw {
            let (a, ta) = self.expr(lhs, hint)?;
            let (b, tb) = self.expr(rhs, ta.precision())?;
            Ok((a, ta, b, tb))
        } else {
            let (a, ta) = self.expr(lhs, hint)?;
            let (b, tb) = self.expr(rhs, hint)?;
            Ok((a, ta, b, tb))
        }
    }

    /// Materializes an operand as a float register for a promoted binop
    /// (uncounted, mirroring `Scalar::binop`'s internal widening). Callers
    /// reject boolean operands before reaching here, so only ints widen.
    fn float_operand(&mut self, v: Val, t: CTy) -> FReg {
        match t {
            CTy::F(_) | CTy::Bool => v.freg(),
            CTy::Int => {
                let dst = self.alloc_f();
                self.ops.push(Op::IToF {
                    prec: Precision::Double,
                    dst,
                    a: v.ireg(),
                });
                dst
            }
        }
    }
}

fn expr_is_weak(e: &Expr) -> bool {
    match e {
        Expr::FloatConst(_) => true,
        Expr::Unary { arg, .. } => expr_is_weak(arg),
        Expr::Bin { lhs, rhs, .. } => expr_is_weak(lhs) && expr_is_weak(rhs),
        Expr::Select { then, els, .. } => expr_is_weak(then) && expr_is_weak(els),
        _ => false,
    }
}

fn promote_cty(a: CTy, b: CTy) -> Precision {
    match (a.precision(), b.precision()) {
        (Some(x), Some(y)) => x.max(y),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => Precision::Double,
    }
}

/// Rounds an exact f64 representation to a precision.
#[inline]
fn round_to(p: Precision, v: f64) -> f64 {
    match p {
        Precision::Half => F16::from_f64(v).to_f64(),
        Precision::Single => f64::from(v as f32),
        Precision::Double => v,
    }
}

#[inline]
fn apply_fbin(p: Precision, op: FloatBinOp, a: f64, b: f64) -> f64 {
    match p {
        Precision::Double => apply_f64(op, a, b),
        Precision::Single => {
            let (x, y) = (a as f32, b as f32);
            f64::from(match op {
                FloatBinOp::Add => x + y,
                FloatBinOp::Sub => x - y,
                FloatBinOp::Mul => x * y,
                FloatBinOp::Div => x / y,
                FloatBinOp::Min => x.min(y),
                FloatBinOp::Max => x.max(y),
            })
        }
        Precision::Half => {
            let (x, y) = (F16::from_f64(a), F16::from_f64(b));
            (match op {
                FloatBinOp::Add => x + y,
                FloatBinOp::Sub => x - y,
                FloatBinOp::Mul => x * y,
                FloatBinOp::Div => x / y,
                FloatBinOp::Min => x.min(y),
                FloatBinOp::Max => x.max(y),
            })
            .to_f64()
        }
    }
}

#[inline]
fn apply_f64(op: FloatBinOp, a: f64, b: f64) -> f64 {
    match op {
        FloatBinOp::Add => a + b,
        FloatBinOp::Sub => a - b,
        FloatBinOp::Mul => a * b,
        FloatBinOp::Div => a / b,
        FloatBinOp::Min => a.min(b),
        FloatBinOp::Max => a.max(b),
    }
}

#[inline]
fn apply_fun(p: Precision, op: UnaryFn, a: f64) -> f64 {
    use crate::value::Scalar;
    // Route through the reference implementation to guarantee identical
    // semantics (precision-faithful special functions).
    let s = match p {
        Precision::Half => Scalar::F16(F16::from_f64(a)),
        Precision::Single => Scalar::F32(a as f32),
        Precision::Double => Scalar::F64(a),
    };
    op.apply(s).as_f64()
}

#[inline]
fn apply_icmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

#[inline]
fn apply_fcmp(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

#[inline]
fn apply_ibin(op: FloatBinOp, a: i64, b: i64) -> i64 {
    match op {
        FloatBinOp::Add => a.wrapping_add(b),
        FloatBinOp::Sub => a.wrapping_sub(b),
        FloatBinOp::Mul => a.wrapping_mul(b),
        FloatBinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        FloatBinOp::Min => a.min(b),
        FloatBinOp::Max => a.max(b),
    }
}

impl CompiledKernel {
    /// The kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bytecode instructions (for diagnostics).
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.ops.len()
    }

    /// Executes the compiled kernel over the launch NDRange. Semantics and
    /// error behaviour match [`crate::interp::run_kernel`] exactly.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(&self, buffers: &mut BufferMap, launch: &Launch) -> Result<OpCounts, ExecError> {
        // Bind parameters.
        let mut iregs = vec![0i64; self.n_iregs as usize];
        let mut fregs = vec![0f64; self.n_fregs as usize];
        let mut bufs: Vec<(String, FloatVec)> = Vec::new();

        for p in &self.params {
            match p {
                ParamBind::Buffer { name, elem } => match buffers.remove(name.as_str()) {
                    None => {
                        self.restore(buffers, bufs);
                        return Err(ExecError::MissingBuffer(name.clone()));
                    }
                    Some(v) if v.precision() != *elem => {
                        let bound = v.precision();
                        buffers.insert(name.clone(), v);
                        self.restore(buffers, bufs);
                        return Err(ExecError::BufferPrecisionMismatch {
                            name: name.clone(),
                            declared: *elem,
                            bound,
                        });
                    }
                    Some(data) => bufs.push((name.clone(), data)),
                },
                ParamBind::ScalarInt { name, reg } => {
                    let arg = find_arg(launch, name);
                    match arg {
                        Some(ArgValue::Int(v)) => iregs[*reg as usize] = v,
                        Some(ArgValue::Float(_)) => {
                            self.restore(buffers, bufs);
                            return Err(ExecError::ArgKindMismatch(name.clone()));
                        }
                        None => {
                            self.restore(buffers, bufs);
                            return Err(ExecError::MissingArg(name.clone()));
                        }
                    }
                }
                ParamBind::ScalarFloat { name, prec, reg } => {
                    let arg = find_arg(launch, name);
                    match arg {
                        Some(ArgValue::Float(v)) => fregs[*reg as usize] = round_to(*prec, v),
                        Some(ArgValue::Int(v)) => fregs[*reg as usize] = round_to(*prec, v as f64),
                        None => {
                            self.restore(buffers, bufs);
                            return Err(ExecError::MissingArg(name.clone()));
                        }
                    }
                }
            }
        }

        let result = self.exec(&mut iregs, &mut fregs, &mut bufs, launch);
        self.restore(buffers, bufs);
        result
    }

    fn restore(&self, buffers: &mut BufferMap, bufs: Vec<(String, FloatVec)>) {
        for (name, data) in bufs {
            buffers.insert(name, data);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec(
        &self,
        iregs: &mut [i64],
        fregs: &mut [f64],
        bufs: &mut [(String, FloatVec)],
        launch: &Launch,
    ) -> Result<OpCounts, ExecError> {
        let mut counts = OpCounts::new();
        let ops = &self.ops[..];
        for gy in 0..launch.global[1] {
            for gx in 0..launch.global[0] {
                iregs[0] = gx as i64;
                iregs[1] = gy as i64;
                let mut pc = 0usize;
                loop {
                    match ops[pc] {
                        Op::Halt => break,
                        Op::Jump(t) => {
                            pc = t as usize;
                            continue;
                        }
                        Op::JumpIfFalse { cond, target } => {
                            if iregs[cond as usize] == 0 {
                                pc = target as usize;
                                continue;
                            }
                        }
                        Op::IConst { dst, v } => iregs[dst as usize] = v,
                        Op::FConst { dst, v } => fregs[dst as usize] = v,
                        Op::IMov { dst, src } => iregs[dst as usize] = iregs[src as usize],
                        Op::FMov { dst, src } => fregs[dst as usize] = fregs[src as usize],
                        Op::IBin { op, dst, a, b } => {
                            iregs[dst as usize] =
                                apply_ibin(op, iregs[a as usize], iregs[b as usize]);
                        }
                        Op::IAddImm { dst, a, imm } => {
                            iregs[dst as usize] = iregs[a as usize].wrapping_add(imm);
                        }
                        Op::IUn { op, dst, a } => {
                            let v = iregs[a as usize];
                            iregs[dst as usize] = match op {
                                UnaryFn::Neg => v.wrapping_neg(),
                                UnaryFn::Fabs => v.wrapping_abs(),
                                _ => {
                                    return Err(ExecError::KindError(
                                        "integer unary op must be neg or abs".to_owned(),
                                    ));
                                }
                            };
                        }
                        Op::ICmp { op, dst, a, b } => {
                            iregs[dst as usize] =
                                i64::from(apply_icmp(op, iregs[a as usize], iregs[b as usize]));
                        }
                        Op::FCmp { op, dst, a, b } => {
                            iregs[dst as usize] =
                                i64::from(apply_fcmp(op, fregs[a as usize], fregs[b as usize]));
                        }
                        Op::FBin {
                            prec,
                            op,
                            dst,
                            a,
                            b,
                        } => {
                            fregs[dst as usize] =
                                apply_fbin(prec, op, fregs[a as usize], fregs[b as usize]);
                        }
                        Op::FUn { prec, op, dst, a } => {
                            fregs[dst as usize] = apply_fun(prec, op, fregs[a as usize]);
                        }
                        Op::Cvt { prec, dst, a } => {
                            fregs[dst as usize] = round_to(prec, fregs[a as usize]);
                        }
                        Op::IToF { prec, dst, a } => {
                            fregs[dst as usize] = round_to(prec, iregs[a as usize] as f64);
                        }
                        Op::FToI { dst, a } => {
                            iregs[dst as usize] = fregs[a as usize].trunc() as i64;
                        }
                        Op::Load { buf, idx, dst } => {
                            let i = iregs[idx as usize];
                            let (name, data) = &bufs[buf as usize];
                            let len = data.len();
                            if i < 0 || i as usize >= len {
                                return Err(ExecError::OutOfBounds {
                                    buf: name.clone(),
                                    index: i,
                                    len,
                                });
                            }
                            fregs[dst as usize] = match data {
                                FloatVec::F16(v) => v[i as usize].to_f64(),
                                FloatVec::F32(v) => f64::from(v[i as usize]),
                                FloatVec::F64(v) => v[i as usize],
                            };
                        }
                        Op::Store { buf, idx, src } => {
                            let i = iregs[idx as usize];
                            let v = fregs[src as usize];
                            let (name, data) = &mut bufs[buf as usize];
                            let len = data.len();
                            if i < 0 || i as usize >= len {
                                return Err(ExecError::OutOfBounds {
                                    buf: name.clone(),
                                    index: i,
                                    len,
                                });
                            }
                            match data {
                                FloatVec::F16(vec) => vec[i as usize] = F16::from_f64(v),
                                FloatVec::F32(vec) => vec[i as usize] = v as f32,
                                FloatVec::F64(vec) => vec[i as usize] = v,
                            }
                        }
                        Op::SelectF { cond, dst, a, b } => {
                            fregs[dst as usize] = if iregs[cond as usize] != 0 {
                                fregs[a as usize]
                            } else {
                                fregs[b as usize]
                            };
                        }
                        Op::SelectI { cond, dst, a, b } => {
                            iregs[dst as usize] = if iregs[cond as usize] != 0 {
                                iregs[a as usize]
                            } else {
                                iregs[b as usize]
                            };
                        }
                        Op::Count { idx } => {
                            counts += self.counts_table[idx as usize];
                        }
                    }
                    pc += 1;
                }
            }
        }
        Ok(counts)
    }
}

fn find_arg(launch: &Launch, name: &str) -> Option<ArgValue> {
    launch
        .args
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Access;
    use crate::dsl::*;
    use crate::interp::run_kernel;
    use crate::typeck::check_kernel;

    /// Runs a kernel through both engines and asserts identical buffers
    /// and counts.
    fn assert_equiv(kernel: &Kernel, mut bufs: BufferMap, launch: &Launch) {
        check_kernel(kernel).unwrap();
        let mut bufs_vm = bufs.clone();
        let counts_interp = run_kernel(kernel, &mut bufs, launch).unwrap();
        let compiled = compile_kernel(kernel).unwrap();
        let counts_vm = compiled.run(&mut bufs_vm, launch).unwrap();
        assert_eq!(counts_interp, counts_vm, "operation counts must match");
        for (name, data) in &bufs {
            assert_eq!(
                data, &bufs_vm[name],
                "buffer `{name}` diverged between interpreter and VM"
            );
        }
    }

    fn saxpy(elem: Precision) -> Kernel {
        kernel("saxpy")
            .buffer("x", elem, Access::Read)
            .buffer("y", elem, Access::ReadWrite)
            .float_param_like("a", "x")
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    lt(var("i"), var("n")),
                    vec![store(
                        "y",
                        var("i"),
                        var("a") * load("x", var("i")) + load("y", var("i")),
                    )],
                ),
            ])
    }

    #[test]
    fn saxpy_equivalence_all_precisions() {
        for elem in Precision::ALL {
            let k = saxpy(elem);
            let n = 40usize;
            let mut bufs = BufferMap::new();
            let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 100.0).collect();
            let ys: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 100.0).collect();
            bufs.insert("x".into(), FloatVec::from_f64_slice(&xs, elem));
            bufs.insert("y".into(), FloatVec::from_f64_slice(&ys, elem));
            // Launch wider than n to exercise the guard.
            let launch = Launch::one_d(64).arg_float("a", 2.5).arg_int("n", n as i64);
            assert_equiv(&k, bufs, &launch);
        }
    }

    #[test]
    fn loops_casts_and_selects_are_equivalent() {
        let k = kernel("mix")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Single, Access::Read)
            .buffer("c", Precision::Half, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                let_acc("acc", "c", flit(0.0)),
                for_(
                    "j",
                    int(0),
                    var("n"),
                    vec![
                        let_("prod", load("a", var("j")) * load("b", var("j"))),
                        add_assign(
                            "acc",
                            select(
                                gt(var("prod"), flit(10.0)),
                                cast(Precision::Half, sqrt(var("prod"))),
                                cast(Precision::Half, var("prod")),
                            ),
                        ),
                    ],
                ),
                store("c", var("i"), var("acc") + cast_elem_of("c", var("i"))),
            ]);
        let n = 12usize;
        let mut bufs = BufferMap::new();
        let xs: Vec<f64> = (0..n).map(|i| 0.7 * i as f64).collect();
        bufs.insert("a".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
        bufs.insert("b".into(), FloatVec::from_f64_slice(&xs, Precision::Single));
        bufs.insert("c".into(), FloatVec::zeros(n, Precision::Half));
        let launch = Launch::one_d(n).arg_int("n", n as i64);
        assert_equiv(&k, bufs, &launch);
    }

    #[test]
    fn triangular_loops_and_two_d_ids_are_equivalent() {
        let k = kernel("tri")
            .buffer("c", Precision::Single, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                let_acc("acc", "c", flit(1.0)),
                for_(
                    "kk",
                    var("j") + int(1),
                    var("n"),
                    vec![assign("acc", var("acc") * flit(1.5) - flit(0.25))],
                ),
                if_else(
                    lt(var("i"), var("j")),
                    vec![store("c", var("i") * var("n") + var("j"), var("acc"))],
                    vec![store("c", var("j") * var("n") + var("i"), -var("acc"))],
                ),
            ]);
        let n = 9usize;
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(n * n, Precision::Single));
        let launch = Launch::two_d(n, n).arg_int("n", n as i64);
        assert_equiv(&k, bufs, &launch);
    }

    #[test]
    fn out_of_bounds_is_reported_identically() {
        let k = kernel("oob")
            .buffer("x", Precision::Double, Access::Read)
            .body(vec![let_("v", load("x", global_id(0)))]);
        check_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        bufs.insert("x".into(), FloatVec::zeros(4, Precision::Double));
        let compiled = compile_kernel(&k).unwrap();
        let err = compiled.run(&mut bufs, &Launch::one_d(8)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::OutOfBounds {
                index: 4,
                len: 4,
                ..
            }
        ));
        // Buffers are restored even on error.
        assert!(bufs.contains_key("x"));
    }

    #[test]
    fn missing_bindings_error_like_the_interpreter() {
        let k = saxpy(Precision::Double);
        let compiled = compile_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        assert!(matches!(
            compiled.run(&mut bufs, &Launch::one_d(1)),
            Err(ExecError::MissingBuffer(_))
        ));
        bufs.insert("x".into(), FloatVec::zeros(1, Precision::Double));
        bufs.insert("y".into(), FloatVec::zeros(1, Precision::Single));
        assert!(matches!(
            compiled.run(&mut bufs, &Launch::one_d(1)),
            Err(ExecError::BufferPrecisionMismatch { .. })
        ));
        bufs.insert("y".into(), FloatVec::zeros(1, Precision::Double));
        assert!(matches!(
            compiled.run(&mut bufs, &Launch::one_d(1)),
            Err(ExecError::MissingArg(_))
        ));
    }

    #[test]
    fn compiled_code_is_compact() {
        let k = saxpy(Precision::Double);
        let compiled = compile_kernel(&k).unwrap();
        assert!(compiled.code_len() < 40, "{} ops", compiled.code_len());
        assert_eq!(compiled.name(), "saxpy");
    }

    #[test]
    fn empty_loop_counts_match() {
        // A loop with zero trips: bounds evaluated, no body counts.
        let k = kernel("z")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![for_(
                "i",
                int(5),
                int(2),
                vec![store("c", var("i"), flit(0.0))],
            )]);
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(1, Precision::Double));
        assert_equiv(&k, bufs, &Launch::one_d(3));
    }

    #[test]
    fn malformed_kernels_compile_to_typed_errors() {
        // Unbound variable.
        let k = kernel("bad")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", int(0), var("ghost"))]);
        assert!(matches!(
            compile_kernel(&k),
            Err(ExecError::UnboundVar(n)) if n == "ghost"
        ));
        // Storing through a non-buffer parameter.
        let k = kernel("bad")
            .int_param("n")
            .body(vec![store("n", int(0), flit(1.0))]);
        assert!(matches!(
            compile_kernel(&k),
            Err(ExecError::NotABuffer(n)) if n == "n"
        ));
        // Float buffer index.
        let k = kernel("bad")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", flit(0.5), flit(1.0))]);
        assert!(matches!(compile_kernel(&k), Err(ExecError::KindError(_))));
        // Boolean operand in arithmetic.
        let k = kernel("bad")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", int(0), lt(int(0), int(1)) + flit(1.0))]);
        assert!(matches!(compile_kernel(&k), Err(ExecError::KindError(_))));
    }

    #[test]
    fn weak_literal_chains_match() {
        // Literal arithmetic adopting a buffer's precision through nesting.
        let k = kernel("w")
            .buffer("c", Precision::Half, Access::ReadWrite)
            .body(vec![
                let_("i", global_id(0)),
                store(
                    "c",
                    var("i"),
                    (flit(0.1) + flit(0.2)) * load("c", var("i")) + flit(0.3),
                ),
            ]);
        let mut bufs = BufferMap::new();
        bufs.insert(
            "c".into(),
            FloatVec::from_f64_slice(&[1.0, 2.0, 4.0], Precision::Half),
        );
        assert_equiv(&k, bufs, &Launch::one_d(3));
    }
}
