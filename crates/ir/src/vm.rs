//! A bytecode compiler and virtual machine for kernels.
//!
//! The tree-walking interpreter in [`crate::interp`] is the semantic
//! reference; this module compiles a kernel once into a flat register
//! bytecode that executes the same semantics an order of magnitude faster —
//! which is what makes paper-scale experiments (millions of work-items,
//! dozens of search trials) practical.
//!
//! Equivalence contract (pinned by tests here and across the benchmark
//! suite): for any type-correct kernel, [`CompiledKernel::run`] produces
//! **bit-identical buffer contents and identical [`OpCounts`]** to
//! [`crate::interp::run_kernel`].
//!
//! Two implementation points matter for the equivalence:
//!
//! * Float registers hold `f64` values that are always exactly
//!   representable at the operand's static precision, so computing a
//!   binary16/32 operation by rounding the `f64` inputs is exact.
//! * Counting is *static per straight-line region*: the compiler
//!   pre-computes each region's [`OpCounts`] delta and the VM adds it once
//!   per execution, which is exact because within a region every counted
//!   operation executes unconditionally.

pub use crate::analysis::ParallelSafety;
use crate::analysis::{self, ChunkPlan};
use crate::array::FloatVec;
use crate::ast::{Expr, Kernel, Param, Stmt, TypeRef};
use crate::counts::OpCounts;
use crate::interp::{ArgValue, BufferMap, ExecError, Launch};
use crate::types::{Precision, ScalarType};
use crate::value::{CmpOp, FloatBinOp, UnaryFn};
use prescaler_fp16::F16;
use std::collections::HashMap;
use std::ops::Range;

/// Index of an integer register.
type IReg = u32;
/// Index of a float register.
type FReg = u32;

/// One VM instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Op {
    /// Unconditional jump.
    Jump(u32),
    /// Jump when the integer register is zero (false).
    JumpIfFalse { cond: IReg, target: u32 },
    /// `i[dst] = v`.
    IConst { dst: IReg, v: i64 },
    /// `f[dst] = v` (already rounded to the static precision).
    FConst { dst: FReg, v: f64 },
    /// `i[dst] = i[src]`.
    IMov { dst: IReg, src: IReg },
    /// `f[dst] = f[src]`.
    FMov { dst: FReg, src: FReg },
    /// Integer arithmetic.
    IBin {
        op: FloatBinOp,
        dst: IReg,
        a: IReg,
        b: IReg,
    },
    /// `i[dst] = i[a] + imm` (loop bookkeeping).
    IAddImm { dst: IReg, a: IReg, imm: i64 },
    /// Integer negate / abs.
    IUn { op: UnaryFn, dst: IReg, a: IReg },
    /// Integer comparison → 0/1.
    ICmp {
        op: CmpOp,
        dst: IReg,
        a: IReg,
        b: IReg,
    },
    /// Float comparison (exact on the f64 representations) → 0/1.
    FCmp {
        op: CmpOp,
        dst: IReg,
        a: FReg,
        b: FReg,
    },
    /// Float arithmetic at a precision.
    FBin {
        prec: Precision,
        op: FloatBinOp,
        dst: FReg,
        a: FReg,
        b: FReg,
    },
    /// Float unary function at a precision.
    FUn {
        prec: Precision,
        op: UnaryFn,
        dst: FReg,
        a: FReg,
    },
    /// Round to a (different) float precision.
    Cvt { prec: Precision, dst: FReg, a: FReg },
    /// Exact i64 → f64, then round to the precision.
    IToF { prec: Precision, dst: FReg, a: IReg },
    /// Truncating f64 → i64 (C cast semantics).
    FToI { dst: IReg, a: FReg },
    /// `f[dst] = buffers[buf][i[idx]]` widened to f64.
    Load { buf: u16, idx: IReg, dst: FReg },
    /// `buffers[buf][i[idx]] = f[src]` rounded to the element type.
    Store { buf: u16, idx: IReg, src: FReg },
    /// `f[dst] = i[cond] != 0 ? f[a] : f[b]`.
    SelectF {
        cond: IReg,
        dst: FReg,
        a: FReg,
        b: FReg,
    },
    /// `i[dst] = i[cond] != 0 ? i[a] : i[b]`.
    SelectI {
        cond: IReg,
        dst: IReg,
        a: IReg,
        b: IReg,
    },
    /// Add `counts_table[idx]` to the running counters.
    Count { idx: u32 },
    /// End of the work-item.
    Halt,
    // ------------------------------------------------------------------
    // Fused superinstructions, produced only by the peephole pass. Each
    // is the exact composition of the ops it replaces — same values,
    // same error behaviour — collapsing the dispatch count of hot loops.
    // ------------------------------------------------------------------
    /// `ICmp` + `JumpIfFalse` on its (otherwise dead) result.
    JumpICmpFalse {
        op: CmpOp,
        a: IReg,
        b: IReg,
        target: u32,
    },
    /// `FCmp` + `JumpIfFalse` on its (otherwise dead) result.
    JumpFCmpFalse {
        op: CmpOp,
        a: FReg,
        b: FReg,
        target: u32,
    },
    /// Loop back-edge: `IAddImm` + `Jump` (increment, then jump).
    IAddImmJump {
        dst: IReg,
        a: IReg,
        imm: i64,
        target: u32,
    },
    /// Row-major indexed load: `f[dst] = buffers[buf][i[a]*i[b] + i[c]]`
    /// (`IBin Mul` + `IBin Add` + `Load` with dead index temporaries).
    LoadMulAdd {
        buf: u16,
        a: IReg,
        b: IReg,
        c: IReg,
        dst: FReg,
    },
    /// Multiply-accumulate: `f[dst] = f[acc] + f[a]*f[b]`, rounding the
    /// product at `pm` and the sum at `pa` — two roundings, exactly as
    /// the unfused `FBin Mul` + `FBin Add` pair (this is *not* an FMA).
    FMulAcc {
        pm: Precision,
        pa: Precision,
        dst: FReg,
        acc: FReg,
        a: FReg,
        b: FReg,
    },
    /// A full dot-product step (`LoadMulAdd` + `LoadMulAdd` + `FMulAcc`);
    /// the operands live in `dot_table[idx]` so `Op` stays compact.
    DotStep { idx: u32 },
    /// `Count` folded into the loop back-edge `IAddImmJump` (the
    /// increment fits in an `i32` whenever this fires).
    CountAddJump {
        idx: u32,
        dst: IReg,
        a: IReg,
        imm: i32,
        target: u32,
    },
}

/// Operands of a fused [`Op::DotStep`]:
/// `f[dst] = f[acc] + buf1[i[a1]*i[b1]+i[c1]] * buf2[i[a2]*i[b2]+i[c2]]`
/// with the product rounded at `pm` and the sum at `pa`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct DotStepArgs {
    pm: Precision,
    pa: Precision,
    dst: FReg,
    acc: FReg,
    buf1: u16,
    a1: IReg,
    b1: IReg,
    c1: IReg,
    buf2: u16,
    a2: IReg,
    b2: IReg,
    c2: IReg,
}

/// How one kernel parameter binds at launch. Scalar parameters carry the
/// index of their pre-resolved argument slot (computed once at compile
/// time), so launches bind arguments without any name scanning.
#[derive(Clone, Debug, PartialEq)]
enum ParamBind {
    Buffer {
        name: String,
        elem: Precision,
    },
    ScalarInt {
        name: String,
        reg: IReg,
        slot: u32,
    },
    ScalarFloat {
        name: String,
        prec: Precision,
        reg: FReg,
        slot: u32,
    },
}

/// A compiled kernel.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    name: String,
    ops: Vec<Op>,
    counts_table: Vec<OpCounts>,
    dot_table: Vec<DotStepArgs>,
    params: Vec<ParamBind>,
    /// Launch-argument name → scalar slot, resolved once at compile time.
    arg_slots: HashMap<String, u32>,
    n_arg_slots: u32,
    n_iregs: u32,
    n_fregs: u32,
    /// Disjoint-write verdict, computed once at compile time; decides
    /// whether [`CompiledKernel::run_parallel`] may chunk the NDRange.
    safety: ParallelSafety,
}

/// Reusable execution state for [`CompiledKernel::run_with_scratch`]:
/// register files, counter tallies, argument slots, the buffer-binding
/// list, and (for parallel runs) per-chunk worker state. Holding one
/// scratch across launches avoids every per-launch heap allocation; any
/// kernel can run against any scratch.
#[derive(Debug, Default)]
pub struct VmScratch {
    iregs: Vec<i64>,
    fregs: Vec<f64>,
    bufs: Vec<(String, FloatVec)>,
    hits: Vec<u64>,
    args: Vec<Option<ArgValue>>,
    workers: Vec<Worker>,
}

/// Per-chunk execution state for the parallel executor: a private
/// register file and counter tally, seeded from the launch-bound
/// prototype before each run.
#[derive(Debug, Default)]
struct Worker {
    iregs: Vec<i64>,
    fregs: Vec<f64>,
    hits: Vec<u64>,
}

impl VmScratch {
    /// An empty scratch; storage grows on first use.
    #[must_use]
    pub fn new() -> VmScratch {
        VmScratch::default()
    }
}

/// Moves temporarily-bound buffers back into the caller's map.
fn restore(buffers: &mut BufferMap, bufs: &mut Vec<(String, FloatVec)>) {
    for (name, data) in bufs.drain(..) {
        buffers.insert(name, data);
    }
}

/// Compile-time value classification.
#[derive(Clone, Copy, Debug, PartialEq)]
enum CTy {
    Int,
    F(Precision),
    Bool,
}

impl CTy {
    fn precision(self) -> Option<Precision> {
        match self {
            CTy::F(p) => Some(p),
            _ => None,
        }
    }
}

/// Compile-time value location.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Val {
    I(IReg),
    F(FReg),
}

impl Val {
    fn ireg(self) -> IReg {
        match self {
            Val::I(r) => r,
            Val::F(_) => unreachable!("checked: expected an integer value"),
        }
    }

    fn freg(self) -> FReg {
        match self {
            Val::F(r) => r,
            Val::I(_) => unreachable!("checked: expected a float value"),
        }
    }
}

/// Compiles a kernel to bytecode.
///
/// Kernels that pass [`crate::typeck::check_kernel`] always compile;
/// malformed ones degrade into the same typed [`ExecError`]s the
/// interpreter reports instead of panicking.
///
/// # Errors
///
/// Returns [`ExecError::UnboundVar`], [`ExecError::NotABuffer`], or
/// [`ExecError::KindError`] for constructs the type checker rejects.
pub fn compile_kernel(kernel: &Kernel) -> Result<CompiledKernel, ExecError> {
    let mut c = Compiler {
        kernel,
        ops: Vec::new(),
        counts_table: Vec::new(),
        pending: OpCounts::new(),
        scopes: vec![HashMap::new()],
        next_i: 2, // iregs 0/1 are get_global_id(0)/(1)
        next_f: 0,
        params: Vec::new(),
        buf_index: HashMap::new(),
    };

    let mut arg_slots = HashMap::new();
    let mut n_bufs: u16 = 0;
    let mut n_slots: u32 = 0;
    for p in &kernel.params {
        match p {
            Param::Buffer { name, elem, .. } => {
                // Buffers index the *buffer* binding list, which skips
                // scalar parameters.
                c.buf_index.insert(name.clone(), n_bufs);
                n_bufs += 1;
                c.params.push(ParamBind::Buffer {
                    name: name.clone(),
                    elem: *elem,
                });
            }
            Param::Scalar { name, ty } => {
                let slot = n_slots;
                n_slots += 1;
                arg_slots.insert(name.clone(), slot);
                match kernel.resolve(ty) {
                    ScalarType::Int => {
                        let reg = c.alloc_i();
                        c.params.push(ParamBind::ScalarInt {
                            name: name.clone(),
                            reg,
                            slot,
                        });
                        c.scopes[0].insert(name.clone(), (Val::I(reg), CTy::Int));
                    }
                    ScalarType::Float(prec) => {
                        let reg = c.alloc_f();
                        c.params.push(ParamBind::ScalarFloat {
                            name: name.clone(),
                            prec,
                            reg,
                            slot,
                        });
                        c.scopes[0].insert(name.clone(), (Val::F(reg), CTy::F(prec)));
                    }
                    ScalarType::Bool => {
                        return Err(ExecError::KindError(format!(
                            "parameter `{name}` declares a boolean type"
                        )));
                    }
                }
            }
        }
    }

    c.block(&kernel.body)?;
    c.flush();
    c.ops.push(Op::Halt);

    let mut dot_table = Vec::new();
    let ops = peephole(c.ops, &mut dot_table);
    Ok(CompiledKernel {
        name: kernel.name.clone(),
        ops,
        counts_table: c.counts_table,
        dot_table,
        params: c.params,
        arg_slots,
        n_arg_slots: n_slots,
        n_iregs: c.next_i,
        n_fregs: c.next_f,
        safety: analysis::parallel_safety(kernel),
    })
}

struct Compiler<'k> {
    kernel: &'k Kernel,
    ops: Vec<Op>,
    counts_table: Vec<OpCounts>,
    pending: OpCounts,
    scopes: Vec<HashMap<String, (Val, CTy)>>,
    next_i: u32,
    next_f: u32,
    params: Vec<ParamBind>,
    buf_index: HashMap<String, u16>,
}

impl<'k> Compiler<'k> {
    fn alloc_i(&mut self) -> IReg {
        let r = self.next_i;
        self.next_i += 1;
        r
    }

    fn alloc_f(&mut self) -> FReg {
        let r = self.next_f;
        self.next_f += 1;
        r
    }

    fn lookup(&self, name: &str) -> Result<(Val, CTy), ExecError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        Err(ExecError::UnboundVar(name.to_owned()))
    }

    /// The innermost scope, recreating the root scope if it was lost.
    fn top_scope(&mut self) -> &mut HashMap<String, (Val, CTy)> {
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        let top = self.scopes.len() - 1;
        &mut self.scopes[top]
    }

    /// Flushes the pending straight-line counts as a `Count` op.
    fn flush(&mut self) {
        if self.pending == OpCounts::new() {
            return;
        }
        let idx = self.counts_table.len() as u32;
        self.counts_table.push(self.pending);
        self.pending = OpCounts::new();
        self.ops.push(Op::Count { idx });
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch_jump(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t) => *t = target,
            Op::JumpIfFalse { target: t, .. } => *t = target,
            other => unreachable!("patching a non-jump {other:?}"),
        }
    }

    fn block(&mut self, stmts: &'k [Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn scoped(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<(), ExecError>,
    ) -> Result<(), ExecError> {
        self.scopes.push(HashMap::new());
        let r = f(self);
        self.scopes.pop();
        r
    }

    fn stmt(&mut self, stmt: &'k Stmt) -> Result<(), ExecError> {
        match stmt {
            Stmt::Let { name, ty, value } => {
                let hint = ty.as_ref().and_then(|t| match self.kernel.resolve(t) {
                    ScalarType::Float(p) => Some(p),
                    _ => None,
                });
                let (mut v, mut t) = self.expr(value, hint)?;
                if let Some(tr) = ty {
                    (v, t) = self.coerce(v, t, self.kernel.resolve(tr));
                }
                // Copy into a dedicated register so reassignment works.
                let slot = match v {
                    Val::I(src) => {
                        let dst = self.alloc_i();
                        self.ops.push(Op::IMov { dst, src });
                        Val::I(dst)
                    }
                    Val::F(src) => {
                        let dst = self.alloc_f();
                        self.ops.push(Op::FMov { dst, src });
                        Val::F(dst)
                    }
                };
                self.top_scope().insert(name.clone(), (slot, t));
            }
            Stmt::Assign { name, value } => {
                let (slot, t) = self.lookup(name)?;
                let hint = t.precision();
                let (v, vt) = self.expr(value, hint)?;
                let target = match t {
                    CTy::Int => ScalarType::Int,
                    CTy::F(p) => ScalarType::Float(p),
                    CTy::Bool => ScalarType::Bool,
                };
                let (v, _) = self.coerce(v, vt, target);
                match (slot, v) {
                    (Val::I(dst), Val::I(src)) => self.ops.push(Op::IMov { dst, src }),
                    (Val::F(dst), Val::F(src)) => self.ops.push(Op::FMov { dst, src }),
                    _ => {
                        return Err(ExecError::KindError(format!(
                            "assignment changes the kind of `{name}`"
                        )));
                    }
                }
            }
            Stmt::Store { buf, index, value } => {
                let Some(elem) = self.kernel.buffer_elem(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                let (iv, it) = self.expr(index, None)?;
                if it != CTy::Int {
                    return Err(ExecError::KindError(format!(
                        "index into `{buf}` must be an integer"
                    )));
                }
                let idx = iv.ireg();
                let (v, vt) = self.expr(value, Some(elem))?;
                // Mirror the interpreter: a store converts unless the value
                // is already a float of the element precision.
                let src = match vt {
                    CTy::F(p) if p == elem => v.freg(),
                    CTy::F(_) => {
                        self.pending.converts += 1;
                        v.freg() // Store itself rounds to the element type
                    }
                    CTy::Int => {
                        self.pending.converts += 1;
                        let dst = self.alloc_f();
                        self.ops.push(Op::IToF {
                            prec: Precision::Double,
                            dst,
                            a: v.ireg(),
                        });
                        dst
                    }
                    CTy::Bool => {
                        return Err(ExecError::KindError(format!(
                            "cannot store a boolean into `{buf}`"
                        )));
                    }
                };
                self.pending.at_mut(elem).stores += 1;
                let Some(&b) = self.buf_index.get(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                self.ops.push(Op::Store { buf: b, idx, src });
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let (sv, st) = self.expr(start, None)?;
                let (ev, et) = self.expr(end, None)?;
                if st != CTy::Int || et != CTy::Int {
                    return Err(ExecError::KindError(format!(
                        "loop bound for `{var}` must be an integer"
                    )));
                }
                let s = sv.ireg();
                let e = ev.ireg();
                // Copy the end bound: it must stay stable even if its
                // source register is reused (it is not, but be explicit).
                let var_reg = self.alloc_i();
                self.ops.push(Op::IMov {
                    dst: var_reg,
                    src: s,
                });
                self.flush();
                let head = self.here();
                let cond = self.alloc_i();
                self.ops.push(Op::ICmp {
                    op: CmpOp::Lt,
                    dst: cond,
                    a: var_reg,
                    b: e,
                });
                let exit_jump = self.ops.len();
                self.ops.push(Op::JumpIfFalse {
                    cond,
                    target: u32::MAX,
                });
                // Per-iteration loop bookkeeping (compare + increment).
                self.pending.int_ops += 2;
                self.scoped(|c| {
                    c.top_scope()
                        .insert(var.clone(), (Val::I(var_reg), CTy::Int));
                    c.block(body)
                })?;
                self.flush();
                self.ops.push(Op::IAddImm {
                    dst: var_reg,
                    a: var_reg,
                    imm: 1,
                });
                self.ops.push(Op::Jump(head));
                let after = self.here();
                self.patch_jump(exit_jump, after);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let (cv, ct) = self.expr(cond, None)?;
                if ct != CTy::Bool {
                    return Err(ExecError::KindError(
                        "if condition must be a boolean".to_owned(),
                    ));
                }
                let c = cv.ireg();
                self.flush();
                let else_jump = self.ops.len();
                self.ops.push(Op::JumpIfFalse {
                    cond: c,
                    target: u32::MAX,
                });
                self.scoped(|cc| cc.block(then_body))?;
                self.flush();
                if else_body.is_empty() {
                    let after = self.here();
                    self.patch_jump(else_jump, after);
                } else {
                    let end_jump = self.ops.len();
                    self.ops.push(Op::Jump(u32::MAX));
                    let else_start = self.here();
                    self.patch_jump(else_jump, else_start);
                    self.scoped(|cc| cc.block(else_body))?;
                    self.flush();
                    let after = self.here();
                    self.patch_jump(end_jump, after);
                }
            }
        }
        Ok(())
    }

    /// Coerces a value to a scalar type, mirroring `Interp::coerce`
    /// (counts a conversion when the representation changes).
    fn coerce(&mut self, v: Val, t: CTy, target: ScalarType) -> (Val, CTy) {
        match (t, target) {
            (CTy::Bool, _) | (_, ScalarType::Bool) => (v, t),
            (CTy::Int, ScalarType::Int) => (v, t),
            (CTy::Int, ScalarType::Float(p)) => {
                self.pending.converts += 1;
                let dst = self.alloc_f();
                self.ops.push(Op::IToF {
                    prec: p,
                    dst,
                    a: v.ireg(),
                });
                (Val::F(dst), CTy::F(p))
            }
            (CTy::F(_), ScalarType::Int) => {
                self.pending.converts += 1;
                let dst = self.alloc_i();
                self.ops.push(Op::FToI { dst, a: v.freg() });
                (Val::I(dst), CTy::Int)
            }
            (CTy::F(q), ScalarType::Float(p)) => {
                if q == p {
                    (v, t)
                } else {
                    self.pending.converts += 1;
                    let dst = self.alloc_f();
                    self.ops.push(Op::Cvt {
                        prec: p,
                        dst,
                        a: v.freg(),
                    });
                    (Val::F(dst), CTy::F(p))
                }
            }
        }
    }

    /// Compiles an expression, mirroring `Interp::eval`'s hint threading.
    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &'k Expr, hint: Option<Precision>) -> Result<(Val, CTy), ExecError> {
        match e {
            Expr::FloatConst(v) => {
                let p = hint.unwrap_or(Precision::Double);
                let rounded = match p {
                    Precision::Half => F16::from_f64(*v).to_f64(),
                    Precision::Single => f64::from(*v as f32),
                    Precision::Double => *v,
                };
                let dst = self.alloc_f();
                self.ops.push(Op::FConst { dst, v: rounded });
                Ok((Val::F(dst), CTy::F(p)))
            }
            Expr::IntConst(v) => {
                let dst = self.alloc_i();
                self.ops.push(Op::IConst { dst, v: *v });
                Ok((Val::I(dst), CTy::Int))
            }
            Expr::GlobalId(d) => {
                if *d < 2 {
                    Ok((Val::I(*d as IReg), CTy::Int))
                } else {
                    let dst = self.alloc_i();
                    self.ops.push(Op::IConst { dst, v: 0 });
                    Ok((Val::I(dst), CTy::Int))
                }
            }
            Expr::Var(name) => self.lookup(name),
            Expr::Load { buf, index } => {
                let (iv, it) = self.expr(index, None)?;
                if it != CTy::Int {
                    return Err(ExecError::KindError(format!(
                        "index into `{buf}` must be an integer"
                    )));
                }
                let idx = iv.ireg();
                let Some(elem) = self.kernel.buffer_elem(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                self.pending.at_mut(elem).loads += 1;
                let dst = self.alloc_f();
                let Some(&b) = self.buf_index.get(buf) else {
                    return Err(ExecError::NotABuffer(buf.clone()));
                };
                self.ops.push(Op::Load { buf: b, idx, dst });
                Ok((Val::F(dst), CTy::F(elem)))
            }
            Expr::Unary { op, arg } => {
                let (v, t) = self.expr(arg, hint)?;
                match t {
                    CTy::F(p) => {
                        let slot = self.pending.at_mut(p);
                        match op {
                            UnaryFn::Neg | UnaryFn::Fabs => slot.add_sub += 1,
                            _ => slot.special += 1,
                        }
                        let dst = self.alloc_f();
                        self.ops.push(Op::FUn {
                            prec: p,
                            op: *op,
                            dst,
                            a: v.freg(),
                        });
                        Ok((Val::F(dst), CTy::F(p)))
                    }
                    CTy::Int => {
                        self.pending.int_ops += 1;
                        match op {
                            UnaryFn::Neg | UnaryFn::Fabs => {
                                let dst = self.alloc_i();
                                self.ops.push(Op::IUn {
                                    op: *op,
                                    dst,
                                    a: v.ireg(),
                                });
                                Ok((Val::I(dst), CTy::Int))
                            }
                            _ => {
                                // sqrt/exp/log of an int computes in double.
                                let wide = self.alloc_f();
                                self.ops.push(Op::IToF {
                                    prec: Precision::Double,
                                    dst: wide,
                                    a: v.ireg(),
                                });
                                let dst = self.alloc_f();
                                self.ops.push(Op::FUn {
                                    prec: Precision::Double,
                                    op: *op,
                                    dst,
                                    a: wide,
                                });
                                Ok((Val::F(dst), CTy::F(Precision::Double)))
                            }
                        }
                    }
                    CTy::Bool => Err(ExecError::KindError(
                        "boolean passed to a math function".to_owned(),
                    )),
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let (a, ta, b, tb) = self.pair(lhs, rhs, hint)?;
                if ta == CTy::Bool || tb == CTy::Bool {
                    return Err(ExecError::KindError(
                        "boolean operand in arithmetic".to_owned(),
                    ));
                }
                match (ta, tb) {
                    (CTy::Int, CTy::Int) => {
                        self.pending.int_ops += 1;
                        let dst = self.alloc_i();
                        self.ops.push(Op::IBin {
                            op: *op,
                            dst,
                            a: a.ireg(),
                            b: b.ireg(),
                        });
                        Ok((Val::I(dst), CTy::Int))
                    }
                    _ => {
                        let p = promote_cty(ta, tb);
                        let fa = self.float_operand(a, ta);
                        let fb = self.float_operand(b, tb);
                        let slot = self.pending.at_mut(p);
                        match op {
                            FloatBinOp::Add
                            | FloatBinOp::Sub
                            | FloatBinOp::Min
                            | FloatBinOp::Max => slot.add_sub += 1,
                            FloatBinOp::Mul => slot.mul += 1,
                            FloatBinOp::Div => slot.div += 1,
                        }
                        let dst = self.alloc_f();
                        self.ops.push(Op::FBin {
                            prec: p,
                            op: *op,
                            dst,
                            a: fa,
                            b: fb,
                        });
                        Ok((Val::F(dst), CTy::F(p)))
                    }
                }
            }
            Expr::Cmp { op, lhs, rhs } => {
                let (a, ta, b, tb) = self.pair(lhs, rhs, None)?;
                if ta == CTy::Bool || tb == CTy::Bool {
                    return Err(ExecError::KindError(
                        "boolean operand in comparison".to_owned(),
                    ));
                }
                match (ta, tb) {
                    (CTy::Int, CTy::Int) => {
                        self.pending.int_ops += 1;
                        let dst = self.alloc_i();
                        self.ops.push(Op::ICmp {
                            op: *op,
                            dst,
                            a: a.ireg(),
                            b: b.ireg(),
                        });
                        Ok((Val::I(dst), CTy::Bool))
                    }
                    _ => {
                        let p = promote_cty(ta, tb);
                        self.pending.at_mut(p).cmp += 1;
                        let fa = self.float_operand(a, ta);
                        let fb = self.float_operand(b, tb);
                        let dst = self.alloc_i();
                        self.ops.push(Op::FCmp {
                            op: *op,
                            dst,
                            a: fa,
                            b: fb,
                        });
                        Ok((Val::I(dst), CTy::Bool))
                    }
                }
            }
            Expr::Cast { to, arg } => {
                let (v, t) = self.expr(arg, None)?;
                let target = match to {
                    TypeRef::Concrete(t) => *t,
                    TypeRef::ElemOf(_) => self.kernel.resolve(to),
                };
                Ok(self.coerce(v, t, target))
            }
            Expr::Select { cond, then, els } => {
                let (cv, ct) = self.expr(cond, None)?;
                if ct != CTy::Bool {
                    return Err(ExecError::KindError(
                        "select condition must be a boolean".to_owned(),
                    ));
                }
                let c = cv.ireg();
                let (a, ta, b, tb) = self.pair(then, els, hint)?;
                match (ta, tb) {
                    (CTy::Int, CTy::Int) => {
                        let dst = self.alloc_i();
                        self.ops.push(Op::SelectI {
                            cond: c,
                            dst,
                            a: a.ireg(),
                            b: b.ireg(),
                        });
                        Ok((Val::I(dst), CTy::Int))
                    }
                    (CTy::F(pa), CTy::F(pb)) => {
                        let p = pa.max(pb);
                        let fa = if pa < p {
                            self.coerce(a, ta, ScalarType::Float(p)).0.freg()
                        } else {
                            a.freg()
                        };
                        let fb = if pb < p {
                            self.coerce(b, tb, ScalarType::Float(p)).0.freg()
                        } else {
                            b.freg()
                        };
                        let dst = self.alloc_f();
                        self.ops.push(Op::SelectF {
                            cond: c,
                            dst,
                            a: fa,
                            b: fb,
                        });
                        Ok((Val::F(dst), CTy::F(p)))
                    }
                    _ => Err(ExecError::KindError(
                        "select arms disagree in kind".to_owned(),
                    )),
                }
            }
        }
    }

    /// Mirror of `Interp::eval_pair`'s weak-literal resolution.
    fn pair(
        &mut self,
        lhs: &'k Expr,
        rhs: &'k Expr,
        hint: Option<Precision>,
    ) -> Result<(Val, CTy, Val, CTy), ExecError> {
        let lw = expr_is_weak(lhs);
        let rw = expr_is_weak(rhs);
        if lw && !rw {
            let (b, tb) = self.expr(rhs, hint)?;
            let (a, ta) = self.expr(lhs, tb.precision())?;
            Ok((a, ta, b, tb))
        } else if rw && !lw {
            let (a, ta) = self.expr(lhs, hint)?;
            let (b, tb) = self.expr(rhs, ta.precision())?;
            Ok((a, ta, b, tb))
        } else {
            let (a, ta) = self.expr(lhs, hint)?;
            let (b, tb) = self.expr(rhs, hint)?;
            Ok((a, ta, b, tb))
        }
    }

    /// Materializes an operand as a float register for a promoted binop
    /// (uncounted, mirroring `Scalar::binop`'s internal widening). Callers
    /// reject boolean operands before reaching here, so only ints widen.
    fn float_operand(&mut self, v: Val, t: CTy) -> FReg {
        match t {
            CTy::F(_) | CTy::Bool => v.freg(),
            CTy::Int => {
                let dst = self.alloc_f();
                self.ops.push(Op::IToF {
                    prec: Precision::Double,
                    dst,
                    a: v.ireg(),
                });
                dst
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Peephole fusion
// ---------------------------------------------------------------------------

/// The destination register an op writes, if it has exactly one.
fn dst_of(op: Op, dot: &[DotStepArgs]) -> Option<Val> {
    match op {
        Op::IConst { dst, .. }
        | Op::IMov { dst, .. }
        | Op::IBin { dst, .. }
        | Op::IAddImm { dst, .. }
        | Op::IUn { dst, .. }
        | Op::ICmp { dst, .. }
        | Op::FCmp { dst, .. }
        | Op::FToI { dst, .. }
        | Op::SelectI { dst, .. } => Some(Val::I(dst)),
        Op::FConst { dst, .. }
        | Op::FMov { dst, .. }
        | Op::FBin { dst, .. }
        | Op::FUn { dst, .. }
        | Op::Cvt { dst, .. }
        | Op::IToF { dst, .. }
        | Op::Load { dst, .. }
        | Op::SelectF { dst, .. }
        | Op::FMulAcc { dst, .. } => Some(Val::F(dst)),
        Op::DotStep { idx } => Some(Val::F(dot[idx as usize].dst)),
        _ => None,
    }
}

/// Rewrites an op's destination register (same kind).
fn with_dst(op: Op, new: Val, dot: &mut [DotStepArgs]) -> Op {
    let mut op = op;
    match (&mut op, new) {
        (Op::DotStep { idx }, Val::F(r)) => dot[*idx as usize].dst = r,
        (
            Op::IConst { dst, .. }
            | Op::IMov { dst, .. }
            | Op::IBin { dst, .. }
            | Op::IAddImm { dst, .. }
            | Op::IUn { dst, .. }
            | Op::ICmp { dst, .. }
            | Op::FCmp { dst, .. }
            | Op::FToI { dst, .. }
            | Op::SelectI { dst, .. },
            Val::I(r),
        ) => *dst = r,
        (
            Op::FConst { dst, .. }
            | Op::FMov { dst, .. }
            | Op::FBin { dst, .. }
            | Op::FUn { dst, .. }
            | Op::Cvt { dst, .. }
            | Op::IToF { dst, .. }
            | Op::Load { dst, .. }
            | Op::SelectF { dst, .. }
            | Op::FMulAcc { dst, .. },
            Val::F(r),
        ) => *dst = r,
        _ => unreachable!("destination kind mismatch in peephole"),
    }
    op
}

/// Calls `fi`/`ff` for every integer / float register an op reads.
fn for_each_read(
    op: Op,
    dot: &[DotStepArgs],
    fi: &mut impl FnMut(IReg),
    ff: &mut impl FnMut(FReg),
) {
    match op {
        Op::Jump(_) | Op::IConst { .. } | Op::FConst { .. } | Op::Count { .. } | Op::Halt => {}
        Op::JumpIfFalse { cond, .. } => fi(cond),
        Op::IMov { src, .. } => fi(src),
        Op::FMov { src, .. } => ff(src),
        Op::IBin { a, b, .. } | Op::ICmp { a, b, .. } | Op::JumpICmpFalse { a, b, .. } => {
            fi(a);
            fi(b);
        }
        Op::IAddImm { a, .. }
        | Op::IAddImmJump { a, .. }
        | Op::CountAddJump { a, .. }
        | Op::IUn { a, .. } => fi(a),
        Op::DotStep { idx } => {
            let d = dot[idx as usize];
            for r in [d.a1, d.b1, d.c1, d.a2, d.b2, d.c2] {
                fi(r);
            }
            ff(d.acc);
        }
        Op::FCmp { a, b, .. } | Op::FBin { a, b, .. } | Op::JumpFCmpFalse { a, b, .. } => {
            ff(a);
            ff(b);
        }
        Op::FUn { a, .. } | Op::Cvt { a, .. } | Op::FToI { a, .. } => ff(a),
        Op::IToF { a, .. } => fi(a),
        Op::Load { idx, .. } => fi(idx),
        Op::Store { idx, src, .. } => {
            fi(idx);
            ff(src);
        }
        Op::LoadMulAdd { a, b, c, .. } => {
            fi(a);
            fi(b);
            fi(c);
        }
        Op::FMulAcc { acc, a, b, .. } => {
            ff(acc);
            ff(a);
            ff(b);
        }
        Op::SelectF { cond, a, b, .. } => {
            fi(cond);
            ff(a);
            ff(b);
        }
        Op::SelectI { cond, a, b, .. } => {
            fi(cond);
            fi(a);
            fi(b);
        }
    }
}

/// Fuses adjacent op patterns into superinstructions.
///
/// Every fusion is semantics-preserving by construction:
///
/// * a group is only fused when no interior op is a jump target, so
///   control flow cannot enter the middle of a fused sequence;
/// * an intermediate register is only eliminated when its *global* read
///   count is exactly the one read inside the group, so no other op (in
///   this or any later loop iteration) can observe the dropped write;
/// * the fused op performs the identical arithmetic in the identical
///   order (including wrapping/rounding and bounds checks).
///
/// Count deltas are never altered: a `Count` either survives verbatim or
/// rides along inside `CountAddJump` with the same table index, so
/// [`OpCounts`] are unchanged.
///
/// Runs to a fixpoint: a fused op can enable further fusion (e.g. the
/// multiply-accumulate's result copy sinks on the next pass).
fn peephole(mut ops: Vec<Op>, dot_table: &mut Vec<DotStepArgs>) -> Vec<Op> {
    loop {
        let before = ops.len();
        ops = peephole_pass(ops, dot_table);
        if ops.len() == before {
            return ops;
        }
    }
}

#[allow(clippy::too_many_lines)]
fn peephole_pass(ops: Vec<Op>, dot_table: &mut Vec<DotStepArgs>) -> Vec<Op> {
    let n = ops.len();
    let mut is_target = vec![false; n];
    let mut ireads = HashMap::new();
    let mut freads = HashMap::new();
    for &op in &ops {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalse { target: t, .. }
            | Op::JumpICmpFalse { target: t, .. }
            | Op::JumpFCmpFalse { target: t, .. }
            | Op::IAddImmJump { target: t, .. }
            | Op::CountAddJump { target: t, .. } => is_target[t as usize] = true,
            _ => {}
        }
        for_each_read(
            op,
            dot_table,
            &mut |r| *ireads.entry(r).or_insert(0u32) += 1,
            &mut |r| *freads.entry(r).or_insert(0u32) += 1,
        );
    }
    let iread = |r: IReg| ireads.get(&r).copied().unwrap_or(0);
    let fread = |r: FReg| freads.get(&r).copied().unwrap_or(0);
    let interior_free = |lo: usize, hi: usize| (lo..=hi).all(|k| !is_target[k]);

    let mut out = Vec::with_capacity(n);
    let mut remap = vec![0u32; n + 1];
    let mut i = 0usize;
    while i < n {
        let new_pc = out.len() as u32;
        let fused: Option<(Op, usize)> = match (ops[i], ops.get(i + 1), ops.get(i + 2)) {
            // Row-major indexed load: t1 = a*b; t2 = t1+c; dst = buf[t2].
            (
                Op::IBin {
                    op: FloatBinOp::Mul,
                    dst: t1,
                    a,
                    b,
                },
                Some(&Op::IBin {
                    op: FloatBinOp::Add,
                    dst: t2,
                    a: aa,
                    b: ab,
                }),
                Some(&Op::Load { buf, idx, dst }),
            ) if idx == t2
                && (aa == t1 || ab == t1)
                && iread(t1) == 1
                && iread(t2) == 1
                && interior_free(i + 1, i + 2) =>
            {
                // Wrapping add commutes, so either operand slot works.
                let c = if aa == t1 { ab } else { aa };
                Some((Op::LoadMulAdd { buf, a, b, c, dst }, 3))
            }
            // Multiply feeding only an accumulate (`acc + a*b`): fuse
            // keeping both roundings and the exact operand order.
            (
                Op::FBin {
                    prec: pm,
                    op: FloatBinOp::Mul,
                    dst: t,
                    a,
                    b,
                },
                Some(&Op::FBin {
                    prec: pa,
                    op: FloatBinOp::Add,
                    dst,
                    a: acc,
                    b: prod,
                }),
                _,
            ) if prod == t && fread(t) == 1 && interior_free(i + 1, i + 1) => Some((
                Op::FMulAcc {
                    pm,
                    pa,
                    dst,
                    acc,
                    a,
                    b,
                },
                2,
            )),
            // Compare feeding only a branch.
            (Op::ICmp { op, dst, a, b }, Some(&Op::JumpIfFalse { cond, target }), _)
                if cond == dst && iread(dst) == 1 && interior_free(i + 1, i + 1) =>
            {
                Some((Op::JumpICmpFalse { op, a, b, target }, 2))
            }
            (Op::FCmp { op, dst, a, b }, Some(&Op::JumpIfFalse { cond, target }), _)
                if cond == dst && iread(dst) == 1 && interior_free(i + 1, i + 1) =>
            {
                Some((Op::JumpFCmpFalse { op, a, b, target }, 2))
            }
            // Loop back-edge: increment, then unconditional jump.
            (Op::IAddImm { dst, a, imm }, Some(&Op::Jump(target)), _)
                if interior_free(i + 1, i + 1) =>
            {
                Some((
                    Op::IAddImmJump {
                        dst,
                        a,
                        imm,
                        target,
                    },
                    2,
                ))
            }
            // Per-iteration counter flush folded into the back-edge.
            (
                Op::Count { idx },
                Some(&Op::IAddImmJump {
                    dst,
                    a,
                    imm,
                    target,
                }),
                _,
            ) if interior_free(i + 1, i + 1) && i32::try_from(imm).is_ok() => Some((
                Op::CountAddJump {
                    idx,
                    dst,
                    a,
                    imm: imm as i32,
                    target,
                },
                2,
            )),
            // A dot-product step: two indexed loads whose only consumer
            // is a multiply-accumulate, in operand order.
            (
                Op::LoadMulAdd {
                    buf: buf1,
                    a: a1,
                    b: b1,
                    c: c1,
                    dst: t1,
                },
                Some(&Op::LoadMulAdd {
                    buf: buf2,
                    a: a2,
                    b: b2,
                    c: c2,
                    dst: t2,
                }),
                Some(&Op::FMulAcc {
                    pm,
                    pa,
                    dst,
                    acc,
                    a: ma,
                    b: mb,
                }),
            ) if ma == t1
                && mb == t2
                && t1 != t2
                && fread(t1) == 1
                && fread(t2) == 1
                && interior_free(i + 1, i + 2) =>
            {
                let idx = dot_table.len() as u32;
                dot_table.push(DotStepArgs {
                    pm,
                    pa,
                    dst,
                    acc,
                    buf1,
                    a1,
                    b1,
                    c1,
                    buf2,
                    a2,
                    b2,
                    c2,
                });
                Some((Op::DotStep { idx }, 3))
            }
            // Copy sink: a producer whose only consumer is a register move
            // writes the move's destination directly.
            (producer, Some(&Op::IMov { dst, src }), _)
                if dst_of(producer, dot_table) == Some(Val::I(src))
                    && iread(src) == 1
                    && interior_free(i + 1, i + 1) =>
            {
                Some((with_dst(producer, Val::I(dst), dot_table), 2))
            }
            (producer, Some(&Op::FMov { dst, src }), _)
                if dst_of(producer, dot_table) == Some(Val::F(src))
                    && fread(src) == 1
                    && interior_free(i + 1, i + 1) =>
            {
                Some((with_dst(producer, Val::F(dst), dot_table), 2))
            }
            _ => None,
        };
        let (op, width) = fused.unwrap_or((ops[i], 1));
        for k in 0..width {
            remap[i + k] = new_pc;
        }
        out.push(op);
        i += width;
    }
    remap[n] = out.len() as u32;

    for op in &mut out {
        match op {
            Op::Jump(t)
            | Op::JumpIfFalse { target: t, .. }
            | Op::JumpICmpFalse { target: t, .. }
            | Op::JumpFCmpFalse { target: t, .. }
            | Op::IAddImmJump { target: t, .. }
            | Op::CountAddJump { target: t, .. } => *t = remap[*t as usize],
            _ => {}
        }
    }
    out
}

fn expr_is_weak(e: &Expr) -> bool {
    match e {
        Expr::FloatConst(_) => true,
        Expr::Unary { arg, .. } => expr_is_weak(arg),
        Expr::Bin { lhs, rhs, .. } => expr_is_weak(lhs) && expr_is_weak(rhs),
        Expr::Select { then, els, .. } => expr_is_weak(then) && expr_is_weak(els),
        _ => false,
    }
}

fn promote_cty(a: CTy, b: CTy) -> Precision {
    match (a.precision(), b.precision()) {
        (Some(x), Some(y)) => x.max(y),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => Precision::Double,
    }
}

/// Rounds an exact f64 representation to a precision.
#[inline]
fn round_to(p: Precision, v: f64) -> f64 {
    match p {
        Precision::Half => F16::from_f64(v).to_f64(),
        Precision::Single => f64::from(v as f32),
        Precision::Double => v,
    }
}

#[inline]
fn apply_fbin(p: Precision, op: FloatBinOp, a: f64, b: f64) -> f64 {
    match p {
        Precision::Double => apply_f64(op, a, b),
        Precision::Single => {
            let (x, y) = (a as f32, b as f32);
            f64::from(match op {
                FloatBinOp::Add => x + y,
                FloatBinOp::Sub => x - y,
                FloatBinOp::Mul => x * y,
                FloatBinOp::Div => x / y,
                FloatBinOp::Min => x.min(y),
                FloatBinOp::Max => x.max(y),
            })
        }
        Precision::Half => {
            let (x, y) = (F16::from_f64(a), F16::from_f64(b));
            (match op {
                FloatBinOp::Add => x + y,
                FloatBinOp::Sub => x - y,
                FloatBinOp::Mul => x * y,
                FloatBinOp::Div => x / y,
                FloatBinOp::Min => x.min(y),
                FloatBinOp::Max => x.max(y),
            })
            .to_f64()
        }
    }
}

#[inline]
fn apply_f64(op: FloatBinOp, a: f64, b: f64) -> f64 {
    match op {
        FloatBinOp::Add => a + b,
        FloatBinOp::Sub => a - b,
        FloatBinOp::Mul => a * b,
        FloatBinOp::Div => a / b,
        FloatBinOp::Min => a.min(b),
        FloatBinOp::Max => a.max(b),
    }
}

#[inline]
fn apply_fun(p: Precision, op: UnaryFn, a: f64) -> f64 {
    use crate::value::Scalar;
    // Route through the reference implementation to guarantee identical
    // semantics (precision-faithful special functions).
    let s = match p {
        Precision::Half => Scalar::F16(F16::from_f64(a)),
        Precision::Single => Scalar::F32(a as f32),
        Precision::Double => Scalar::F64(a),
    };
    op.apply(s).as_f64()
}

#[inline]
fn apply_icmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

#[inline]
fn apply_fcmp(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

#[inline]
fn apply_ibin(op: FloatBinOp, a: i64, b: i64) -> i64 {
    match op {
        FloatBinOp::Add => a.wrapping_add(b),
        FloatBinOp::Sub => a.wrapping_sub(b),
        FloatBinOp::Mul => a.wrapping_mul(b),
        FloatBinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        FloatBinOp::Min => a.min(b),
        FloatBinOp::Max => a.max(b),
    }
}

impl CompiledKernel {
    /// The kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bytecode instructions (for diagnostics).
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.ops.len()
    }

    /// The compile-time disjoint-write verdict used to gate
    /// [`CompiledKernel::run_parallel`].
    #[must_use]
    pub fn parallel_safety(&self) -> &ParallelSafety {
        &self.safety
    }

    /// Executes the compiled kernel over the launch NDRange. Semantics and
    /// error behaviour match [`crate::interp::run_kernel`] exactly.
    ///
    /// Allocates fresh execution state; launch-heavy callers should hold a
    /// [`VmScratch`] and use [`CompiledKernel::run_with_scratch`] instead.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(&self, buffers: &mut BufferMap, launch: &Launch) -> Result<OpCounts, ExecError> {
        self.run_with_scratch(buffers, launch, &mut VmScratch::new())
    }

    /// Like [`CompiledKernel::run`], but reuses `scratch`'s register and
    /// buffer-binding storage across launches instead of allocating per
    /// launch. Results are identical; any `CompiledKernel` may share one
    /// scratch (it is resized per run).
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_with_scratch(
        &self,
        buffers: &mut BufferMap,
        launch: &Launch,
        scratch: &mut VmScratch,
    ) -> Result<OpCounts, ExecError> {
        self.bind(buffers, launch, scratch)?;
        let result = self.exec_bound_seq(scratch, launch);
        restore(buffers, &mut scratch.bufs);
        result
    }

    /// Like [`CompiledKernel::run_with_scratch`], but splits the NDRange
    /// into up to `threads` contiguous chunks along the partition axis and
    /// executes them concurrently with [`std::thread::scope`] — when the
    /// compile-time disjoint-write analysis *and* the per-launch
    /// resolution prove every chunk writes a private index interval of
    /// every stored buffer. Otherwise (or with `threads <= 1`) it falls
    /// back to sequential execution.
    ///
    /// Results are bit-identical to sequential execution in every case:
    /// outputs because chunk write sets are disjoint and each chunk runs
    /// its items in the sequential order; [`OpCounts`] because per-chunk
    /// tallies are exact integer sums merged in fixed chunk order; errors
    /// because any chunk failure triggers a sequential re-run from a
    /// pre-execution snapshot of the stored buffers, which reproduces the
    /// sequential error and partial-write state exactly.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run_parallel(
        &self,
        buffers: &mut BufferMap,
        launch: &Launch,
        scratch: &mut VmScratch,
        threads: usize,
    ) -> Result<OpCounts, ExecError> {
        /// Below this NDRange size, thread-spawn latency dominates any
        /// possible win.
        const MIN_PARALLEL_ITEMS: usize = 64;

        let (nx, ny) = (launch.global[0], launch.global[1]);
        let plan = if threads <= 1 || nx * ny < MIN_PARALLEL_ITEMS {
            None
        } else {
            match &self.safety {
                ParallelSafety::Disjoint(summary) => summary.resolve(launch),
                ParallelSafety::Unproven(_) => None,
            }
        };
        let Some(plan) = plan else {
            return self.run_with_scratch(buffers, launch, scratch);
        };
        let axis_len = if plan.along_rows() { ny } else { nx };
        let chunks = threads.min(axis_len);
        if chunks < 2 {
            return self.run_with_scratch(buffers, launch, scratch);
        }

        self.bind(buffers, launch, scratch)?;
        let result = self.exec_bound_parallel(scratch, launch, &plan, chunks);
        restore(buffers, &mut scratch.bufs);
        result
    }

    /// Binds buffers and scalar arguments into `scratch`, leaving the
    /// caller's map restored on any error. Buffers move map entry →
    /// scratch (`remove_entry` keeps the owned key, so the hot path never
    /// clones a name); scalar arguments resolve through the compile-time
    /// slot table in one forward pass (later duplicates overwrite earlier
    /// ones, preserving the historical last-wins semantics).
    fn bind(
        &self,
        buffers: &mut BufferMap,
        launch: &Launch,
        scratch: &mut VmScratch,
    ) -> Result<(), ExecError> {
        let VmScratch {
            iregs,
            fregs,
            bufs,
            args,
            ..
        } = scratch;
        iregs.clear();
        iregs.resize(self.n_iregs as usize, 0);
        fregs.clear();
        fregs.resize(self.n_fregs as usize, 0.0);
        debug_assert!(bufs.is_empty(), "scratch buffers left bound");

        args.clear();
        args.resize(self.n_arg_slots as usize, None);
        for (name, v) in &launch.args {
            if let Some(&slot) = self.arg_slots.get(name.as_str()) {
                args[slot as usize] = Some(*v);
            }
        }

        for p in &self.params {
            match p {
                ParamBind::Buffer { name, elem } => match buffers.remove_entry(name.as_str()) {
                    None => {
                        restore(buffers, bufs);
                        return Err(ExecError::MissingBuffer(name.clone()));
                    }
                    Some((key, v)) if v.precision() != *elem => {
                        let bound = v.precision();
                        buffers.insert(key, v);
                        restore(buffers, bufs);
                        return Err(ExecError::BufferPrecisionMismatch {
                            name: name.clone(),
                            declared: *elem,
                            bound,
                        });
                    }
                    Some(entry) => bufs.push(entry),
                },
                ParamBind::ScalarInt { name, reg, slot } => match args[*slot as usize] {
                    Some(ArgValue::Int(v)) => iregs[*reg as usize] = v,
                    Some(ArgValue::Float(_)) => {
                        restore(buffers, bufs);
                        return Err(ExecError::ArgKindMismatch(name.clone()));
                    }
                    None => {
                        restore(buffers, bufs);
                        return Err(ExecError::MissingArg(name.clone()));
                    }
                },
                ParamBind::ScalarFloat {
                    name,
                    prec,
                    reg,
                    slot,
                } => match args[*slot as usize] {
                    Some(ArgValue::Float(v)) => fregs[*reg as usize] = round_to(*prec, v),
                    Some(ArgValue::Int(v)) => fregs[*reg as usize] = round_to(*prec, v as f64),
                    None => {
                        restore(buffers, bufs);
                        return Err(ExecError::MissingArg(name.clone()));
                    }
                },
            }
        }
        Ok(())
    }

    /// Sequential execution over the full NDRange of an already-bound
    /// scratch.
    fn exec_bound_seq(
        &self,
        scratch: &mut VmScratch,
        launch: &Launch,
    ) -> Result<OpCounts, ExecError> {
        let VmScratch {
            iregs,
            fregs,
            bufs,
            hits,
            ..
        } = scratch;
        hits.clear();
        hits.resize(self.counts_table.len(), 0);
        let mut mem = FullMem(bufs);
        self.exec_range(
            iregs,
            fregs,
            &mut mem,
            hits,
            0..launch.global[0],
            0..launch.global[1],
        )?;
        Ok(self.counts_from(hits))
    }

    /// Chunked parallel execution of an already-bound scratch under a
    /// resolved disjointness plan. Falls back to sequential execution
    /// in-place whenever a launch-time precondition (bounds, interval
    /// monotonicity, overflow) fails, and re-runs sequentially from a
    /// snapshot when any chunk reports an error.
    #[allow(clippy::too_many_lines)]
    fn exec_bound_parallel(
        &self,
        scratch: &mut VmScratch,
        launch: &Launch,
        plan: &ChunkPlan,
        chunks: usize,
    ) -> Result<OpCounts, ExecError> {
        let (nx, ny) = (launch.global[0], launch.global[1]);
        let axis_len = if plan.along_rows() { ny } else { nx };

        // Balanced contiguous chunk bounds along the partition axis.
        let base = axis_len / chunks;
        let rem = axis_len % chunks;
        let mut bounds = Vec::with_capacity(chunks);
        let mut at = 0usize;
        for k in 0..chunks {
            let w = base + usize::from(k < rem);
            bounds.push((at, at + w));
            at += w;
        }

        let VmScratch {
            iregs,
            fregs,
            bufs,
            hits,
            workers,
            ..
        } = scratch;

        // Map each stored buffer to its binding slot and pre-check that
        // the *whole* launch stays in bounds: the affine store/load sites
        // then provably never fault, so chunk execution cannot report an
        // out-of-bounds error for a carved buffer.
        let mut carved: Vec<(usize, Vec<(usize, usize)>)> =
            Vec::with_capacity(plan.buffers().len());
        for rb in plan.buffers() {
            let Some(slot) = bufs.iter().position(|(n, _)| n == rb.name()) else {
                return self.exec_bound_seq_split(iregs, fregs, bufs, hits, launch);
            };
            let len = bufs[slot].1.len();
            let Some((full_lo, full_hi)) = rb.interval(0, axis_len) else {
                return self.exec_bound_seq_split(iregs, fregs, bufs, hits, launch);
            };
            if full_lo < 0 || usize::try_from(full_hi).map_or(true, |h| h >= len) {
                return self.exec_bound_seq_split(iregs, fregs, bufs, hits, launch);
            }
            // Per-chunk inclusive intervals → half-open usize ranges.
            let mut ivs = Vec::with_capacity(chunks);
            for &(u0, u1) in &bounds {
                let Some((lo, hi)) = rb.interval(u0, u1) else {
                    return self.exec_bound_seq_split(iregs, fregs, bufs, hits, launch);
                };
                debug_assert!(lo >= full_lo && hi <= full_hi);
                ivs.push((lo as usize, hi as usize + 1));
            }
            // Defense in depth: the intervals must be monotone and
            // disjoint in carve order (ascending when the axis
            // coefficient is positive, descending otherwise).
            let ascending = ivs.windows(2).all(|w| w[0].1 <= w[1].0);
            let descending = ivs.windows(2).all(|w| w[1].1 <= w[0].0);
            if !(ascending || descending) {
                return self.exec_bound_seq_split(iregs, fregs, bufs, hits, launch);
            }
            carved.push((slot, ivs));
        }

        // Snapshot stored buffers: the error path re-runs sequentially
        // from this pristine state to reproduce the sequential error and
        // partial-write behaviour exactly.
        let snapshots: Vec<(usize, FloatVec)> = carved
            .iter()
            .map(|&(slot, _)| (slot, bufs[slot].1.clone()))
            .collect();

        // Seed one worker per chunk from the bound prototype registers.
        if workers.len() < chunks {
            workers.resize_with(chunks, Worker::default);
        }
        for w in workers.iter_mut().take(chunks) {
            w.iregs.clone_from(iregs);
            w.fregs.clone_from(fregs);
            w.hits.clear();
            w.hits.resize(self.counts_table.len(), 0);
        }

        // Carve the stored buffers into per-chunk segments and run.
        let n_bound = bufs.len();
        let errored = {
            // First borrow every binding once, splitting carved buffers
            // into per-chunk mutable segments and sharing the rest.
            let mut prepared: Vec<Prepared<'_>> = Vec::with_capacity(n_bound);
            {
                let mut carve_for: HashMap<usize, &Vec<(usize, usize)>> = HashMap::new();
                for (slot, ivs) in &carved {
                    carve_for.insert(*slot, ivs);
                }
                for (slot, entry) in bufs.iter_mut().enumerate() {
                    match carve_for.get(&slot) {
                        None => prepared.push(Prepared::Shared(&*entry)),
                        Some(ivs) => {
                            let (name, data) = entry;
                            let full_len = data.len();
                            let Some(segs) = carve_segments(data, ivs) else {
                                // Unreachable given the monotonicity check;
                                // degrade to a chunk-isolation error that the
                                // error path turns into a sequential re-run.
                                prepared.clear();
                                break;
                            };
                            prepared.push(Prepared::Carved {
                                name,
                                full_len,
                                segs,
                            });
                        }
                    }
                }
            }

            if prepared.len() == n_bound {
                // Assemble one ChunkMem per chunk.
                let mut mems: Vec<ChunkMem<'_>> = (0..chunks)
                    .map(|_| ChunkMem {
                        slots: Vec::with_capacity(n_bound),
                    })
                    .collect();
                for p in &mut prepared {
                    match p {
                        Prepared::Shared(entry) => {
                            for m in &mut mems {
                                m.slots.push(ChunkSlot::Shared(entry));
                            }
                        }
                        Prepared::Carved {
                            name,
                            full_len,
                            segs,
                        } => {
                            for (k, m) in mems.iter_mut().enumerate() {
                                let (lo, seg) = segs[k].take().expect("one segment per chunk");
                                m.slots.push(ChunkSlot::Carved {
                                    name,
                                    lo: lo as i64,
                                    full_len: *full_len,
                                    seg,
                                });
                            }
                        }
                    }
                }
                let results: Vec<Result<(), ExecError>> = std::thread::scope(|s| {
                    let mut handles = Vec::with_capacity(chunks);
                    for ((k, mem), worker) in mems.into_iter().enumerate().zip(workers.iter_mut()) {
                        let (u0, u1) = bounds[k];
                        let (gx_range, gy_range) = if plan.along_rows() {
                            (0..nx, u0..u1)
                        } else {
                            (u0..u1, 0..1)
                        };
                        handles.push(s.spawn(move || {
                            let mut mem = mem;
                            self.exec_range(
                                &mut worker.iregs,
                                &mut worker.fregs,
                                &mut mem,
                                &mut worker.hits,
                                gx_range,
                                gy_range,
                            )
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(r) => r,
                            Err(_) => Err(ExecError::KindError(
                                "parallel chunk worker panicked".to_owned(),
                            )),
                        })
                        .collect()
                });
                results.iter().any(Result::is_err)
            } else {
                true
            }
        };

        if errored {
            // Restore the pre-execution contents of every stored buffer
            // and replay sequentially: the replay *is* the sequential
            // semantics, including the first-faulting-item error and its
            // partial writes.
            for (slot, snap) in snapshots {
                bufs[slot].1 = snap;
            }
            return self.exec_bound_seq_split(iregs, fregs, bufs, hits, launch);
        }

        // Merge per-chunk tallies in fixed chunk order. Each tally is an
        // exact integer hit count, so the merged counts are bit-identical
        // to the sequential tally.
        hits.clear();
        hits.resize(self.counts_table.len(), 0);
        for w in workers.iter().take(chunks) {
            for (t, h) in hits.iter_mut().zip(&w.hits) {
                *t += h;
            }
        }
        Ok(self.counts_from(hits))
    }

    /// [`CompiledKernel::exec_bound_seq`] over already-split scratch
    /// fields (the parallel path holds them disjointly).
    fn exec_bound_seq_split(
        &self,
        iregs: &mut [i64],
        fregs: &mut [f64],
        bufs: &mut [(String, FloatVec)],
        hits: &mut Vec<u64>,
        launch: &Launch,
    ) -> Result<OpCounts, ExecError> {
        hits.clear();
        hits.resize(self.counts_table.len(), 0);
        let mut mem = FullMem(bufs);
        self.exec_range(
            iregs,
            fregs,
            &mut mem,
            hits,
            0..launch.global[0],
            0..launch.global[1],
        )?;
        Ok(self.counts_from(hits))
    }

    /// Scales the per-site hit tallies by their count-table deltas.
    fn counts_from(&self, hits: &[u64]) -> OpCounts {
        let mut counts = OpCounts::new();
        for (i, &h) in hits.iter().enumerate() {
            if h != 0 {
                counts += self.counts_table[i].scaled(h);
            }
        }
        counts
    }

    /// The dispatch loop over a rectangular sub-range of the NDRange,
    /// generic over the buffer-access strategy (whole buffers for
    /// sequential runs, carved segments + shared read views for parallel
    /// chunks). Monomorphized per strategy, so the sequential hot path is
    /// unchanged.
    ///
    /// Count sites fire millions of times in hot loops; adding the full
    /// `OpCounts` struct each time costs ~20 u64 additions per hit. Tally
    /// hits per table index instead and scale once at the end — repeated
    /// addition of a constant delta is exactly multiplication.
    #[allow(clippy::too_many_lines)]
    fn exec_range<M: BufMem>(
        &self,
        iregs: &mut [i64],
        fregs: &mut [f64],
        mem: &mut M,
        hits: &mut [u64],
        gx_range: Range<usize>,
        gy_range: Range<usize>,
    ) -> Result<(), ExecError> {
        let ops = &self.ops[..];
        for gy in gy_range {
            for gx in gx_range.clone() {
                iregs[0] = gx as i64;
                iregs[1] = gy as i64;
                let mut pc = 0usize;
                loop {
                    match ops[pc] {
                        Op::Halt => break,
                        Op::Jump(t) => {
                            pc = t as usize;
                            continue;
                        }
                        Op::JumpIfFalse { cond, target } => {
                            if iregs[cond as usize] == 0 {
                                pc = target as usize;
                                continue;
                            }
                        }
                        Op::IConst { dst, v } => iregs[dst as usize] = v,
                        Op::FConst { dst, v } => fregs[dst as usize] = v,
                        Op::IMov { dst, src } => iregs[dst as usize] = iregs[src as usize],
                        Op::FMov { dst, src } => fregs[dst as usize] = fregs[src as usize],
                        Op::IBin { op, dst, a, b } => {
                            iregs[dst as usize] =
                                apply_ibin(op, iregs[a as usize], iregs[b as usize]);
                        }
                        Op::IAddImm { dst, a, imm } => {
                            iregs[dst as usize] = iregs[a as usize].wrapping_add(imm);
                        }
                        Op::IUn { op, dst, a } => {
                            let v = iregs[a as usize];
                            iregs[dst as usize] = match op {
                                UnaryFn::Neg => v.wrapping_neg(),
                                UnaryFn::Fabs => v.wrapping_abs(),
                                _ => {
                                    return Err(ExecError::KindError(
                                        "integer unary op must be neg or abs".to_owned(),
                                    ));
                                }
                            };
                        }
                        Op::ICmp { op, dst, a, b } => {
                            iregs[dst as usize] =
                                i64::from(apply_icmp(op, iregs[a as usize], iregs[b as usize]));
                        }
                        Op::FCmp { op, dst, a, b } => {
                            iregs[dst as usize] =
                                i64::from(apply_fcmp(op, fregs[a as usize], fregs[b as usize]));
                        }
                        Op::FBin {
                            prec,
                            op,
                            dst,
                            a,
                            b,
                        } => {
                            fregs[dst as usize] =
                                apply_fbin(prec, op, fregs[a as usize], fregs[b as usize]);
                        }
                        Op::FUn { prec, op, dst, a } => {
                            fregs[dst as usize] = apply_fun(prec, op, fregs[a as usize]);
                        }
                        Op::Cvt { prec, dst, a } => {
                            fregs[dst as usize] = round_to(prec, fregs[a as usize]);
                        }
                        Op::IToF { prec, dst, a } => {
                            fregs[dst as usize] = round_to(prec, iregs[a as usize] as f64);
                        }
                        Op::FToI { dst, a } => {
                            iregs[dst as usize] = fregs[a as usize].trunc() as i64;
                        }
                        Op::Load { buf, idx, dst } => {
                            fregs[dst as usize] = mem.load(buf, iregs[idx as usize])?;
                        }
                        Op::Store { buf, idx, src } => {
                            mem.store(buf, iregs[idx as usize], fregs[src as usize])?;
                        }
                        Op::SelectF { cond, dst, a, b } => {
                            fregs[dst as usize] = if iregs[cond as usize] != 0 {
                                fregs[a as usize]
                            } else {
                                fregs[b as usize]
                            };
                        }
                        Op::SelectI { cond, dst, a, b } => {
                            iregs[dst as usize] = if iregs[cond as usize] != 0 {
                                iregs[a as usize]
                            } else {
                                iregs[b as usize]
                            };
                        }
                        Op::Count { idx } => {
                            hits[idx as usize] += 1;
                        }
                        Op::JumpICmpFalse { op, a, b, target } => {
                            if !apply_icmp(op, iregs[a as usize], iregs[b as usize]) {
                                pc = target as usize;
                                continue;
                            }
                        }
                        Op::JumpFCmpFalse { op, a, b, target } => {
                            if !apply_fcmp(op, fregs[a as usize], fregs[b as usize]) {
                                pc = target as usize;
                                continue;
                            }
                        }
                        Op::IAddImmJump {
                            dst,
                            a,
                            imm,
                            target,
                        } => {
                            iregs[dst as usize] = iregs[a as usize].wrapping_add(imm);
                            pc = target as usize;
                            continue;
                        }
                        Op::LoadMulAdd { buf, a, b, c, dst } => {
                            let i = iregs[a as usize]
                                .wrapping_mul(iregs[b as usize])
                                .wrapping_add(iregs[c as usize]);
                            fregs[dst as usize] = mem.load(buf, i)?;
                        }
                        Op::FMulAcc {
                            pm,
                            pa,
                            dst,
                            acc,
                            a,
                            b,
                        } => {
                            let m = apply_fbin(
                                pm,
                                FloatBinOp::Mul,
                                fregs[a as usize],
                                fregs[b as usize],
                            );
                            fregs[dst as usize] =
                                apply_fbin(pa, FloatBinOp::Add, fregs[acc as usize], m);
                        }
                        Op::DotStep { idx } => {
                            let d = &self.dot_table[idx as usize];
                            let i1 = iregs[d.a1 as usize]
                                .wrapping_mul(iregs[d.b1 as usize])
                                .wrapping_add(iregs[d.c1 as usize]);
                            let v1 = mem.load(d.buf1, i1)?;
                            let i2 = iregs[d.a2 as usize]
                                .wrapping_mul(iregs[d.b2 as usize])
                                .wrapping_add(iregs[d.c2 as usize]);
                            let v2 = mem.load(d.buf2, i2)?;
                            let m = apply_fbin(d.pm, FloatBinOp::Mul, v1, v2);
                            fregs[d.dst as usize] =
                                apply_fbin(d.pa, FloatBinOp::Add, fregs[d.acc as usize], m);
                        }
                        Op::CountAddJump {
                            idx,
                            dst,
                            a,
                            imm,
                            target,
                        } => {
                            hits[idx as usize] += 1;
                            iregs[dst as usize] = iregs[a as usize].wrapping_add(i64::from(imm));
                            pc = target as usize;
                            continue;
                        }
                    }
                    pc += 1;
                }
            }
        }
        Ok(())
    }
}

/// Buffer-access strategy for [`CompiledKernel::exec_range`]. Sequential
/// runs see the whole binding list; parallel chunks see carved mutable
/// segments of stored buffers plus shared views of read-only ones.
trait BufMem {
    /// Reads element `i` of buffer slot `buf`, widened to f64.
    fn load(&self, buf: u16, i: i64) -> Result<f64, ExecError>;
    /// Writes `v` to element `i` of buffer slot `buf`, rounding to the
    /// buffer's precision exactly like [`FloatVec::set`].
    fn store(&mut self, buf: u16, i: i64, v: f64) -> Result<(), ExecError>;
}

/// Whole-buffer access: the sequential execution strategy.
struct FullMem<'a>(&'a mut [(String, FloatVec)]);

impl BufMem for FullMem<'_> {
    #[inline(always)]
    fn load(&self, buf: u16, i: i64) -> Result<f64, ExecError> {
        let (name, data) = &self.0[buf as usize];
        let len = data.len();
        if i < 0 || i as usize >= len {
            return Err(ExecError::OutOfBounds {
                buf: name.clone(),
                index: i,
                len,
            });
        }
        Ok(match data {
            FloatVec::F16(v) => v[i as usize].to_f64(),
            FloatVec::F32(v) => f64::from(v[i as usize]),
            FloatVec::F64(v) => v[i as usize],
        })
    }

    #[inline(always)]
    fn store(&mut self, buf: u16, i: i64, v: f64) -> Result<(), ExecError> {
        let (name, data) = &mut self.0[buf as usize];
        let len = data.len();
        if i < 0 || i as usize >= len {
            return Err(ExecError::OutOfBounds {
                buf: name.clone(),
                index: i,
                len,
            });
        }
        match data {
            FloatVec::F16(vec) => vec[i as usize] = F16::from_f64(v),
            FloatVec::F32(vec) => vec[i as usize] = v as f32,
            FloatVec::F64(vec) => vec[i as usize] = v,
        }
        Ok(())
    }
}

/// A typed mutable slice of one precision, carved out of a stored buffer.
enum Seg<'a> {
    /// Half-precision segment.
    H(&'a mut [F16]),
    /// Single-precision segment.
    S(&'a mut [f32]),
    /// Double-precision segment.
    D(&'a mut [f64]),
}

/// One buffer slot as seen by a parallel chunk.
enum ChunkSlot<'a> {
    /// A read-only view of the full buffer (never stored to by the
    /// kernel — the disjointness analysis guarantees it).
    Shared(&'a (String, FloatVec)),
    /// A private mutable window `[lo, lo + seg.len())` of a stored
    /// buffer. `full_len` is the whole buffer's length so out-of-bounds
    /// errors carry the same fields as sequential execution.
    Carved {
        name: &'a str,
        lo: i64,
        full_len: usize,
        seg: Seg<'a>,
    },
}

/// Per-chunk buffer access: shared read views + carved write windows.
struct ChunkMem<'a> {
    slots: Vec<ChunkSlot<'a>>,
}

impl BufMem for ChunkMem<'_> {
    #[inline(always)]
    fn load(&self, buf: u16, i: i64) -> Result<f64, ExecError> {
        match &self.slots[buf as usize] {
            ChunkSlot::Shared((name, data)) => {
                let len = data.len();
                if i < 0 || i as usize >= len {
                    return Err(ExecError::OutOfBounds {
                        buf: name.clone(),
                        index: i,
                        len,
                    });
                }
                Ok(match data {
                    FloatVec::F16(v) => v[i as usize].to_f64(),
                    FloatVec::F32(v) => f64::from(v[i as usize]),
                    FloatVec::F64(v) => v[i as usize],
                })
            }
            ChunkSlot::Carved {
                name,
                lo,
                full_len,
                seg,
            } => {
                if i < 0 || i as usize >= *full_len {
                    return Err(ExecError::OutOfBounds {
                        buf: (*name).to_owned(),
                        index: i,
                        len: *full_len,
                    });
                }
                let k = i - lo;
                let in_seg = |n: usize| k >= 0 && (k as usize) < n;
                match seg {
                    Seg::H(v) if in_seg(v.len()) => Ok(v[k as usize].to_f64()),
                    Seg::S(v) if in_seg(v.len()) => Ok(f64::from(v[k as usize])),
                    Seg::D(v) if in_seg(v.len()) => Ok(v[k as usize]),
                    _ => Err(ExecError::KindError(
                        "parallel chunk accessed a stored buffer outside its proven interval"
                            .to_owned(),
                    )),
                }
            }
        }
    }

    #[inline(always)]
    fn store(&mut self, buf: u16, i: i64, v: f64) -> Result<(), ExecError> {
        match &mut self.slots[buf as usize] {
            ChunkSlot::Shared((name, data)) => {
                // The analysis only shares buffers the kernel never
                // stores to; reaching here means the verdict was wrong.
                let _ = (name, data);
                Err(ExecError::KindError(
                    "parallel chunk stored to a shared read-only buffer".to_owned(),
                ))
            }
            ChunkSlot::Carved {
                name,
                lo,
                full_len,
                seg,
            } => {
                if i < 0 || i as usize >= *full_len {
                    return Err(ExecError::OutOfBounds {
                        buf: (*name).to_owned(),
                        index: i,
                        len: *full_len,
                    });
                }
                let k = i - *lo;
                let in_seg = |n: usize| k >= 0 && (k as usize) < n;
                match seg {
                    Seg::H(vec) if in_seg(vec.len()) => {
                        vec[k as usize] = F16::from_f64(v);
                        Ok(())
                    }
                    Seg::S(vec) if in_seg(vec.len()) => {
                        vec[k as usize] = v as f32;
                        Ok(())
                    }
                    Seg::D(vec) if in_seg(vec.len()) => {
                        vec[k as usize] = v;
                        Ok(())
                    }
                    _ => Err(ExecError::KindError(
                        "parallel chunk stored outside its proven interval".to_owned(),
                    )),
                }
            }
        }
    }
}

/// A stored buffer mid-carve: its name, full length, and one optional
/// `(lo, segment)` pair per chunk (taken as each `ChunkMem` is built).
enum Prepared<'a> {
    /// Read-only buffer shared by every chunk.
    Shared(&'a (String, FloatVec)),
    /// Stored buffer split into per-chunk segments.
    Carved {
        name: &'a str,
        full_len: usize,
        segs: Vec<Option<(usize, Seg<'a>)>>,
    },
}

/// Splits `data` into disjoint mutable segments, one per half-open
/// interval. Intervals must be monotone (all ascending or all
/// descending) and pairwise disjoint; returns `None` otherwise.
fn carve_segments<'a>(
    data: &'a mut FloatVec,
    intervals: &[(usize, usize)],
) -> Option<Vec<Option<(usize, Seg<'a>)>>> {
    fn split<'a, T, F: Fn(&'a mut [T]) -> Seg<'a>>(
        mut rest: &'a mut [T],
        order: &[(usize, (usize, usize))],
        wrap: F,
    ) -> Option<Vec<(usize, usize, Seg<'a>)>> {
        let mut consumed = 0usize;
        let mut out = Vec::with_capacity(order.len());
        for &(chunk, (lo, hi)) in order {
            if lo < consumed || hi > consumed + rest.len() || hi < lo {
                return None;
            }
            let (_, tail) = rest.split_at_mut(lo - consumed);
            let (seg, tail) = tail.split_at_mut(hi - lo);
            rest = tail;
            consumed = hi;
            out.push((chunk, lo, wrap(seg)));
        }
        Some(out)
    }

    // Carve in ascending-lo order regardless of chunk order (the axis
    // coefficient may be negative), then map segments back to chunks.
    let mut order: Vec<(usize, (usize, usize))> = intervals.iter().copied().enumerate().collect();
    order.sort_by_key(|&(_, (lo, _))| lo);

    let placed = match data {
        FloatVec::F16(v) => split(v.as_mut_slice(), &order, Seg::H)?,
        FloatVec::F32(v) => split(v.as_mut_slice(), &order, Seg::S)?,
        FloatVec::F64(v) => split(v.as_mut_slice(), &order, Seg::D)?,
    };
    let mut segs: Vec<Option<(usize, Seg<'a>)>> = Vec::with_capacity(intervals.len());
    segs.resize_with(intervals.len(), || None);
    for (chunk, lo, seg) in placed {
        segs[chunk] = Some((lo, seg));
    }
    Some(segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Access;
    use crate::dsl::*;
    use crate::interp::run_kernel;
    use crate::typeck::check_kernel;

    /// Runs a kernel through both engines and asserts identical buffers
    /// and counts.
    fn assert_equiv(kernel: &Kernel, mut bufs: BufferMap, launch: &Launch) {
        check_kernel(kernel).unwrap();
        let mut bufs_vm = bufs.clone();
        let counts_interp = run_kernel(kernel, &mut bufs, launch).unwrap();
        let compiled = compile_kernel(kernel).unwrap();
        let counts_vm = compiled.run(&mut bufs_vm, launch).unwrap();
        assert_eq!(counts_interp, counts_vm, "operation counts must match");
        for (name, data) in &bufs {
            assert_eq!(
                data, &bufs_vm[name],
                "buffer `{name}` diverged between interpreter and VM"
            );
        }
    }

    fn saxpy(elem: Precision) -> Kernel {
        kernel("saxpy")
            .buffer("x", elem, Access::Read)
            .buffer("y", elem, Access::ReadWrite)
            .float_param_like("a", "x")
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    lt(var("i"), var("n")),
                    vec![store(
                        "y",
                        var("i"),
                        var("a") * load("x", var("i")) + load("y", var("i")),
                    )],
                ),
            ])
    }

    #[test]
    fn saxpy_equivalence_all_precisions() {
        for elem in Precision::ALL {
            let k = saxpy(elem);
            let n = 40usize;
            let mut bufs = BufferMap::new();
            let xs: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 100.0).collect();
            let ys: Vec<f64> = (0..n).map(|i| (i as f64).cos() * 100.0).collect();
            bufs.insert("x".into(), FloatVec::from_f64_slice(&xs, elem));
            bufs.insert("y".into(), FloatVec::from_f64_slice(&ys, elem));
            // Launch wider than n to exercise the guard.
            let launch = Launch::one_d(64).arg_float("a", 2.5).arg_int("n", n as i64);
            assert_equiv(&k, bufs, &launch);
        }
    }

    #[test]
    fn loops_casts_and_selects_are_equivalent() {
        let k = kernel("mix")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Single, Access::Read)
            .buffer("c", Precision::Half, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                let_acc("acc", "c", flit(0.0)),
                for_(
                    "j",
                    int(0),
                    var("n"),
                    vec![
                        let_("prod", load("a", var("j")) * load("b", var("j"))),
                        add_assign(
                            "acc",
                            select(
                                gt(var("prod"), flit(10.0)),
                                cast(Precision::Half, sqrt(var("prod"))),
                                cast(Precision::Half, var("prod")),
                            ),
                        ),
                    ],
                ),
                store("c", var("i"), var("acc") + cast_elem_of("c", var("i"))),
            ]);
        let n = 12usize;
        let mut bufs = BufferMap::new();
        let xs: Vec<f64> = (0..n).map(|i| 0.7 * i as f64).collect();
        bufs.insert("a".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
        bufs.insert("b".into(), FloatVec::from_f64_slice(&xs, Precision::Single));
        bufs.insert("c".into(), FloatVec::zeros(n, Precision::Half));
        let launch = Launch::one_d(n).arg_int("n", n as i64);
        assert_equiv(&k, bufs, &launch);
    }

    #[test]
    fn triangular_loops_and_two_d_ids_are_equivalent() {
        let k = kernel("tri")
            .buffer("c", Precision::Single, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                let_acc("acc", "c", flit(1.0)),
                for_(
                    "kk",
                    var("j") + int(1),
                    var("n"),
                    vec![assign("acc", var("acc") * flit(1.5) - flit(0.25))],
                ),
                if_else(
                    lt(var("i"), var("j")),
                    vec![store("c", var("i") * var("n") + var("j"), var("acc"))],
                    vec![store("c", var("j") * var("n") + var("i"), -var("acc"))],
                ),
            ]);
        let n = 9usize;
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(n * n, Precision::Single));
        let launch = Launch::two_d(n, n).arg_int("n", n as i64);
        assert_equiv(&k, bufs, &launch);
    }

    #[test]
    fn out_of_bounds_is_reported_identically() {
        let k = kernel("oob")
            .buffer("x", Precision::Double, Access::Read)
            .body(vec![let_("v", load("x", global_id(0)))]);
        check_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        bufs.insert("x".into(), FloatVec::zeros(4, Precision::Double));
        let compiled = compile_kernel(&k).unwrap();
        let err = compiled.run(&mut bufs, &Launch::one_d(8)).unwrap_err();
        assert!(matches!(
            err,
            ExecError::OutOfBounds {
                index: 4,
                len: 4,
                ..
            }
        ));
        // Buffers are restored even on error.
        assert!(bufs.contains_key("x"));
    }

    #[test]
    fn missing_bindings_error_like_the_interpreter() {
        let k = saxpy(Precision::Double);
        let compiled = compile_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        assert!(matches!(
            compiled.run(&mut bufs, &Launch::one_d(1)),
            Err(ExecError::MissingBuffer(_))
        ));
        bufs.insert("x".into(), FloatVec::zeros(1, Precision::Double));
        bufs.insert("y".into(), FloatVec::zeros(1, Precision::Single));
        assert!(matches!(
            compiled.run(&mut bufs, &Launch::one_d(1)),
            Err(ExecError::BufferPrecisionMismatch { .. })
        ));
        bufs.insert("y".into(), FloatVec::zeros(1, Precision::Double));
        assert!(matches!(
            compiled.run(&mut bufs, &Launch::one_d(1)),
            Err(ExecError::MissingArg(_))
        ));
    }

    #[test]
    fn compiled_code_is_compact() {
        let k = saxpy(Precision::Double);
        let compiled = compile_kernel(&k).unwrap();
        assert!(compiled.code_len() < 40, "{} ops", compiled.code_len());
        assert_eq!(compiled.name(), "saxpy");
    }

    #[test]
    fn empty_loop_counts_match() {
        // A loop with zero trips: bounds evaluated, no body counts.
        let k = kernel("z")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![for_(
                "i",
                int(5),
                int(2),
                vec![store("c", var("i"), flit(0.0))],
            )]);
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(1, Precision::Double));
        assert_equiv(&k, bufs, &Launch::one_d(3));
    }

    #[test]
    fn malformed_kernels_compile_to_typed_errors() {
        // Unbound variable.
        let k = kernel("bad")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", int(0), var("ghost"))]);
        assert!(matches!(
            compile_kernel(&k),
            Err(ExecError::UnboundVar(n)) if n == "ghost"
        ));
        // Storing through a non-buffer parameter.
        let k = kernel("bad")
            .int_param("n")
            .body(vec![store("n", int(0), flit(1.0))]);
        assert!(matches!(
            compile_kernel(&k),
            Err(ExecError::NotABuffer(n)) if n == "n"
        ));
        // Float buffer index.
        let k = kernel("bad")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", flit(0.5), flit(1.0))]);
        assert!(matches!(compile_kernel(&k), Err(ExecError::KindError(_))));
        // Boolean operand in arithmetic.
        let k = kernel("bad")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", int(0), lt(int(0), int(1)) + flit(1.0))]);
        assert!(matches!(compile_kernel(&k), Err(ExecError::KindError(_))));
    }

    #[test]
    fn hot_loops_fuse_into_superinstructions() {
        // A GEMM-shaped inner loop must hit every fusion pattern: fused
        // compare-branches, a fused back-edge, row-major indexed loads,
        // and the accumulator copy sunk into its producer.
        let k = kernel("mm")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_(
                    lt(var("i"), var("n")),
                    vec![
                        let_acc("acc", "c", flit(0.0)),
                        for_(
                            "kk",
                            int(0),
                            var("n"),
                            vec![add_assign(
                                "acc",
                                load("a", var("i") * var("n") + var("kk"))
                                    * load("b", var("kk") * var("n") + var("j")),
                            )],
                        ),
                        store("c", var("i") * var("n") + var("j"), var("acc")),
                    ],
                ),
            ]);
        let compiled = compile_kernel(&k).unwrap();
        let has = |f: &dyn Fn(&Op) -> bool| compiled.ops.iter().any(f);
        assert!(has(&|o| matches!(o, Op::JumpICmpFalse { .. })));
        assert!(has(&|o| matches!(o, Op::DotStep { .. })));
        assert!(has(&|o| matches!(o, Op::CountAddJump { .. })));
        assert!(
            !has(&|o| matches!(o, Op::FMov { .. })),
            "accumulator moves must sink into their producers"
        );
        // The fused inner loop (head + dot-step + counting back-edge)
        // dispatches 3 ops per iteration, down from 14 unfused.
        let n = 6usize;
        let mut bufs = BufferMap::new();
        let xs: Vec<f64> = (0..n * n).map(|i| (i as f64).sin()).collect();
        bufs.insert("a".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
        bufs.insert("b".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
        bufs.insert("c".into(), FloatVec::zeros(n * n, Precision::Double));
        let launch = Launch::two_d(n, n).arg_int("n", n as i64);
        assert_equiv(&k, bufs, &launch);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_kernels() {
        let mut scratch = VmScratch::new();
        for elem in Precision::ALL {
            let k = saxpy(elem);
            let n = 24usize;
            let xs: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
            let mut bufs = BufferMap::new();
            bufs.insert("x".into(), FloatVec::from_f64_slice(&xs, elem));
            bufs.insert("y".into(), FloatVec::from_f64_slice(&xs, elem));
            let mut bufs_fresh = bufs.clone();
            let launch = Launch::one_d(n).arg_float("a", 1.25).arg_int("n", n as i64);
            let compiled = compile_kernel(&k).unwrap();
            let c1 = compiled
                .run_with_scratch(&mut bufs, &launch, &mut scratch)
                .unwrap();
            let c2 = compiled.run(&mut bufs_fresh, &launch).unwrap();
            assert_eq!(c1, c2);
            assert_eq!(bufs["y"], bufs_fresh["y"], "shared scratch diverged");
        }
    }

    #[test]
    fn weak_literal_chains_match() {
        // Literal arithmetic adopting a buffer's precision through nesting.
        let k = kernel("w")
            .buffer("c", Precision::Half, Access::ReadWrite)
            .body(vec![
                let_("i", global_id(0)),
                store(
                    "c",
                    var("i"),
                    (flit(0.1) + flit(0.2)) * load("c", var("i")) + flit(0.3),
                ),
            ]);
        let mut bufs = BufferMap::new();
        bufs.insert(
            "c".into(),
            FloatVec::from_f64_slice(&[1.0, 2.0, 4.0], Precision::Half),
        );
        assert_equiv(&k, bufs, &Launch::one_d(3));
    }

    /// gemm-shaped kernel: provably disjoint stores `c[i*n+j]`.
    fn gemm(elem: Precision) -> Kernel {
        kernel("gemm")
            .buffer("a", elem, Access::Read)
            .buffer("b", elem, Access::Read)
            .buffer("c", elem, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                let_acc("acc", "c", flit(0.0)),
                for_(
                    "kk",
                    int(0),
                    var("n"),
                    vec![add_assign(
                        "acc",
                        load("a", var("i") * var("n") + var("kk"))
                            * load("b", var("kk") * var("n") + var("j")),
                    )],
                ),
                store("c", var("i") * var("n") + var("j"), var("acc")),
            ])
    }

    fn gemm_buffers(n: usize, elem: Precision) -> BufferMap {
        let xs: Vec<f64> = (0..n * n)
            .map(|i| ((i * 7 % 23) as f64) * 0.37 - 3.1)
            .collect();
        let ys: Vec<f64> = (0..n * n)
            .map(|i| ((i * 5 % 19) as f64) * 0.29 - 2.3)
            .collect();
        let mut bufs = BufferMap::new();
        bufs.insert("a".into(), FloatVec::from_f64_slice(&xs, elem));
        bufs.insert("b".into(), FloatVec::from_f64_slice(&ys, elem));
        bufs.insert("c".into(), FloatVec::zeros(n * n, elem));
        bufs
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_sequential() {
        for elem in Precision::ALL {
            let k = gemm(elem);
            let n = 16usize;
            let compiled = compile_kernel(&k).unwrap();
            assert!(matches!(
                compiled.parallel_safety(),
                ParallelSafety::Disjoint(_)
            ));
            let launch = Launch::two_d(n, n).arg_int("n", n as i64);
            let mut seq = gemm_buffers(n, elem);
            let counts_seq = compiled.run(&mut seq, &launch).unwrap();
            for threads in [2usize, 3, 8, 16] {
                let mut par = gemm_buffers(n, elem);
                let mut scratch = VmScratch::default();
                let counts_par = compiled
                    .run_parallel(&mut par, &launch, &mut scratch, threads)
                    .unwrap();
                assert_eq!(
                    counts_seq, counts_par,
                    "counts diverged at {threads} threads"
                );
                assert_eq!(seq["c"], par["c"], "output diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn unprovable_kernels_fall_back_to_sequential() {
        // tri stores through two sites with different coefficient shapes;
        // the analysis must reject it and run_parallel must still give
        // sequential results.
        let k = kernel("tri")
            .buffer("c", Precision::Single, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_else(
                    lt(var("i"), var("j")),
                    vec![store("c", var("i") * var("n") + var("j"), flit(1.0))],
                    vec![store("c", var("j") * var("n") + var("i"), flit(-1.0))],
                ),
            ]);
        let n = 12usize;
        let compiled = compile_kernel(&k).unwrap();
        let launch = Launch::two_d(n, n).arg_int("n", n as i64);
        let mut seq = BufferMap::new();
        seq.insert("c".into(), FloatVec::zeros(n * n, Precision::Single));
        let mut par = seq.clone();
        let counts_seq = compiled.run(&mut seq, &launch).unwrap();
        let mut scratch = VmScratch::default();
        let counts_par = compiled
            .run_parallel(&mut par, &launch, &mut scratch, 8)
            .unwrap();
        assert_eq!(counts_seq, counts_par);
        assert_eq!(seq["c"], par["c"]);
    }

    #[test]
    fn parallel_error_paths_match_sequential_partial_writes() {
        // Stores are provably disjoint (y[i]) but a *read-only* buffer is
        // loaded at 2*i which walks out of bounds mid-range: the parallel
        // path must reproduce the sequential error AND the sequential
        // partial-write state via snapshot + re-run.
        let k = kernel("oobmid")
            .buffer("x", Precision::Double, Access::Read)
            .buffer("y", Precision::Double, Access::ReadWrite)
            .body(vec![
                let_("i", global_id(0)),
                store("y", var("i"), load("x", var("i") * int(2))),
            ]);
        let n = 128usize;
        let mut seq = BufferMap::new();
        seq.insert(
            "x".into(),
            FloatVec::from_f64_slice(
                &(0..n).map(|i| i as f64).collect::<Vec<_>>(),
                Precision::Double,
            ),
        );
        seq.insert("y".into(), FloatVec::zeros(n, Precision::Double));
        let mut par = seq.clone();
        let compiled = compile_kernel(&k).unwrap();
        let launch = Launch::one_d(n);
        let err_seq = compiled.run(&mut seq, &launch).unwrap_err();
        let mut scratch = VmScratch::default();
        let err_par = compiled
            .run_parallel(&mut par, &launch, &mut scratch, 8)
            .unwrap_err();
        assert_eq!(format!("{err_seq:?}"), format!("{err_par:?}"));
        assert_eq!(seq["y"], par["y"], "partial writes diverged");
        assert_eq!(seq["x"], par["x"]);
    }

    #[test]
    fn duplicate_launch_args_keep_last_wins_semantics() {
        // Historical behaviour: the last duplicate of a launch argument
        // wins. The slot-table binder must preserve that.
        let k = saxpy(Precision::Double);
        let compiled = compile_kernel(&k).unwrap();
        let n = 8usize;
        let mut bufs = BufferMap::new();
        bufs.insert("x".into(), FloatVec::zeros(n, Precision::Double));
        bufs.insert(
            "y".into(),
            FloatVec::from_f64_slice(&vec![1.0; n], Precision::Double),
        );
        let launch = Launch::one_d(n)
            .arg_float("a", 99.0)
            .arg_int("n", 0)
            .arg_float("a", 2.0)
            .arg_int("n", n as i64);
        compiled.run(&mut bufs, &launch).unwrap();
        // With a=2 and x=0, y must stay 1.0 everywhere and all n items ran.
        assert_eq!(bufs["y"].get(n - 1), 1.0);
    }
}
