//! Operation counts — the currency of the GPU cost model.
//!
//! Both the interpreter (dynamic, exact) and the static analysis
//! ([`crate::analysis`]) produce [`OpCounts`]; the simulator turns them into
//! virtual kernel time using per-architecture throughput tables.

use crate::types::Precision;
use core::ops::{Add, AddAssign, Mul};

/// Per-precision operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrecCounts {
    /// Additions and subtractions (and min/max).
    pub add_sub: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions.
    pub div: u64,
    /// Special functions: sqrt, exp, log.
    pub special: u64,
    /// Comparisons evaluated at this precision.
    pub cmp: u64,
    /// Element loads from global memory.
    pub loads: u64,
    /// Element stores to global memory.
    pub stores: u64,
}

impl PrecCounts {
    /// Total arithmetic operations (excluding memory traffic).
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.add_sub + self.mul + self.div + self.special + self.cmp
    }
}

impl AddAssign for PrecCounts {
    fn add_assign(&mut self, rhs: PrecCounts) {
        self.add_sub += rhs.add_sub;
        self.mul += rhs.mul;
        self.div += rhs.div;
        self.special += rhs.special;
        self.cmp += rhs.cmp;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
    }
}

impl Mul<u64> for PrecCounts {
    type Output = PrecCounts;
    fn mul(self, k: u64) -> PrecCounts {
        PrecCounts {
            add_sub: self.add_sub * k,
            mul: self.mul * k,
            div: self.div * k,
            special: self.special * k,
            cmp: self.cmp * k,
            loads: self.loads * k,
            stores: self.stores * k,
        }
    }
}

/// Complete operation counts for one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Float operations, indexed by [`Precision`] (`half`, `single`,
    /// `double` in order).
    pub float: [PrecCounts; 3],
    /// Integer ALU operations (index arithmetic, loop bookkeeping).
    pub int_ops: u64,
    /// Precision-changing conversions (explicit casts, implicit store
    /// conversions, int↔float conversions).
    pub converts: u64,
}

impl OpCounts {
    /// An empty counter set.
    #[must_use]
    pub fn new() -> OpCounts {
        OpCounts::default()
    }

    /// The counters for one precision.
    #[must_use]
    pub fn at(&self, p: Precision) -> &PrecCounts {
        &self.float[p as usize]
    }

    /// Mutable counters for one precision.
    pub fn at_mut(&mut self, p: Precision) -> &mut PrecCounts {
        &mut self.float[p as usize]
    }

    /// Total float operations across all precisions.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.float.iter().map(PrecCounts::flops).sum()
    }

    /// Global-memory traffic in bytes, derived from per-precision element
    /// loads/stores.
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        Precision::ALL
            .into_iter()
            .map(|p| {
                let c = self.at(p);
                (c.loads + c.stores) * p.size_bytes() as u64
            })
            .sum()
    }

    /// Scales all counters by `k` (e.g. one work-item's counts × items).
    #[must_use]
    pub fn scaled(self, k: u64) -> OpCounts {
        OpCounts {
            float: [self.float[0] * k, self.float[1] * k, self.float[2] * k],
            int_ops: self.int_ops * k,
            converts: self.converts * k,
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, rhs: OpCounts) -> OpCounts {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        for i in 0..3 {
            self.float[i] += rhs.float[i];
        }
        self.int_ops += rhs.int_ops;
        self.converts += rhs.converts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bytes_weights_by_element_size() {
        let mut c = OpCounts::new();
        c.at_mut(Precision::Half).loads = 10;
        c.at_mut(Precision::Double).stores = 3;
        assert_eq!(c.memory_bytes(), 10 * 2 + 3 * 8);
    }

    #[test]
    fn scaling_multiplies_every_counter() {
        let mut c = OpCounts::new();
        c.at_mut(Precision::Single).mul = 2;
        c.int_ops = 5;
        c.converts = 1;
        let s = c.scaled(3);
        assert_eq!(s.at(Precision::Single).mul, 6);
        assert_eq!(s.int_ops, 15);
        assert_eq!(s.converts, 3);
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = OpCounts::new();
        a.at_mut(Precision::Half).add_sub = 1;
        let mut b = OpCounts::new();
        b.at_mut(Precision::Half).add_sub = 2;
        b.at_mut(Precision::Double).div = 4;
        let c = a + b;
        assert_eq!(c.at(Precision::Half).add_sub, 3);
        assert_eq!(c.at(Precision::Double).div, 4);
        assert_eq!(c.total_flops(), 7);
    }

    #[test]
    fn flops_sums_arithmetic_only() {
        let c = PrecCounts {
            add_sub: 1,
            mul: 2,
            div: 3,
            special: 4,
            cmp: 5,
            loads: 100,
            stores: 100,
        };
        assert_eq!(c.flops(), 15);
    }
}
