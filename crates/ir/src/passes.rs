//! Compiler passes over kernels.
//!
//! These are the reproduction's equivalent of the paper's LLVM-level kernel
//! transformations:
//!
//! * [`retype_buffers`] — *memory-object scaling*: change buffer element
//!   precisions; every `ElemOf`-typed local and scalar parameter follows,
//!   so the kernel computes natively in the new precision with **no**
//!   conversion instructions (the PreScaler/PFP code shape).
//! * [`insert_casts`] — *in-kernel scaling*: keep buffer types, insert
//!   explicit conversions around loads and retype dependent locals, so the
//!   kernel computes in a lower precision but pays per-element conversion
//!   overhead (the Precimonious-style baseline's code shape).
//! * [`const_fold`] — integer constant folding and branch pruning (kept
//!   deliberately conservative: float literals are never pre-evaluated, as
//!   that would change which precision the operation executes in).
//! * [`infer_access`] — recomputes buffer access modes from the body.

use crate::ast::{Access, Expr, Kernel, Param, Stmt, TypeRef};
use crate::types::{Precision, ScalarType};
use crate::value::{CmpOp, FloatBinOp, UnaryFn};
use std::collections::HashMap;

/// Returns a copy of `kernel` whose named buffers use new element
/// precisions. Buffers absent from `map` are unchanged.
///
/// `ElemOf` references resolve against the new table automatically, so the
/// kernel stays well-typed — this is the whole point of the memory-object
/// scaling code shape.
#[must_use]
pub fn retype_buffers(kernel: &Kernel, map: &HashMap<String, Precision>) -> Kernel {
    let mut out = kernel.clone();
    for p in &mut out.params {
        if let Param::Buffer { name, elem, .. } = p {
            if let Some(new) = map.get(name) {
                *elem = *new;
            }
        }
    }
    out
}

/// Returns a copy of `kernel` transformed for *in-kernel* precision
/// scaling: buffer declarations keep their original element types, but the
/// computation on each buffer listed in `compute` happens at the given
/// precision via explicit conversions:
///
/// * every `Load` from a mapped buffer is wrapped in a `Cast` to the
///   compute precision;
/// * every `ElemOf(buf)` local/scalar-parameter/cast type is replaced by
///   the concrete compute precision;
/// * stores convert back to the buffer's element type implicitly (a real
///   conversion instruction, counted by interpreter and analysis alike).
#[must_use]
pub fn insert_casts(kernel: &Kernel, compute: &HashMap<String, Precision>) -> Kernel {
    let resolve_tr = |ty: &TypeRef| -> TypeRef {
        match ty {
            TypeRef::ElemOf(buf) => match compute.get(buf) {
                Some(p) => TypeRef::Concrete(ScalarType::Float(*p)),
                None => ty.clone(),
            },
            TypeRef::Concrete(_) => ty.clone(),
        }
    };

    fn rewrite_expr(
        e: &Expr,
        kernel: &Kernel,
        compute: &HashMap<String, Precision>,
        resolve_tr: &dyn Fn(&TypeRef) -> TypeRef,
    ) -> Expr {
        let rec = |x: &Expr| rewrite_expr(x, kernel, compute, resolve_tr);
        match e {
            Expr::Load { buf, index } => {
                let load = Expr::Load {
                    buf: buf.clone(),
                    index: Box::new(rec(index)),
                };
                match compute.get(buf) {
                    Some(p) if Some(*p) != kernel.buffer_elem(buf) => Expr::Cast {
                        to: TypeRef::Concrete(ScalarType::Float(*p)),
                        arg: Box::new(load),
                    },
                    _ => load,
                }
            }
            Expr::Unary { op, arg } => Expr::Unary {
                op: *op,
                arg: Box::new(rec(arg)),
            },
            Expr::Bin { op, lhs, rhs } => Expr::Bin {
                op: *op,
                lhs: Box::new(rec(lhs)),
                rhs: Box::new(rec(rhs)),
            },
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(rec(lhs)),
                rhs: Box::new(rec(rhs)),
            },
            Expr::Cast { to, arg } => Expr::Cast {
                to: resolve_tr(to),
                arg: Box::new(rec(arg)),
            },
            Expr::Select { cond, then, els } => Expr::Select {
                cond: Box::new(rec(cond)),
                then: Box::new(rec(then)),
                els: Box::new(rec(els)),
            },
            other => other.clone(),
        }
    }

    fn rewrite_stmts(
        stmts: &[Stmt],
        kernel: &Kernel,
        compute: &HashMap<String, Precision>,
        resolve_tr: &dyn Fn(&TypeRef) -> TypeRef,
    ) -> Vec<Stmt> {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Let { name, ty, value } => Stmt::Let {
                    name: name.clone(),
                    ty: ty.as_ref().map(resolve_tr),
                    value: rewrite_expr(value, kernel, compute, resolve_tr),
                },
                Stmt::Assign { name, value } => Stmt::Assign {
                    name: name.clone(),
                    value: rewrite_expr(value, kernel, compute, resolve_tr),
                },
                Stmt::Store { buf, index, value } => Stmt::Store {
                    buf: buf.clone(),
                    index: rewrite_expr(index, kernel, compute, resolve_tr),
                    value: rewrite_expr(value, kernel, compute, resolve_tr),
                },
                Stmt::For {
                    var,
                    start,
                    end,
                    body,
                } => Stmt::For {
                    var: var.clone(),
                    start: rewrite_expr(start, kernel, compute, resolve_tr),
                    end: rewrite_expr(end, kernel, compute, resolve_tr),
                    body: rewrite_stmts(body, kernel, compute, resolve_tr),
                },
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => Stmt::If {
                    cond: rewrite_expr(cond, kernel, compute, resolve_tr),
                    then_body: rewrite_stmts(then_body, kernel, compute, resolve_tr),
                    else_body: rewrite_stmts(else_body, kernel, compute, resolve_tr),
                },
            })
            .collect()
    }

    let mut out = kernel.clone();
    for p in &mut out.params {
        if let Param::Scalar { ty, .. } = p {
            *ty = resolve_tr(ty);
        }
    }
    out.body = rewrite_stmts(&kernel.body, kernel, compute, &resolve_tr);
    out
}

/// Conservative constant folding.
///
/// Folds integer arithmetic, integer comparisons, casts of integer
/// constants to `long`, `select`s with constant conditions, and prunes
/// `if`s with constant conditions. Float literals are **not** folded — the
/// precision an operation runs at is observable in this IR.
#[must_use]
pub fn const_fold(kernel: &Kernel) -> Kernel {
    fn fold_expr(e: &Expr) -> Expr {
        match e {
            Expr::Load { buf, index } => Expr::Load {
                buf: buf.clone(),
                index: Box::new(fold_expr(index)),
            },
            Expr::Unary { op, arg } => {
                let a = fold_expr(arg);
                if let (Expr::IntConst(x), UnaryFn::Neg) = (&a, op) {
                    return Expr::IntConst(x.wrapping_neg());
                }
                if let (Expr::IntConst(x), UnaryFn::Fabs) = (&a, op) {
                    return Expr::IntConst(x.wrapping_abs());
                }
                Expr::Unary {
                    op: *op,
                    arg: Box::new(a),
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let l = fold_expr(lhs);
                let r = fold_expr(rhs);
                if let (Expr::IntConst(x), Expr::IntConst(y)) = (&l, &r) {
                    return Expr::IntConst(apply_int(*op, *x, *y));
                }
                // Identities that do not change float semantics: i + 0,
                // i * 1 on the integer side only.
                match (op, &l, &r) {
                    (FloatBinOp::Add, e, Expr::IntConst(0))
                    | (FloatBinOp::Add, Expr::IntConst(0), e)
                    | (FloatBinOp::Mul, e, Expr::IntConst(1))
                    | (FloatBinOp::Mul, Expr::IntConst(1), e)
                        if is_int_expr(e) =>
                    {
                        return e.clone()
                    }
                    _ => {}
                }
                Expr::Bin {
                    op: *op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            }
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(fold_expr(lhs)),
                rhs: Box::new(fold_expr(rhs)),
            },
            Expr::Cast { to, arg } => {
                let a = fold_expr(arg);
                if let (TypeRef::Concrete(ScalarType::Int), Expr::IntConst(x)) = (to, &a) {
                    return Expr::IntConst(*x);
                }
                Expr::Cast {
                    to: to.clone(),
                    arg: Box::new(a),
                }
            }
            Expr::Select { cond, then, els } => {
                let c = fold_expr(cond);
                let t = fold_expr(then);
                let e2 = fold_expr(els);
                if let Some(b) = known_bool(&c) {
                    return if b { t } else { e2 };
                }
                Expr::Select {
                    cond: Box::new(c),
                    then: Box::new(t),
                    els: Box::new(e2),
                }
            }
            other => other.clone(),
        }
    }

    fn fold_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            match s {
                Stmt::Let { name, ty, value } => out.push(Stmt::Let {
                    name: name.clone(),
                    ty: ty.clone(),
                    value: fold_expr(value),
                }),
                Stmt::Assign { name, value } => out.push(Stmt::Assign {
                    name: name.clone(),
                    value: fold_expr(value),
                }),
                Stmt::Store { buf, index, value } => out.push(Stmt::Store {
                    buf: buf.clone(),
                    index: fold_expr(index),
                    value: fold_expr(value),
                }),
                Stmt::For {
                    var,
                    start,
                    end,
                    body,
                } => {
                    let s2 = fold_expr(start);
                    let e2 = fold_expr(end);
                    if let (Expr::IntConst(a), Expr::IntConst(b)) = (&s2, &e2) {
                        if a >= b {
                            continue; // dead loop
                        }
                    }
                    out.push(Stmt::For {
                        var: var.clone(),
                        start: s2,
                        end: e2,
                        body: fold_stmts(body),
                    });
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let c = fold_expr(cond);
                    match known_bool(&c) {
                        Some(true) => out.extend(fold_stmts(then_body)),
                        Some(false) => out.extend(fold_stmts(else_body)),
                        None => out.push(Stmt::If {
                            cond: c,
                            then_body: fold_stmts(then_body),
                            else_body: fold_stmts(else_body),
                        }),
                    }
                }
            }
        }
        out
    }

    let mut out = kernel.clone();
    out.body = fold_stmts(&kernel.body);
    out
}

/// A comparison whose value is statically known.
fn known_bool(e: &Expr) -> Option<bool> {
    if let Expr::Cmp { op, lhs, rhs } = e {
        if let (Expr::IntConst(x), Expr::IntConst(y)) = (lhs.as_ref(), rhs.as_ref()) {
            return Some(apply_cmp(*op, *x, *y));
        }
    }
    None
}

fn is_int_expr(e: &Expr) -> bool {
    matches!(e, Expr::IntConst(_) | Expr::GlobalId(_))
}

fn apply_int(op: FloatBinOp, x: i64, y: i64) -> i64 {
    match op {
        FloatBinOp::Add => x.wrapping_add(y),
        FloatBinOp::Sub => x.wrapping_sub(y),
        FloatBinOp::Mul => x.wrapping_mul(y),
        FloatBinOp::Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        FloatBinOp::Min => x.min(y),
        FloatBinOp::Max => x.max(y),
    }
}

fn apply_cmp(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
    }
}

/// Recomputes each buffer's access mode from the loads and stores that
/// actually appear in the body.
#[must_use]
pub fn infer_access(kernel: &Kernel) -> HashMap<String, Access> {
    let mut loads = std::collections::HashSet::new();
    let mut stores = std::collections::HashSet::new();

    fn scan_stmts(
        stmts: &[Stmt],
        loads: &mut std::collections::HashSet<String>,
        stores: &mut std::collections::HashSet<String>,
    ) {
        crate::ast::visit_exprs(stmts, &mut |e| {
            if let Expr::Load { buf, .. } = e {
                loads.insert(buf.clone());
            }
        });
        for s in stmts {
            match s {
                Stmt::Store { buf, .. } => {
                    stores.insert(buf.clone());
                }
                Stmt::For { body, .. } => scan_stmts(body, loads, stores),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    scan_stmts(then_body, loads, stores);
                    scan_stmts(else_body, loads, stores);
                }
                _ => {}
            }
        }
    }

    // visit_exprs already recurses, so one top-level scan for loads plus a
    // recursive scan for stores suffices; the double-recursion for loads is
    // harmless (idempotent set inserts).
    scan_stmts(&kernel.body, &mut loads, &mut stores);

    kernel
        .buffer_names()
        .into_iter()
        .map(|name| {
            let a = match (loads.contains(name), stores.contains(name)) {
                (true, true) => Access::ReadWrite,
                (false, true) => Access::Write,
                // Unreferenced buffers default to Read.
                _ => Access::Read,
            };
            (name.to_owned(), a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::typeck::check_kernel;

    fn sample_kernel() -> Kernel {
        kernel("k")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .float_param_like("alpha", "a")
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                let_acc("acc", "c", flit(0.0)),
                for_(
                    "j",
                    int(0),
                    var("n"),
                    vec![add_assign("acc", load("a", var("j")) * var("alpha"))],
                ),
                store("c", var("i"), var("acc")),
            ])
    }

    #[test]
    fn retype_changes_buffers_and_keeps_kernel_well_typed() {
        let k = sample_kernel();
        let map = HashMap::from([("a".to_owned(), Precision::Half)]);
        let r = retype_buffers(&k, &map);
        assert_eq!(r.buffer_elem("a"), Some(Precision::Half));
        assert_eq!(r.buffer_elem("c"), Some(Precision::Double));
        check_kernel(&r).unwrap();
        // alpha tracks `a` and now resolves to half.
        let alpha_ty = match r.param("alpha").unwrap() {
            Param::Scalar { ty, .. } => r.resolve(ty),
            Param::Buffer { .. } => unreachable!(),
        };
        assert_eq!(alpha_ty, ScalarType::Float(Precision::Half));
    }

    #[test]
    fn insert_casts_keeps_buffer_types_but_lowers_compute() {
        let k = sample_kernel();
        let map = HashMap::from([
            ("a".to_owned(), Precision::Half),
            ("c".to_owned(), Precision::Half),
        ]);
        let t = insert_casts(&k, &map);
        check_kernel(&t).unwrap();
        // Buffers stay double (data layout unchanged)…
        assert_eq!(t.buffer_elem("a"), Some(Precision::Double));
        assert_eq!(t.buffer_elem("c"), Some(Precision::Double));
        // …but loads are wrapped in casts to half.
        let mut cast_loads = 0;
        crate::ast::visit_exprs(&t.body, &mut |e| {
            if let Expr::Cast { to, arg } = e {
                if matches!(arg.as_ref(), Expr::Load { .. }) {
                    assert_eq!(
                        t.resolve(to),
                        ScalarType::Float(Precision::Half),
                        "loads cast to the compute precision"
                    );
                    cast_loads += 1;
                }
            }
        });
        assert_eq!(cast_loads, 1);
        // The accumulator's ElemOf(c) became concrete half.
        match &t.body[1] {
            Stmt::Let { ty: Some(ty), .. } => {
                assert_eq!(ty, &TypeRef::Concrete(ScalarType::Float(Precision::Half)));
            }
            other => panic!("expected typed let, got {other:?}"),
        }
    }

    #[test]
    fn insert_casts_is_identity_when_precisions_match() {
        let k = sample_kernel();
        let map = HashMap::from([("a".to_owned(), Precision::Double)]);
        let t = insert_casts(&k, &map);
        let mut casts = 0;
        crate::ast::visit_exprs(&t.body, &mut |e| {
            if matches!(e, Expr::Cast { .. }) {
                casts += 1;
            }
        });
        assert_eq!(casts, 0, "no-op scaling inserts no conversions");
    }

    #[test]
    fn const_fold_folds_integer_arithmetic() {
        let k = kernel("f")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", int(2) * int(3) + int(1), flit(1.0))]);
        let f = const_fold(&k);
        match &f.body[0] {
            Stmt::Store { index, .. } => assert_eq!(index, &Expr::IntConst(7)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_fold_prunes_dead_branches_and_loops() {
        let k = kernel("f")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![
                if_else(
                    lt(int(1), int(2)),
                    vec![store("c", int(0), flit(1.0))],
                    vec![store("c", int(0), flit(2.0))],
                ),
                if_(lt(int(2), int(1)), vec![store("c", int(1), flit(3.0))]),
                for_("i", int(5), int(5), vec![store("c", var("i"), flit(4.0))]),
            ]);
        let f = const_fold(&k);
        assert_eq!(f.body.len(), 1, "true-branch inlined, dead code dropped");
        match &f.body[0] {
            Stmt::Store { value, .. } => assert_eq!(value, &Expr::FloatConst(1.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_fold_never_touches_float_literals() {
        let k = kernel("f")
            .buffer("c", Precision::Half, Access::Write)
            .body(vec![store("c", int(0), flit(0.1) + flit(0.2))]);
        let f = const_fold(&k);
        match &f.body[0] {
            Stmt::Store { value, .. } => {
                assert!(matches!(value, Expr::Bin { .. }), "float add preserved");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn const_fold_select_with_known_condition() {
        let k = kernel("f")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store(
                "c",
                int(0),
                select(lt(int(1), int(2)), flit(1.0), flit(2.0)),
            )]);
        let f = const_fold(&k);
        match &f.body[0] {
            Stmt::Store { value, .. } => assert_eq!(value, &Expr::FloatConst(1.0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infer_access_reflects_actual_usage() {
        let k = sample_kernel();
        let acc = infer_access(&k);
        assert_eq!(acc["a"], Access::Read);
        assert_eq!(acc["c"], Access::Write, "c is stored but never loaded");
    }

    #[test]
    fn folding_preserves_dynamic_behaviour() {
        use crate::array::FloatVec;
        use crate::interp::{run_kernel, BufferMap, Launch};
        let k = sample_kernel();
        let f = const_fold(&k);
        let n = 8usize;
        let run = |kk: &Kernel| {
            let mut bufs = BufferMap::new();
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
            bufs.insert("a".into(), FloatVec::from_f64_slice(&xs, Precision::Double));
            bufs.insert("c".into(), FloatVec::zeros(n, Precision::Double));
            let launch = Launch::one_d(n)
                .arg_float("alpha", 2.0)
                .arg_int("n", n as i64);
            run_kernel(kk, &mut bufs, &launch).unwrap();
            bufs.remove("c").unwrap()
        };
        assert_eq!(run(&k), run(&f));
    }
}
