//! Scalar types of the kernel IR.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Floating-point precision of a value or memory object.
///
/// Ordered by width: `Half < Single < Double`, so `max` of two precisions is
/// the promotion target of a mixed binary operation.
///
/// ```
/// use prescaler_ir::Precision;
/// assert!(Precision::Half < Precision::Double);
/// assert_eq!(Precision::Half.max(Precision::Single), Precision::Single);
/// assert_eq!(Precision::Double.size_bytes(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE 754 binary16 (`half` in OpenCL C).
    Half,
    /// IEEE 754 binary32 (`float`).
    Single,
    /// IEEE 754 binary64 (`double`).
    Double,
}

impl Precision {
    /// All precisions in ascending width order.
    pub const ALL: [Precision; 3] = [Precision::Half, Precision::Single, Precision::Double];

    /// Size of one element in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            Precision::Half => 2,
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// The OpenCL C type name.
    #[must_use]
    pub const fn c_name(self) -> &'static str {
        match self {
            Precision::Half => "half",
            Precision::Single => "float",
            Precision::Double => "double",
        }
    }

    /// Precisions strictly below `self`, in *descending* order — the order
    /// in which the paper's normal search tries scaling targets.
    #[must_use]
    pub fn lower_targets(self) -> Vec<Precision> {
        Precision::ALL
            .into_iter()
            .rev()
            .filter(|p| *p < self)
            .collect()
    }

    /// One step down, if any.
    #[must_use]
    pub const fn one_lower(self) -> Option<Precision> {
        match self {
            Precision::Half => None,
            Precision::Single => Some(Precision::Half),
            Precision::Double => Some(Precision::Single),
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// The scalar type of an IR expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// A floating-point value of the given precision.
    Float(Precision),
    /// A 64-bit signed integer (loop counters, sizes, indices).
    Int,
    /// A boolean (comparison results, branch conditions).
    Bool,
}

impl ScalarType {
    /// Returns the precision if this is a float type.
    #[must_use]
    pub const fn precision(self) -> Option<Precision> {
        match self {
            ScalarType::Float(p) => Some(p),
            _ => None,
        }
    }

    /// Returns `true` for float types.
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(self, ScalarType::Float(_))
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::Float(p) => fmt::Display::fmt(p, f),
            ScalarType::Int => f.write_str("long"),
            ScalarType::Bool => f.write_str("bool"),
        }
    }
}

impl From<Precision> for ScalarType {
    fn from(p: Precision) -> ScalarType {
        ScalarType::Float(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_ordering_matches_width() {
        assert!(Precision::Half < Precision::Single);
        assert!(Precision::Single < Precision::Double);
        assert_eq!(Precision::ALL.map(Precision::size_bytes), [2, 4, 8]);
    }

    #[test]
    fn lower_targets_descend() {
        assert_eq!(
            Precision::Double.lower_targets(),
            vec![Precision::Single, Precision::Half]
        );
        assert_eq!(Precision::Single.lower_targets(), vec![Precision::Half]);
        assert!(Precision::Half.lower_targets().is_empty());
    }

    #[test]
    fn one_lower_steps_down() {
        assert_eq!(Precision::Double.one_lower(), Some(Precision::Single));
        assert_eq!(Precision::Single.one_lower(), Some(Precision::Half));
        assert_eq!(Precision::Half.one_lower(), None);
    }

    #[test]
    fn display_uses_opencl_names() {
        assert_eq!(Precision::Half.to_string(), "half");
        assert_eq!(ScalarType::Float(Precision::Double).to_string(), "double");
        assert_eq!(ScalarType::Int.to_string(), "long");
    }

    #[test]
    fn scalar_type_accessors() {
        assert_eq!(
            ScalarType::Float(Precision::Half).precision(),
            Some(Precision::Half)
        );
        assert_eq!(ScalarType::Int.precision(), None);
        assert!(ScalarType::Float(Precision::Single).is_float());
        assert!(!ScalarType::Bool.is_float());
    }
}
