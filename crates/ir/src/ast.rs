//! Abstract syntax of the kernel IR.
//!
//! The IR models OpenCL C kernels closely enough that the paper's LLVM-level
//! precision transformations have direct equivalents: buffer parameters with
//! an element precision, scalar parameters, structured loops and branches,
//! loads/stores, float arithmetic, explicit `convert_*` casts, and
//! polymorphic float literals (which adopt the precision of their context,
//! as C literals do under implicit conversion).

use crate::types::{Precision, ScalarType};
use crate::value::{CmpOp, FloatBinOp, UnaryFn};

/// Identifier for kernel parameters, locals and loop variables.
pub type Ident = String;

/// How a kernel accesses a buffer parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Only loaded from.
    Read,
    /// Only stored to.
    Write,
    /// Both loaded and stored.
    ReadWrite,
}

impl Access {
    /// `true` if loads are allowed.
    #[must_use]
    pub const fn readable(self) -> bool {
        matches!(self, Access::Read | Access::ReadWrite)
    }

    /// `true` if stores are allowed.
    #[must_use]
    pub const fn writable(self) -> bool {
        matches!(self, Access::Write | Access::ReadWrite)
    }
}

/// A type annotation that may refer to a buffer's element type.
///
/// `ElemOf` is how kernels keep accumulator locals and scalar parameters in
/// lock-step with the precision of the memory objects they feed: when the
/// retype pass changes a buffer's element precision, every `ElemOf` use
/// follows automatically — the same effect as the paper's LLVM pass
/// rewriting dependent value types.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// A fixed scalar type.
    Concrete(ScalarType),
    /// The element type of the named buffer parameter.
    ElemOf(Ident),
}

impl From<ScalarType> for TypeRef {
    fn from(t: ScalarType) -> TypeRef {
        TypeRef::Concrete(t)
    }
}

impl From<Precision> for TypeRef {
    fn from(p: Precision) -> TypeRef {
        TypeRef::Concrete(ScalarType::Float(p))
    }
}

/// A kernel parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum Param {
    /// A global-memory buffer of floats.
    Buffer {
        /// Parameter name.
        name: Ident,
        /// Element precision.
        elem: Precision,
        /// Declared access mode.
        access: Access,
    },
    /// A scalar argument (problem sizes, alpha/beta coefficients, …).
    Scalar {
        /// Parameter name.
        name: Ident,
        /// Type, possibly tied to a buffer's element type.
        ty: TypeRef,
    },
}

impl Param {
    /// The parameter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Param::Buffer { name, .. } | Param::Scalar { name, .. } => name,
        }
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A polymorphic float literal: adopts the precision of its context
    /// (binop sibling, declared local type, or stored-to buffer), defaulting
    /// to double when unconstrained — like a C literal under implicit
    /// conversion.
    FloatConst(f64),
    /// An integer literal.
    IntConst(i64),
    /// A local variable, loop variable, or scalar parameter.
    Var(Ident),
    /// `get_global_id(dim)`.
    GlobalId(usize),
    /// `buf[index]` — yields the buffer's element type.
    Load {
        /// Buffer parameter name.
        buf: Ident,
        /// Element index (integer expression).
        index: Box<Expr>,
    },
    /// A unary math operation at the operand's precision.
    Unary {
        /// The function.
        op: UnaryFn,
        /// Operand.
        arg: Box<Expr>,
    },
    /// A binary arithmetic operation at the promoted operand precision.
    Bin {
        /// The operator.
        op: FloatBinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A comparison, yielding `bool`.
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// An explicit conversion (`convert_half(x)`, `(double)x`, `(long)x`).
    Cast {
        /// Target type (`Bool` is not permitted).
        to: TypeRef,
        /// Operand.
        arg: Box<Expr>,
    },
    /// `cond ? then : els`, operands promoted like a binary op.
    Select {
        /// Condition (boolean expression).
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Declares (and initializes) a local variable.
    Let {
        /// Variable name.
        name: Ident,
        /// Declared type; inferred from `value` when `None`.
        ty: Option<TypeRef>,
        /// Initializer.
        value: Expr,
    },
    /// Reassigns an existing local (converts to its declared type).
    Assign {
        /// Variable name.
        name: Ident,
        /// New value.
        value: Expr,
    },
    /// `buf[index] = value` — converts to the buffer's element type.
    Store {
        /// Buffer parameter name.
        buf: Ident,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `for (long var = start; var < end; ++var) body`.
    For {
        /// Loop variable (scoped to the body).
        var: Ident,
        /// Inclusive start (integer expression).
        start: Expr,
        /// Exclusive end (integer expression).
        end: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) { then } else { els }`.
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then_body: Vec<Stmt>,
        /// False branch (may be empty).
        else_body: Vec<Stmt>,
    },
}

/// A kernel: name, parameters, and a structured body executed once per
/// work-item of the launch NDRange.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    /// Kernel name (unique within a [`Program`]).
    pub name: Ident,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Looks up a parameter by name.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name() == name)
    }

    /// The element precision of the named buffer parameter.
    #[must_use]
    pub fn buffer_elem(&self, name: &str) -> Option<Precision> {
        match self.param(name)? {
            Param::Buffer { elem, .. } => Some(*elem),
            Param::Scalar { .. } => None,
        }
    }

    /// Resolves a [`TypeRef`] against this kernel's parameter table.
    ///
    /// # Panics
    ///
    /// Panics if an `ElemOf` target is not a buffer parameter; the type
    /// checker rejects such kernels first.
    #[must_use]
    pub fn resolve(&self, ty: &TypeRef) -> ScalarType {
        match ty {
            TypeRef::Concrete(t) => *t,
            TypeRef::ElemOf(buf) => ScalarType::Float(
                self.buffer_elem(buf)
                    .unwrap_or_else(|| panic!("ElemOf({buf}) does not name a buffer")),
            ),
        }
    }

    /// Names of all buffer parameters, in declaration order.
    #[must_use]
    pub fn buffer_names(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter_map(|p| match p {
                Param::Buffer { name, .. } => Some(name.as_str()),
                Param::Scalar { .. } => None,
            })
            .collect()
    }
}

/// A program: an ordered collection of kernels that a host application
/// launches (possibly several times each).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Program name (used in reports).
    pub name: Ident,
    /// The kernels.
    pub kernels: Vec<Kernel>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new(name: impl Into<Ident>) -> Program {
        Program {
            name: name.into(),
            kernels: Vec::new(),
        }
    }

    /// Adds a kernel, returning `self` for chaining.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Program {
        self.kernels.push(kernel);
        self
    }

    /// Looks up a kernel by name.
    #[must_use]
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Mutable lookup by name.
    pub fn kernel_mut(&mut self, name: &str) -> Option<&mut Kernel> {
        self.kernels.iter_mut().find(|k| k.name == name)
    }
}

/// Walks every expression in a statement list, depth-first.
pub fn visit_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    fn expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
        f(e);
        match e {
            Expr::FloatConst(_) | Expr::IntConst(_) | Expr::Var(_) | Expr::GlobalId(_) => {}
            Expr::Load { index, .. } => expr(index, f),
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => expr(arg, f),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                expr(lhs, f);
                expr(rhs, f);
            }
            Expr::Select { cond, then, els } => {
                expr(cond, f);
                expr(then, f);
                expr(els, f);
            }
        }
    }
    for s in stmts {
        match s {
            Stmt::Let { value, .. } | Stmt::Assign { value, .. } => expr(value, f),
            Stmt::Store { index, value, .. } => {
                expr(index, f);
                expr(value, f);
            }
            Stmt::For {
                start, end, body, ..
            } => {
                expr(start, f);
                expr(end, f);
                visit_exprs(body, f);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, f);
                visit_exprs(then_body, f);
                visit_exprs(else_body, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn access_predicates() {
        assert!(Access::Read.readable() && !Access::Read.writable());
        assert!(!Access::Write.readable() && Access::Write.writable());
        assert!(Access::ReadWrite.readable() && Access::ReadWrite.writable());
    }

    #[test]
    fn kernel_lookup_and_resolution() {
        let k = Kernel {
            name: "k".into(),
            params: vec![
                Param::Buffer {
                    name: "a".into(),
                    elem: Precision::Single,
                    access: Access::Read,
                },
                Param::Scalar {
                    name: "alpha".into(),
                    ty: TypeRef::ElemOf("a".into()),
                },
            ],
            body: vec![],
        };
        assert_eq!(k.buffer_elem("a"), Some(Precision::Single));
        assert_eq!(k.buffer_elem("alpha"), None);
        assert_eq!(
            k.resolve(&TypeRef::ElemOf("a".into())),
            ScalarType::Float(Precision::Single)
        );
        assert_eq!(k.buffer_names(), vec!["a"]);
        assert!(k.param("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "does not name a buffer")]
    fn resolving_elem_of_non_buffer_panics() {
        let k = Kernel {
            name: "k".into(),
            params: vec![],
            body: vec![],
        };
        let _ = k.resolve(&TypeRef::ElemOf("ghost".into()));
    }

    #[test]
    fn program_kernel_lookup() {
        let p = Program::new("prog").with_kernel(Kernel {
            name: "a".into(),
            params: vec![],
            body: vec![],
        });
        assert!(p.kernel("a").is_some());
        assert!(p.kernel("b").is_none());
    }

    #[test]
    fn visit_exprs_reaches_nested_expressions() {
        let body = vec![for_(
            "i",
            int(0),
            var("n"),
            vec![store("c", var("i"), load("a", var("i")) + flit(1.0))],
        )];
        let mut loads = 0;
        let mut consts = 0;
        visit_exprs(&body, &mut |e| match e {
            Expr::Load { .. } => loads += 1,
            Expr::FloatConst(_) | Expr::IntConst(_) => consts += 1,
            _ => {}
        });
        assert_eq!(loads, 1);
        assert_eq!(consts, 2); // int(0) and flit(1.0)
    }
}
