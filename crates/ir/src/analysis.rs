//! Static operation-count analysis.
//!
//! [`count_launch`] computes the [`OpCounts`] a launch *will* incur without
//! touching any float data: an abstract interpretation that tracks integers
//! exactly (global ids, loop variables, scalar arguments) and floats only by
//! precision. For every kernel whose control flow is integer-driven — all of
//! Polybench — the result is bit-identical to the dynamic counts returned by
//! [`crate::interp::run_kernel`], which the test-suite checks.
//!
//! Two optimizations keep the analysis cheap:
//!
//! * a `for` loop whose body's control expressions do not depend on the loop
//!   variable is counted once and scaled by the trip count;
//! * a kernel whose control expressions do not depend on the global id is
//!   counted for one work-item and scaled by the NDRange size.
//!
//! The only approximation is data-dependent control flow: an `if` whose
//! condition involves float data counts its *heavier* branch. (A
//! mixed-precision `select` always converts its narrower arm, in both
//! engines, so it needs no approximation.)

use crate::ast::{Expr, Kernel, Param, Stmt, TypeRef};
use crate::counts::OpCounts;
use crate::interp::{ArgValue, Launch};
use crate::types::{Precision, ScalarType};
use crate::value::{FloatBinOp, UnaryFn};
use core::fmt;
use std::collections::{HashMap, HashSet};

/// An error from the static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A scalar parameter had no argument in the launch.
    MissingArg(String),
    /// A loop bound could not be resolved to an integer (data-dependent).
    DataDependentBound(String),
    /// An identifier was used before any binding introduced it. The type
    /// checker rejects such kernels; a malformed kernel that skipped it
    /// must surface a typed error here, never a panic.
    UnboundVar(String),
    /// A load/store target or `ElemOf` reference does not name a buffer
    /// parameter.
    NotABuffer(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::MissingArg(n) => write!(f, "no value for scalar parameter `{n}`"),
            AnalysisError::DataDependentBound(k) => {
                write!(f, "kernel `{k}` has a data-dependent loop bound")
            }
            AnalysisError::UnboundVar(n) => write!(f, "`{n}` is used before being bound"),
            AnalysisError::NotABuffer(n) => write!(f, "`{n}` does not name a buffer parameter"),
        }
    }
}

/// Resolves a [`TypeRef`] without panicking: a dangling `ElemOf` is a
/// typed error, not a crash.
fn resolve_ty(kernel: &Kernel, ty: &TypeRef) -> Result<ScalarType, AnalysisError> {
    match ty {
        TypeRef::Concrete(t) => Ok(*t),
        TypeRef::ElemOf(buf) => kernel
            .buffer_elem(buf)
            .map(ScalarType::Float)
            .ok_or_else(|| AnalysisError::NotABuffer(buf.clone())),
    }
}

impl std::error::Error for AnalysisError {}

/// An abstract runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
enum AbsVal {
    /// An exactly known integer.
    Int(i64),
    /// A float of known precision, unknown value.
    Float(Precision),
    /// A boolean, known when `Some`.
    Bool(Option<bool>),
}

impl AbsVal {
    fn precision(self) -> Option<Precision> {
        match self {
            AbsVal::Float(p) => Some(p),
            _ => None,
        }
    }
}

/// Statically counts the operations of one kernel launch.
///
/// # Errors
///
/// Returns [`AnalysisError`] when a scalar argument is missing or a loop
/// bound depends on float data. The kernel must already type-check.
pub fn count_launch(kernel: &Kernel, launch: &Launch) -> Result<OpCounts, AnalysisError> {
    let mut scalars = HashMap::new();
    for p in &kernel.params {
        if let Param::Scalar { name, ty } = p {
            let arg = launch
                .args
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| AnalysisError::MissingArg(name.clone()))?;
            let v = match (resolve_ty(kernel, ty)?, arg) {
                (ScalarType::Int, ArgValue::Int(v)) => AbsVal::Int(v),
                (ScalarType::Float(p), _) => AbsVal::Float(p),
                (ScalarType::Int, ArgValue::Float(_)) => {
                    return Err(AnalysisError::MissingArg(name.clone()))
                }
                (ScalarType::Bool, _) => AbsVal::Bool(None),
            };
            scalars.insert(name.clone(), v);
        }
    }

    let deps = control_deps(&kernel.body);
    let uniform_over_items = !deps.contains(GID0) && !deps.contains(GID1);

    let mut ai = Absint {
        kernel,
        scalars,
        scopes: Vec::new(),
        gid: [0, 0],
    };

    if uniform_over_items {
        let one = ai.item()?;
        Ok(one.scaled(launch.items() as u64))
    } else {
        let mut total = OpCounts::new();
        // Row uniformity: if only gid(0) matters, count one row and scale
        // by the number of rows (and vice versa).
        let needs0 = deps.contains(GID0);
        let needs1 = deps.contains(GID1);
        let (nx, ny) = (launch.global[0], launch.global[1]);
        match (needs0, needs1) {
            (true, false) => {
                for gx in 0..nx {
                    ai.gid = [gx as i64, 0];
                    total += ai.item()?;
                }
                total = total.scaled(ny as u64);
            }
            (false, true) => {
                for gy in 0..ny {
                    ai.gid = [0, gy as i64];
                    total += ai.item()?;
                }
                total = total.scaled(nx as u64);
            }
            _ => {
                for gy in 0..ny {
                    for gx in 0..nx {
                        ai.gid = [gx as i64, gy as i64];
                        total += ai.item()?;
                    }
                }
            }
        }
        Ok(total)
    }
}

const GID0: &str = "%gid0";
const GID1: &str = "%gid1";

/// Free identifiers of an expression (`%gid0`/`%gid1` for global ids).
fn free_vars(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::FloatConst(_) | Expr::IntConst(_) => {}
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::GlobalId(d) => {
            out.insert(if *d == 0 { GID0 } else { GID1 }.to_owned());
        }
        Expr::Load { index, .. } => free_vars(index, out),
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => free_vars(arg, out),
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            free_vars(lhs, out);
            free_vars(rhs, out);
        }
        Expr::Select { cond, then, els } => {
            free_vars(cond, out);
            free_vars(then, out);
            free_vars(els, out);
        }
    }
}

/// The set of variables (transitively) feeding any control expression
/// (loop bound, `if` condition, `select` condition) in `body`.
fn control_deps(body: &[Stmt]) -> HashSet<String> {
    // Gather direct control-expression variables and def→use edges.
    let mut control = HashSet::new();
    let mut defs: Vec<(String, HashSet<String>)> = Vec::new();

    fn walk(
        stmts: &[Stmt],
        control: &mut HashSet<String>,
        defs: &mut Vec<(String, HashSet<String>)>,
    ) {
        for s in stmts {
            match s {
                Stmt::Let { name, value, .. } | Stmt::Assign { name, value } => {
                    let mut fv = HashSet::new();
                    free_vars(value, &mut fv);
                    collect_select_conds(value, control);
                    defs.push((name.clone(), fv));
                }
                Stmt::Store { index, value, .. } => {
                    collect_select_conds(index, control);
                    collect_select_conds(value, control);
                }
                Stmt::For {
                    start, end, body, ..
                } => {
                    free_vars(start, control);
                    free_vars(end, control);
                    collect_select_conds(start, control);
                    collect_select_conds(end, control);
                    walk(body, control, defs);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    free_vars(cond, control);
                    collect_select_conds(cond, control);
                    walk(then_body, control, defs);
                    walk(else_body, control, defs);
                }
            }
        }
    }

    fn collect_select_conds(e: &Expr, control: &mut HashSet<String>) {
        match e {
            Expr::Select { cond, then, els } => {
                free_vars(cond, control);
                collect_select_conds(cond, control);
                collect_select_conds(then, control);
                collect_select_conds(els, control);
            }
            Expr::Load { index, .. } => collect_select_conds(index, control),
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => collect_select_conds(arg, control),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                collect_select_conds(lhs, control);
                collect_select_conds(rhs, control);
            }
            _ => {}
        }
    }

    walk(body, &mut control, &mut defs);

    // Transitive closure: a variable feeding a control-relevant variable is
    // itself control-relevant.
    loop {
        let mut changed = false;
        for (name, fv) in &defs {
            if control.contains(name) {
                for v in fv {
                    changed |= control.insert(v.clone());
                }
            }
        }
        if !changed {
            break;
        }
    }
    control
}

struct Absint<'k> {
    kernel: &'k Kernel,
    scalars: HashMap<String, AbsVal>,
    scopes: Vec<HashMap<&'k str, AbsVal>>,
    gid: [i64; 2],
}

impl<'k> Absint<'k> {
    fn item(&mut self) -> Result<OpCounts, AnalysisError> {
        self.scopes.clear();
        self.scopes.push(HashMap::new());
        let mut counts = OpCounts::new();
        let body: &'k [Stmt] = &self.kernel.body;
        self.block(body, &mut counts)?;
        Ok(counts)
    }

    fn err_bound(&self) -> AnalysisError {
        AnalysisError::DataDependentBound(self.kernel.name.clone())
    }

    fn lookup(&self, name: &str) -> Result<AbsVal, AnalysisError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(*v);
            }
        }
        self.scalars
            .get(name)
            .copied()
            .ok_or_else(|| AnalysisError::UnboundVar(name.to_owned()))
    }

    /// The innermost scope. The stack is never empty while a body is
    /// analyzed ([`Absint::item`] seeds it), but a typed fallback beats a
    /// panic in a serving worker.
    fn top_scope(&mut self) -> &mut HashMap<&'k str, AbsVal> {
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        let top = self.scopes.len() - 1;
        &mut self.scopes[top]
    }

    fn block(&mut self, stmts: &'k [Stmt], counts: &mut OpCounts) -> Result<(), AnalysisError> {
        for s in stmts {
            self.stmt(s, counts)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &'k Stmt, counts: &mut OpCounts) -> Result<(), AnalysisError> {
        match stmt {
            Stmt::Let { name, ty, value } => {
                let declared = match ty {
                    Some(t) => Some(resolve_ty(self.kernel, t)?),
                    None => None,
                };
                let hint = declared.and_then(|t| match t {
                    ScalarType::Float(p) => Some(p),
                    _ => None,
                });
                let mut v = self.eval(value, hint, counts)?;
                if let Some(t) = declared {
                    v = self.coerce(v, t, counts);
                }
                self.top_scope().insert(name.as_str(), v);
                Ok(())
            }
            Stmt::Assign { name, value } => {
                let current = self.lookup(name)?;
                let hint = current.precision();
                let v = self.eval(value, hint, counts)?;
                let target = match current {
                    AbsVal::Int(_) => ScalarType::Int,
                    AbsVal::Float(p) => ScalarType::Float(p),
                    AbsVal::Bool(_) => ScalarType::Bool,
                };
                let v = self.coerce(v, target, counts);
                for scope in self.scopes.iter_mut().rev() {
                    if let Some(slot) = scope.get_mut(name.as_str()) {
                        *slot = v;
                        return Ok(());
                    }
                }
                // Bound in `scalars` only: assignment to a parameter, which
                // the type checker rejects — surface it as typed, not fatal.
                Err(AnalysisError::UnboundVar(name.clone()))
            }
            Stmt::Store { buf, index, value } => {
                let elem = self
                    .kernel
                    .buffer_elem(buf)
                    .ok_or_else(|| AnalysisError::NotABuffer(buf.clone()))?;
                let _ = self.eval(index, None, counts)?;
                let v = self.eval(value, Some(elem), counts)?;
                if v.precision() != Some(elem) {
                    counts.converts += 1;
                }
                counts.at_mut(elem).stores += 1;
                Ok(())
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let AbsVal::Int(s) = self.eval(start, None, counts)? else {
                    return Err(self.err_bound());
                };
                let AbsVal::Int(e) = self.eval(end, None, counts)? else {
                    return Err(self.err_bound());
                };
                let trips = (e - s).max(0) as u64;
                counts.int_ops += 2 * trips;
                if trips == 0 {
                    return Ok(());
                }
                let uniform = !control_deps(body).contains(var.as_str());
                self.scopes.push(HashMap::new());
                let result = (|| {
                    if uniform {
                        self.top_scope().insert(var.as_str(), AbsVal::Int(s));
                        let mut one = OpCounts::new();
                        self.block(body, &mut one)?;
                        *counts += one.scaled(trips);
                        Ok(())
                    } else {
                        for i in s..e {
                            self.top_scope().insert(var.as_str(), AbsVal::Int(i));
                            self.block(body, counts)?;
                        }
                        Ok(())
                    }
                })();
                self.scopes.pop();
                result
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, None, counts)?;
                match c {
                    AbsVal::Bool(Some(b)) => {
                        self.scopes.push(HashMap::new());
                        let r = if b {
                            self.block(then_body, counts)
                        } else {
                            self.block(else_body, counts)
                        };
                        self.scopes.pop();
                        r
                    }
                    _ => {
                        // Data-dependent branch: count the heavier side.
                        let mut t = OpCounts::new();
                        self.scopes.push(HashMap::new());
                        let rt = self.block(then_body, &mut t);
                        self.scopes.pop();
                        rt?;
                        let mut e = OpCounts::new();
                        self.scopes.push(HashMap::new());
                        let re = self.block(else_body, &mut e);
                        self.scopes.pop();
                        re?;
                        let wt = t.total_flops() + t.converts + t.int_ops;
                        let we = e.total_flops() + e.converts + e.int_ops;
                        *counts += if we > wt { e } else { t };
                        Ok(())
                    }
                }
            }
        }
    }

    fn coerce(&self, v: AbsVal, target: ScalarType, counts: &mut OpCounts) -> AbsVal {
        match (v, target) {
            (AbsVal::Bool(_), _) | (_, ScalarType::Bool) => v,
            (AbsVal::Int(_), ScalarType::Int) => v,
            (AbsVal::Int(_), ScalarType::Float(p)) => {
                counts.converts += 1;
                AbsVal::Float(p)
            }
            (AbsVal::Float(_), ScalarType::Int) => {
                counts.converts += 1;
                // Value unknown: integer becomes data-dependent. Use 0 as a
                // placeholder; using it in a bound raises an error later.
                AbsVal::Bool(None)
            }
            (AbsVal::Float(q), ScalarType::Float(p)) => {
                if q != p {
                    counts.converts += 1;
                }
                AbsVal::Float(p)
            }
        }
    }

    fn eval(
        &mut self,
        e: &'k Expr,
        hint: Option<Precision>,
        counts: &mut OpCounts,
    ) -> Result<AbsVal, AnalysisError> {
        match e {
            Expr::FloatConst(_) => Ok(AbsVal::Float(hint.unwrap_or(Precision::Double))),
            Expr::IntConst(v) => Ok(AbsVal::Int(*v)),
            Expr::GlobalId(d) => Ok(AbsVal::Int(if *d < 2 { self.gid[*d] } else { 0 })),
            Expr::Var(name) => self.lookup(name),
            Expr::Load { buf, index } => {
                let _ = self.eval(index, None, counts)?;
                let elem = self
                    .kernel
                    .buffer_elem(buf)
                    .ok_or_else(|| AnalysisError::NotABuffer(buf.clone()))?;
                counts.at_mut(elem).loads += 1;
                Ok(AbsVal::Float(elem))
            }
            Expr::Unary { op, arg } => {
                let v = self.eval(arg, hint, counts)?;
                match v {
                    AbsVal::Float(p) => {
                        let slot = counts.at_mut(p);
                        match op {
                            UnaryFn::Neg | UnaryFn::Fabs => slot.add_sub += 1,
                            _ => slot.special += 1,
                        }
                        Ok(AbsVal::Float(p))
                    }
                    AbsVal::Int(x) => {
                        counts.int_ops += 1;
                        match op {
                            UnaryFn::Neg => Ok(AbsVal::Int(x.wrapping_neg())),
                            UnaryFn::Fabs => Ok(AbsVal::Int(x.wrapping_abs())),
                            _ => Ok(AbsVal::Float(Precision::Double)),
                        }
                    }
                    AbsVal::Bool(_) => Ok(v),
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let (a, b) = self.eval_pair(lhs, rhs, hint, counts)?;
                match (a, b) {
                    (AbsVal::Int(x), AbsVal::Int(y)) => {
                        counts.int_ops += 1;
                        Ok(AbsVal::Int(apply_int(*op, x, y)))
                    }
                    _ => {
                        let p = promoted_abs(a, b);
                        counts_for_bin(*op, p, counts);
                        Ok(AbsVal::Float(p))
                    }
                }
            }
            Expr::Cmp { op, lhs, rhs } => {
                let (a, b) = self.eval_pair(lhs, rhs, None, counts)?;
                match (a, b) {
                    (AbsVal::Int(x), AbsVal::Int(y)) => {
                        counts.int_ops += 1;
                        Ok(AbsVal::Bool(Some(match op {
                            crate::value::CmpOp::Lt => x < y,
                            crate::value::CmpOp::Le => x <= y,
                            crate::value::CmpOp::Gt => x > y,
                            crate::value::CmpOp::Ge => x >= y,
                            crate::value::CmpOp::Eq => x == y,
                            crate::value::CmpOp::Ne => x != y,
                        })))
                    }
                    _ => {
                        counts.at_mut(promoted_abs(a, b)).cmp += 1;
                        Ok(AbsVal::Bool(None))
                    }
                }
            }
            Expr::Cast { to, arg } => {
                let v = self.eval(arg, None, counts)?;
                let to = resolve_ty(self.kernel, to)?;
                Ok(self.coerce(v, to, counts))
            }
            Expr::Select { cond, then, els } => {
                let c = self.eval(cond, None, counts)?;
                let (a, b) = self.eval_pair(then, els, hint, counts)?;
                match (a, b) {
                    (AbsVal::Int(x), AbsVal::Int(y)) => Ok(match c {
                        AbsVal::Bool(Some(true)) => AbsVal::Int(x),
                        AbsVal::Bool(Some(false)) => AbsVal::Int(y),
                        _ => AbsVal::Bool(None),
                    }),
                    _ => {
                        // Mixed-precision arms convert the narrower arm,
                        // branch-independently (matches the interpreter).
                        if a.precision() != b.precision() {
                            counts.converts += 1;
                        }
                        Ok(AbsVal::Float(promoted_abs(a, b)))
                    }
                }
            }
        }
    }

    fn eval_pair(
        &mut self,
        lhs: &'k Expr,
        rhs: &'k Expr,
        hint: Option<Precision>,
        counts: &mut OpCounts,
    ) -> Result<(AbsVal, AbsVal), AnalysisError> {
        let lw = expr_is_weak(lhs);
        let rw = expr_is_weak(rhs);
        if lw && !rw {
            let b = self.eval(rhs, hint, counts)?;
            let a = self.eval(lhs, b.precision(), counts)?;
            Ok((a, b))
        } else if rw && !lw {
            let a = self.eval(lhs, hint, counts)?;
            let b = self.eval(rhs, a.precision(), counts)?;
            Ok((a, b))
        } else {
            let a = self.eval(lhs, hint, counts)?;
            let b = self.eval(rhs, hint, counts)?;
            Ok((a, b))
        }
    }
}

fn expr_is_weak(e: &Expr) -> bool {
    match e {
        Expr::FloatConst(_) => true,
        Expr::Unary { arg, .. } => expr_is_weak(arg),
        Expr::Bin { lhs, rhs, .. } => expr_is_weak(lhs) && expr_is_weak(rhs),
        Expr::Select { then, els, .. } => expr_is_weak(then) && expr_is_weak(els),
        _ => false,
    }
}

fn promoted_abs(a: AbsVal, b: AbsVal) -> Precision {
    match (a.precision(), b.precision()) {
        (Some(x), Some(y)) => x.max(y),
        (Some(x), None) | (None, Some(x)) => x,
        (None, None) => Precision::Double,
    }
}

fn counts_for_bin(op: FloatBinOp, p: Precision, counts: &mut OpCounts) {
    let slot = counts.at_mut(p);
    match op {
        FloatBinOp::Add | FloatBinOp::Sub | FloatBinOp::Min | FloatBinOp::Max => slot.add_sub += 1,
        FloatBinOp::Mul => slot.mul += 1,
        FloatBinOp::Div => slot.div += 1,
    }
}

fn apply_int(op: FloatBinOp, x: i64, y: i64) -> i64 {
    match op {
        FloatBinOp::Add => x.wrapping_add(y),
        FloatBinOp::Sub => x.wrapping_sub(y),
        FloatBinOp::Mul => x.wrapping_mul(y),
        FloatBinOp::Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        FloatBinOp::Min => x.min(y),
        FloatBinOp::Max => x.max(y),
    }
}

// ---------------------------------------------------------------------------
// Disjoint-write analysis (data-parallel safety)
// ---------------------------------------------------------------------------

/// Verdict of the disjoint-write analysis: may a launch of this kernel be
/// partitioned into NDRange chunks that execute concurrently?
///
/// The analysis proves (conservatively) that every store a work-item
/// performs hits only locations indexed *injectively* by its global id —
/// the row-major `c[i*n + j]` shape every Polybench kernel has. Kernels
/// with data-dependent store indices, or whose stored buffers are read
/// through indices the analysis cannot express, are `Unproven` and must
/// run sequentially.
///
/// The verdict is launch-independent; index coefficients stay symbolic in
/// the kernel's integer arguments and are resolved per launch by
/// [`WriteSummary::resolve`].
#[derive(Clone, Debug)]
pub enum ParallelSafety {
    /// Every store index is affine in the global id; per-launch
    /// disjointness is decided by [`WriteSummary::resolve`].
    Disjoint(WriteSummary),
    /// Disjointness could not be proven; execution must stay sequential.
    Unproven(&'static str),
}

/// A symbolic integer over the kernel's integer scalar parameters.
///
/// Mirrors the kernel's own expression tree node-for-node over `+`, `-`,
/// `*`, so its exact (checked) evaluation agrees with the VM's wrapping
/// evaluation whenever the true value fits in `i64`: wrapping arithmetic
/// is a ring homomorphism onto `Z/2^64`, and a representable true value
/// pins the wrapped one.
#[derive(Clone, Debug, PartialEq)]
enum Sym {
    Const(i64),
    Arg(String),
    Add(Box<Sym>, Box<Sym>),
    Sub(Box<Sym>, Box<Sym>),
    Mul(Box<Sym>, Box<Sym>),
}

impl Sym {
    fn eval(&self, args: &[(String, ArgValue)]) -> Option<i64> {
        match self {
            Sym::Const(v) => Some(*v),
            Sym::Arg(n) => match args.iter().rev().find(|(name, _)| name == n) {
                Some((_, ArgValue::Int(v))) => Some(*v),
                _ => None,
            },
            Sym::Add(a, b) => a.eval(args)?.checked_add(b.eval(args)?),
            Sym::Sub(a, b) => a.eval(args)?.checked_sub(b.eval(args)?),
            Sym::Mul(a, b) => a.eval(args)?.checked_mul(b.eval(args)?),
        }
    }
}

/// A buffer index affine in the global id: `c0*gid0 + c1*gid1 + b`, with
/// symbolic coefficients (`None` means a coefficient of zero).
#[derive(Clone, Debug)]
struct AffineIdx {
    c0: Option<Sym>,
    c1: Option<Sym>,
    b: Sym,
}

impl AffineIdx {
    fn constant(v: i64) -> AffineIdx {
        AffineIdx {
            c0: None,
            c1: None,
            b: Sym::Const(v),
        }
    }

    fn gid(dim: usize) -> AffineIdx {
        let unit = Some(Sym::Const(1));
        match dim {
            0 => AffineIdx {
                c0: unit,
                c1: None,
                b: Sym::Const(0),
            },
            1 => AffineIdx {
                c0: None,
                c1: unit,
                b: Sym::Const(0),
            },
            _ => AffineIdx::constant(0),
        }
    }

    /// `true` when both global-id coefficients are zero.
    fn is_pure(&self) -> bool {
        self.c0.is_none() && self.c1.is_none()
    }
}

fn sym_add(a: Option<Sym>, b: Option<Sym>) -> Option<Sym> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(Sym::Add(Box::new(x), Box::new(y))),
    }
}

fn sym_sub(a: Option<Sym>, b: Option<Sym>) -> Option<Sym> {
    match (a, b) {
        (x, None) => x,
        (None, Some(y)) => Some(Sym::Sub(Box::new(Sym::Const(0)), Box::new(y))),
        (Some(x), Some(y)) => Some(Sym::Sub(Box::new(x), Box::new(y))),
    }
}

fn affine_add(a: &AffineIdx, b: &AffineIdx) -> AffineIdx {
    AffineIdx {
        c0: sym_add(a.c0.clone(), b.c0.clone()),
        c1: sym_add(a.c1.clone(), b.c1.clone()),
        b: Sym::Add(Box::new(a.b.clone()), Box::new(b.b.clone())),
    }
}

fn affine_sub(a: &AffineIdx, b: &AffineIdx) -> AffineIdx {
    AffineIdx {
        c0: sym_sub(a.c0.clone(), b.c0.clone()),
        c1: sym_sub(a.c1.clone(), b.c1.clone()),
        b: Sym::Sub(Box::new(a.b.clone()), Box::new(b.b.clone())),
    }
}

fn affine_neg(a: &AffineIdx) -> AffineIdx {
    affine_sub(&AffineIdx::constant(0), a)
}

/// `a * k` where `k` has no global-id component.
fn affine_scale(a: &AffineIdx, k: &Sym) -> AffineIdx {
    let scale = |c: &Option<Sym>| {
        c.as_ref()
            .map(|s| Sym::Mul(Box::new(s.clone()), Box::new(k.clone())))
    };
    AffineIdx {
        c0: scale(&a.c0),
        c1: scale(&a.c1),
        b: Sym::Mul(Box::new(a.b.clone()), Box::new(k.clone())),
    }
}

/// Abstract value of the disjoint-write walker: an affine integer index
/// or an opaque value (floats, loop variables, loaded data, …).
#[derive(Clone, Debug)]
enum PVal {
    Affine(AffineIdx),
    Opaque,
}

/// The affine access footprint of every *stored* buffer of a kernel.
///
/// Launch-independent: coefficients are symbolic in the kernel's integer
/// arguments. [`WriteSummary::resolve`] instantiates them for one launch
/// and decides whether contiguous NDRange chunks write disjoint index
/// ranges.
#[derive(Clone, Debug)]
pub struct WriteSummary {
    bufs: Vec<BufSites>,
}

#[derive(Clone, Debug)]
struct BufSites {
    name: String,
    /// Every store *and* load site of the buffer (loads are constrained
    /// too: a chunk may only read locations no other chunk writes).
    sites: Vec<AffineIdx>,
}

/// Per-buffer access record accumulated by the walker.
#[derive(Default)]
struct BufRecord {
    stored: bool,
    opaque_store: bool,
    opaque_load: bool,
    sites: Vec<AffineIdx>,
}

/// Variables assigned (not `let`-bound) anywhere in `stmts`, transitively.
fn assigned_vars(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::Let { .. } | Stmt::Store { .. } => {}
            Stmt::For { body, .. } => assigned_vars(body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assigned_vars(then_body, out);
                assigned_vars(else_body, out);
            }
        }
    }
}

struct ParWalk<'k> {
    kernel: &'k Kernel,
    scopes: Vec<HashMap<String, PVal>>,
    bufs: HashMap<String, BufRecord>,
}

impl ParWalk<'_> {
    fn top(&mut self) -> &mut HashMap<String, PVal> {
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        let top = self.scopes.len() - 1;
        &mut self.scopes[top]
    }

    fn lookup(&self, name: &str) -> PVal {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return v.clone();
            }
        }
        match self.kernel.param(name) {
            Some(Param::Scalar { ty, .. }) => match resolve_ty(self.kernel, ty) {
                Ok(ScalarType::Int) => PVal::Affine(AffineIdx {
                    c0: None,
                    c1: None,
                    b: Sym::Arg(name.to_owned()),
                }),
                _ => PVal::Opaque,
            },
            _ => PVal::Opaque,
        }
    }

    /// Forgets what is known about `name` (it is about to be mutated by a
    /// loop body or a branch).
    fn invalidate(&mut self, name: &str) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = PVal::Opaque;
                return;
            }
        }
        // A parameter (or unbound name): shadow it in the root scope so
        // later lookups see the invalidation.
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        self.scopes[0].insert(name.to_owned(), PVal::Opaque);
    }

    fn set(&mut self, name: &str, v: PVal) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return;
            }
        }
        if self.scopes.is_empty() {
            self.scopes.push(HashMap::new());
        }
        self.scopes[0].insert(name.to_owned(), v);
    }

    fn record_store(&mut self, buf: &str, idx: PVal) {
        let rec = self.bufs.entry(buf.to_owned()).or_default();
        rec.stored = true;
        match idx {
            PVal::Affine(a) => rec.sites.push(a),
            PVal::Opaque => rec.opaque_store = true,
        }
    }

    fn record_load(&mut self, buf: &str, idx: PVal) {
        let rec = self.bufs.entry(buf.to_owned()).or_default();
        match idx {
            PVal::Affine(a) => rec.sites.push(a),
            PVal::Opaque => rec.opaque_load = true,
        }
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { name, ty, value } => {
                let v = self.eval(value);
                // A declared non-int type makes the binding opaque (float
                // coercion loses the index structure).
                let v = match ty {
                    Some(t) => match resolve_ty(self.kernel, t) {
                        Ok(ScalarType::Int) => v,
                        _ => PVal::Opaque,
                    },
                    None => v,
                };
                self.top().insert(name.clone(), v);
            }
            Stmt::Assign { name, value } => {
                let v = self.eval(value);
                self.set(name, v);
            }
            Stmt::Store { buf, index, value } => {
                let iv = self.eval(index);
                let _ = self.eval(value); // records loads inside the value
                self.record_store(buf, iv);
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let _ = self.eval(start);
                let _ = self.eval(end);
                // One conservative pass over the body: anything it assigns
                // is unknown across iterations, as is the loop variable.
                let mut assigned = HashSet::new();
                assigned_vars(body, &mut assigned);
                for n in &assigned {
                    self.invalidate(n);
                }
                self.scopes.push(HashMap::new());
                self.top().insert(var.clone(), PVal::Opaque);
                self.walk(body);
                self.scopes.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let _ = self.eval(cond);
                // Walk each branch against a private copy of the
                // environment (sites accumulate in `self.bufs` across
                // both), then forget anything either branch assigns.
                let saved = self.scopes.clone();
                self.scopes.push(HashMap::new());
                self.walk(then_body);
                self.scopes.clone_from(&saved);
                self.scopes.push(HashMap::new());
                self.walk(else_body);
                self.scopes = saved;
                let mut assigned = HashSet::new();
                assigned_vars(then_body, &mut assigned);
                assigned_vars(else_body, &mut assigned);
                for n in &assigned {
                    self.invalidate(n);
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> PVal {
        match e {
            Expr::IntConst(v) => PVal::Affine(AffineIdx::constant(*v)),
            Expr::FloatConst(_) => PVal::Opaque,
            Expr::GlobalId(d) => PVal::Affine(AffineIdx::gid(*d)),
            Expr::Var(n) => self.lookup(n),
            Expr::Load { buf, index } => {
                let iv = self.eval(index);
                self.record_load(buf, iv);
                PVal::Opaque
            }
            Expr::Unary { op, arg } => {
                let v = self.eval(arg);
                match (op, v) {
                    (UnaryFn::Neg, PVal::Affine(a)) => PVal::Affine(affine_neg(&a)),
                    _ => PVal::Opaque,
                }
            }
            Expr::Cast { to, arg } => {
                let v = self.eval(arg);
                match resolve_ty(self.kernel, to) {
                    Ok(ScalarType::Int) => v,
                    _ => PVal::Opaque,
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                let (PVal::Affine(a), PVal::Affine(b)) = (a, b) else {
                    return PVal::Opaque;
                };
                match op {
                    FloatBinOp::Add => PVal::Affine(affine_add(&a, &b)),
                    FloatBinOp::Sub => PVal::Affine(affine_sub(&a, &b)),
                    FloatBinOp::Mul => {
                        if b.is_pure() {
                            PVal::Affine(affine_scale(&a, &b.b))
                        } else if a.is_pure() {
                            PVal::Affine(affine_scale(&b, &a.b))
                        } else {
                            PVal::Opaque
                        }
                    }
                    FloatBinOp::Div | FloatBinOp::Min | FloatBinOp::Max => PVal::Opaque,
                }
            }
            Expr::Cmp { lhs, rhs, .. } => {
                let _ = self.eval(lhs);
                let _ = self.eval(rhs);
                PVal::Opaque
            }
            Expr::Select { cond, then, els } => {
                let _ = self.eval(cond);
                let _ = self.eval(then);
                let _ = self.eval(els);
                PVal::Opaque
            }
        }
    }
}

/// Runs the disjoint-write analysis over one kernel.
///
/// The result is launch-independent and intended to be computed once at
/// compile time (see `CompiledKernel` in [`crate::vm`]); per-launch
/// disjointness is then decided by [`WriteSummary::resolve`].
#[must_use]
pub fn parallel_safety(kernel: &Kernel) -> ParallelSafety {
    let mut w = ParWalk {
        kernel,
        scopes: vec![HashMap::new()],
        bufs: HashMap::new(),
    };
    w.walk(&kernel.body);

    let mut bufs = Vec::new();
    for (name, rec) in w.bufs {
        if !rec.stored {
            continue;
        }
        if rec.opaque_store {
            return ParallelSafety::Unproven("a store index is not affine in the global id");
        }
        if rec.opaque_load {
            return ParallelSafety::Unproven("a stored buffer is loaded at a non-affine index");
        }
        bufs.push(BufSites {
            name,
            sites: rec.sites,
        });
    }
    // Deterministic order (HashMap iteration is not).
    bufs.sort_by(|a, b| a.name.cmp(&b.name));
    ParallelSafety::Disjoint(WriteSummary { bufs })
}

/// One stored buffer's launch-resolved access pattern. For a chunk of the
/// partition axis `[u0, u1)` the buffer's accessed index range is
/// `[min(c*u0, c*(u1-1)) + off_lo, max(c*u0, c*(u1-1)) + off_hi]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedBuf {
    name: String,
    c: i64,
    off_lo: i64,
    off_hi: i64,
}

impl ResolvedBuf {
    /// The buffer parameter name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The inclusive index interval accessed by partition-axis values
    /// `[u0, u1)`, or `None` on arithmetic overflow. `u0 < u1` required.
    #[must_use]
    pub fn interval(&self, u0: usize, u1: usize) -> Option<(i64, i64)> {
        let a = self.c.checked_mul(i64::try_from(u0).ok()?)?;
        let b = self
            .c
            .checked_mul(i64::try_from(u1.checked_sub(1)?).ok()?)?;
        Some((
            a.min(b).checked_add(self.off_lo)?,
            a.max(b).checked_add(self.off_hi)?,
        ))
    }
}

/// A launch-resolved partition proof: chunking the NDRange into
/// contiguous runs of the partition axis gives every chunk a disjoint
/// write interval in every stored buffer.
#[derive(Clone, Debug)]
pub struct ChunkPlan {
    along_rows: bool,
    bufs: Vec<ResolvedBuf>,
}

impl ChunkPlan {
    /// `true` when the partition axis is `gid(1)` (row chunks); `false`
    /// when it is `gid(0)` (only used for 1-D launches).
    #[must_use]
    pub fn along_rows(&self) -> bool {
        self.along_rows
    }

    /// The stored buffers, in deterministic (name) order.
    #[must_use]
    pub fn buffers(&self) -> &[ResolvedBuf] {
        &self.bufs
    }
}

impl WriteSummary {
    /// Instantiates the summary for one launch and checks that contiguous
    /// chunks of the partition axis write disjoint, monotone index
    /// intervals in every stored buffer. Returns `None` (sequential
    /// fallback) when any coefficient cannot be resolved to an integer,
    /// any arithmetic overflows, sites of one buffer disagree on their
    /// global-id coefficients, or the per-axis stride does not dominate
    /// the in-chunk spread.
    #[must_use]
    pub fn resolve(&self, launch: &Launch) -> Option<ChunkPlan> {
        let (nx, ny) = (launch.global[0], launch.global[1]);
        let along_rows = ny >= 2;
        let mut bufs = Vec::with_capacity(self.bufs.len());
        for b in &self.bufs {
            // All sites of a stored buffer must agree on (c0, c1); the
            // constant terms may differ (their span widens the interval).
            let mut first: Option<(i64, i64)> = None;
            let (mut b_min, mut b_max) = (i64::MAX, i64::MIN);
            for site in &b.sites {
                let c0 = match &site.c0 {
                    Some(s) => s.eval(&launch.args)?,
                    None => 0,
                };
                let c1 = match &site.c1 {
                    Some(s) => s.eval(&launch.args)?,
                    None => 0,
                };
                match first {
                    None => first = Some((c0, c1)),
                    Some(f) if f != (c0, c1) => return None,
                    Some(_) => {}
                }
                let bv = site.b.eval(&launch.args)?;
                b_min = b_min.min(bv);
                b_max = b_max.max(bv);
            }
            let Some((c0, c1)) = first else {
                // A stored buffer with no sites cannot occur; be safe.
                return None;
            };
            // Contribution of the non-partition axis: gid(0) spans
            // [0, nx) under row chunking; gid(1) is pinned to 0 when the
            // launch is 1-D.
            let (c_axis, other_span) = if along_rows {
                let w = i64::try_from(nx.checked_sub(1)?).ok()?;
                (c1, c0.checked_mul(w)?)
            } else {
                (c0, 0)
            };
            let off_lo = other_span.min(0).checked_add(b_min)?;
            let off_hi = other_span.max(0).checked_add(b_max)?;
            // Adjacent partition-axis values must map to disjoint
            // intervals: the stride dominates the in-chunk spread.
            let spread = off_hi.checked_sub(off_lo)?;
            if c_axis == 0 || c_axis.checked_abs()? <= spread {
                return None;
            }
            bufs.push(ResolvedBuf {
                name: b.name.clone(),
                c: c_axis,
                off_lo,
                off_hi,
            });
        }
        Some(ChunkPlan { along_rows, bufs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::FloatVec;
    use crate::ast::Access;
    use crate::ast::TypeRef;
    use crate::dsl::*;
    use crate::interp::{run_kernel, BufferMap};
    use crate::typeck::check_kernel;

    /// Runs both the interpreter and the analysis and asserts identical
    /// counts.
    fn assert_counts_match(kernel: &Kernel, launch: &Launch, buffers: &mut BufferMap) {
        check_kernel(kernel).unwrap();
        let dynamic = run_kernel(kernel, buffers, launch).unwrap();
        let stat = count_launch(kernel, launch).unwrap();
        assert_eq!(stat, dynamic, "static and dynamic counts must agree");
    }

    #[test]
    fn matmul_counts_match_interpreter() {
        let n = 6usize;
        let k = kernel("mm")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Single, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("i", global_id(1)),
                let_("j", global_id(0)),
                if_(
                    lt(var("i"), var("n")),
                    vec![
                        let_acc("acc", "c", flit(0.0)),
                        for_(
                            "kk",
                            int(0),
                            var("n"),
                            vec![add_assign(
                                "acc",
                                load("a", var("i") * var("n") + var("kk"))
                                    * load("b", var("kk") * var("n") + var("j")),
                            )],
                        ),
                        store("c", var("i") * var("n") + var("j"), var("acc")),
                    ],
                ),
            ]);
        let mut bufs = BufferMap::new();
        bufs.insert(
            "a".into(),
            FloatVec::from_f64_slice(&vec![1.0; n * n], Precision::Double),
        );
        bufs.insert(
            "b".into(),
            FloatVec::from_f64_slice(&vec![1.0; n * n], Precision::Single),
        );
        bufs.insert("c".into(), FloatVec::zeros(n * n, Precision::Double));
        let launch = Launch::two_d(n, n).arg_int("n", n as i64);
        assert_counts_match(&k, &launch, &mut bufs);
    }

    #[test]
    fn guarded_launch_counts_match() {
        // Launch wider than n: the guard is false for some items; the
        // analysis resolves the integer condition exactly per item.
        let k = kernel("guarded")
            .buffer("c", Precision::Single, Access::Write)
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    lt(var("i"), var("n")),
                    vec![store("c", var("i"), flit(1.0))],
                ),
            ]);
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(5, Precision::Single));
        let launch = Launch::one_d(13).arg_int("n", 5);
        assert_counts_match(&k, &launch, &mut bufs);
    }

    #[test]
    fn triangular_loop_counts_match() {
        // Inner loop bound depends on the outer loop variable.
        let n = 7usize;
        let k = kernel("tri")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                let_acc("acc", "c", flit(0.0)),
                for_(
                    "j",
                    var("i") + int(1),
                    var("n"),
                    vec![add_assign("acc", load("a", var("j")))],
                ),
                store("c", var("i"), var("acc")),
            ]);
        let mut bufs = BufferMap::new();
        bufs.insert(
            "a".into(),
            FloatVec::from_f64_slice(&vec![1.0; n], Precision::Double),
        );
        bufs.insert("c".into(), FloatVec::zeros(n, Precision::Double));
        let launch = Launch::one_d(n).arg_int("n", n as i64);
        assert_counts_match(&k, &launch, &mut bufs);
    }

    #[test]
    fn casts_and_mixed_precision_counts_match() {
        let k = kernel("mix")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Half, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                let_("x", cast(Precision::Half, load("a", var("i")))),
                store("c", var("i"), sqrt(var("x")) * var("x") + flit(1.0)),
            ]);
        let mut bufs = BufferMap::new();
        bufs.insert(
            "a".into(),
            FloatVec::from_f64_slice(&[4.0; 3], Precision::Double),
        );
        bufs.insert("c".into(), FloatVec::zeros(3, Precision::Half));
        assert_counts_match(&k, &Launch::one_d(3), &mut bufs);
    }

    #[test]
    fn data_dependent_branch_takes_heavier_side() {
        let k = kernel("dd")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                let_("x", load("a", var("i"))),
                if_else(
                    gt(var("x"), flit(0.0)),
                    vec![store("c", var("i"), var("x") * var("x") + flit(1.0))],
                    vec![store("c", var("i"), var("x"))],
                ),
            ]);
        check_kernel(&k).unwrap();
        let counts = count_launch(&k, &Launch::one_d(4)).unwrap();
        // The heavier branch has 1 mul + 1 add per item.
        assert_eq!(counts.at(Precision::Double).mul, 4);
        assert_eq!(counts.at(Precision::Double).add_sub, 4);
    }

    #[test]
    fn data_dependent_bound_is_an_error() {
        let k = kernel("bad")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![
                let_ty(
                    "m",
                    ScalarType::Int,
                    Expr::Cast {
                        to: TypeRef::Concrete(ScalarType::Int),
                        arg: Box::new(load("a", int(0))),
                    },
                ),
                for_("j", int(0), var("m"), vec![store("c", var("j"), flit(0.0))]),
            ]);
        check_kernel(&k).unwrap();
        let err = count_launch(&k, &Launch::one_d(1)).unwrap_err();
        assert!(matches!(err, AnalysisError::DataDependentBound(_)), "{err}");
    }

    #[test]
    fn missing_arg_is_reported() {
        let k = kernel("k").int_param("n").body(vec![]);
        let err = count_launch(&k, &Launch::one_d(1)).unwrap_err();
        assert!(matches!(err, AnalysisError::MissingArg(_)));
    }

    #[test]
    fn unbound_var_is_a_typed_error_not_a_panic() {
        // Malformed kernel that skips the type checker: a serving worker
        // must get a typed error back, never a panic.
        let k = kernel("loose")
            .buffer("c", Precision::Single, Access::Write)
            .body(vec![store("c", int(0), var("ghost"))]);
        let err = count_launch(&k, &Launch::one_d(1)).unwrap_err();
        assert!(
            matches!(err, AnalysisError::UnboundVar(ref n) if n == "ghost"),
            "{err}"
        );
    }

    #[test]
    fn store_through_non_buffer_is_a_typed_error_not_a_panic() {
        let k = kernel("loose2")
            .int_param("n")
            .body(vec![store("n", int(0), flit(1.0))]);
        let launch = Launch::one_d(1).arg_int("n", 1);
        let err = count_launch(&k, &launch).unwrap_err();
        assert!(
            matches!(err, AnalysisError::NotABuffer(ref n) if n == "n"),
            "{err}"
        );
    }

    #[test]
    fn dangling_elem_of_is_a_typed_error_not_a_panic() {
        let k = kernel("loose3")
            .buffer("c", Precision::Single, Access::Write)
            .body(vec![store(
                "c",
                int(0),
                Expr::Cast {
                    to: TypeRef::ElemOf("ghost".into()),
                    arg: Box::new(flit(1.0)),
                },
            )]);
        let err = count_launch(&k, &Launch::one_d(1)).unwrap_err();
        assert!(
            matches!(err, AnalysisError::NotABuffer(ref n) if n == "ghost"),
            "{err}"
        );
    }

    #[test]
    fn uniform_kernel_is_scaled_not_iterated() {
        // No control dependence on ids: per-item counts times items.
        let k = kernel("u")
            .buffer("a", Precision::Single, Access::Read)
            .buffer("c", Precision::Single, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                store("c", var("i"), load("a", var("i")) * flit(2.0)),
            ]);
        check_kernel(&k).unwrap();
        let counts = count_launch(&k, &Launch::one_d(1_000_000)).unwrap();
        assert_eq!(counts.at(Precision::Single).mul, 1_000_000);
        assert_eq!(counts.at(Precision::Single).loads, 1_000_000);
    }

    fn gemm_kernel() -> Kernel {
        kernel("mm")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                let_acc("acc", "c", flit(0.0)),
                for_(
                    "kk",
                    int(0),
                    var("n"),
                    vec![add_assign(
                        "acc",
                        load("a", var("i") * var("n") + var("kk"))
                            * load("b", var("kk") * var("n") + var("j")),
                    )],
                ),
                store("c", var("i") * var("n") + var("j"), var("acc")),
            ])
    }

    #[test]
    fn gemm_store_pattern_is_provably_disjoint() {
        let k = gemm_kernel();
        let ParallelSafety::Disjoint(summary) = parallel_safety(&k) else {
            panic!("row-major gemm store must be provably disjoint");
        };
        let n = 6usize;
        let launch = Launch::two_d(n, n).arg_int("n", n as i64);
        let plan = summary.resolve(&launch).expect("resolvable");
        assert!(plan.along_rows());
        assert_eq!(plan.buffers().len(), 1, "only `c` is stored");
        let c = &plan.buffers()[0];
        assert_eq!(c.name(), "c");
        // Row chunks [0,3) and [3,6) must occupy disjoint intervals.
        let (lo1, hi1) = c.interval(0, 3).unwrap();
        let (lo2, hi2) = c.interval(3, 6).unwrap();
        assert!(hi1 < lo2, "chunk intervals overlap: {hi1} vs {lo2}");
        assert!(lo1 >= 0 && (hi2 as usize) < n * n, "within the buffer");
    }

    #[test]
    fn data_dependent_store_index_is_unproven() {
        let k = kernel("scatter")
            .buffer("idx", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                let_ty(
                    "t",
                    ScalarType::Int,
                    Expr::Cast {
                        to: TypeRef::Concrete(ScalarType::Int),
                        arg: Box::new(load("idx", var("i"))),
                    },
                ),
                store("c", var("t"), flit(1.0)),
            ]);
        assert!(matches!(parallel_safety(&k), ParallelSafety::Unproven(_)));
    }

    #[test]
    fn loop_variable_store_index_is_unproven() {
        let k = kernel("rowfill")
            .buffer("c", Precision::Double, Access::Write)
            .int_param("n")
            .body(vec![for_(
                "j",
                int(0),
                var("n"),
                vec![store("c", var("j"), flit(0.0))],
            )]);
        assert!(matches!(parallel_safety(&k), ParallelSafety::Unproven(_)));
    }

    #[test]
    fn loading_a_stored_buffer_at_a_foreign_index_is_unproven() {
        // c[i] = c[i+1] — the load races with a neighbouring item's store.
        // The load *is* affine, but with a different constant term; that
        // widens the interval spread, so resolve() still proves row
        // disjointness only when the stride dominates. With stride 1 the
        // spread (1) is not dominated, so resolution must fail.
        let k = kernel("shift")
            .buffer("c", Precision::Double, Access::ReadWrite)
            .body(vec![
                let_("i", global_id(0)),
                store("c", var("i"), load("c", var("i") + int(1))),
            ]);
        let ParallelSafety::Disjoint(summary) = parallel_safety(&k) else {
            panic!("affine sites are summarizable");
        };
        assert!(summary.resolve(&Launch::one_d(8)).is_none());
    }

    #[test]
    fn mismatched_store_sites_fail_resolution() {
        // The `tri` shape: stores at i*n+j and j*n+i disagree on their
        // global-id coefficients, so no chunking along either axis is
        // disjoint.
        let k = kernel("tri")
            .buffer("c", Precision::Single, Access::ReadWrite)
            .int_param("n")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_else(
                    lt(var("i"), var("j")),
                    vec![store("c", var("i") * var("n") + var("j"), flit(1.0))],
                    vec![store("c", var("j") * var("n") + var("i"), flit(2.0))],
                ),
            ]);
        let ParallelSafety::Disjoint(summary) = parallel_safety(&k) else {
            panic!("both sites are affine");
        };
        let launch = Launch::two_d(9, 9).arg_int("n", 9);
        assert!(summary.resolve(&launch).is_none());
    }

    #[test]
    fn one_d_stores_resolve_along_columns() {
        let k = kernel("scale")
            .buffer("x", Precision::Double, Access::Read)
            .buffer("y", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                store("y", var("i"), load("x", var("i")) * flit(2.0)),
            ]);
        let ParallelSafety::Disjoint(summary) = parallel_safety(&k) else {
            panic!("unit-stride store must be disjoint");
        };
        let plan = summary.resolve(&Launch::one_d(16)).expect("resolvable");
        assert!(!plan.along_rows());
        let y = &plan.buffers()[0];
        assert_eq!(y.interval(0, 8).unwrap(), (0, 7));
        assert_eq!(y.interval(8, 16).unwrap(), (8, 15));
    }

    #[test]
    fn guarded_saxpy_resolves_with_symbolic_bounds() {
        // The guard `if (i < n)` over-approximates: the store site is
        // recorded unconditionally, which is sound (actual writes are a
        // subset of the summarized set).
        let k = kernel("saxpy")
            .buffer("x", Precision::Double, Access::Read)
            .buffer("y", Precision::Double, Access::ReadWrite)
            .float_param_like("a", "x")
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    lt(var("i"), var("n")),
                    vec![store(
                        "y",
                        var("i"),
                        var("a") * load("x", var("i")) + load("y", var("i")),
                    )],
                ),
            ]);
        let ParallelSafety::Disjoint(summary) = parallel_safety(&k) else {
            panic!("guarded unit-stride store must be disjoint");
        };
        let launch = Launch::one_d(64).arg_float("a", 2.0).arg_int("n", 40);
        let plan = summary.resolve(&launch).expect("resolvable");
        // The full-range interval covers the launch width, not just n:
        // the executor's bounds pre-check rejects it against len 40 and
        // falls back to sequential execution (which reports the guard's
        // true behaviour).
        assert_eq!(plan.buffers()[0].interval(0, 64).unwrap(), (0, 63));
    }
}
