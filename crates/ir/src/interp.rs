//! A precision-faithful interpreter for the kernel IR.
//!
//! The interpreter executes a kernel once per work-item of the launch
//! NDRange, computing every float operation *in the promoted precision of
//! its operands* (true binary16/32/64 arithmetic), so numeric error from
//! precision scaling is real. It simultaneously tallies exact dynamic
//! [`OpCounts`], which the simulator converts into virtual kernel time and
//! which validate the static analysis.

use crate::array::FloatVec;
use crate::ast::{Expr, Kernel, Param, Stmt};
use crate::counts::OpCounts;
use crate::types::{Precision, ScalarType};
use crate::value::{CmpOp, FloatBinOp, Scalar, UnaryFn};
use core::fmt;
use std::collections::HashMap;

/// Buffers bound to a kernel launch, by parameter name.
pub type BufferMap = HashMap<String, FloatVec>;

/// A scalar argument value supplied by the host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArgValue {
    /// Bound to integer parameters.
    Int(i64),
    /// Bound to float parameters; converted to the parameter's (possibly
    /// buffer-tracking) precision at launch, exactly as `clSetKernelArg`
    /// reinterprets host data.
    Float(f64),
}

/// A kernel launch descriptor: NDRange plus scalar arguments by name.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Launch {
    /// Global work size `[x, y]`; use `[n, 1]` for 1-D launches.
    pub global: [usize; 2],
    /// Scalar arguments by parameter name.
    pub args: Vec<(String, ArgValue)>,
}

impl Launch {
    /// A 1-D launch of `n` work-items.
    #[must_use]
    pub fn one_d(n: usize) -> Launch {
        Launch {
            global: [n, 1],
            args: Vec::new(),
        }
    }

    /// A 2-D launch.
    #[must_use]
    pub fn two_d(x: usize, y: usize) -> Launch {
        Launch {
            global: [x, y],
            args: Vec::new(),
        }
    }

    /// Adds an integer argument.
    #[must_use]
    pub fn arg_int(mut self, name: impl Into<String>, v: i64) -> Launch {
        self.args.push((name.into(), ArgValue::Int(v)));
        self
    }

    /// Adds a float argument.
    #[must_use]
    pub fn arg_float(mut self, name: impl Into<String>, v: f64) -> Launch {
        self.args.push((name.into(), ArgValue::Float(v)));
        self
    }

    /// Total number of work-items.
    #[must_use]
    pub fn items(&self) -> usize {
        self.global[0] * self.global[1]
    }
}

/// A runtime execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A buffer parameter had no bound [`FloatVec`].
    MissingBuffer(String),
    /// A bound buffer's precision differs from the kernel's declared
    /// element type.
    BufferPrecisionMismatch {
        /// Buffer parameter name.
        name: String,
        /// Declared element precision.
        declared: Precision,
        /// Precision of the bound data.
        bound: Precision,
    },
    /// A scalar parameter had no argument.
    MissingArg(String),
    /// An argument had the wrong kind (int vs float).
    ArgKindMismatch(String),
    /// An out-of-bounds access.
    OutOfBounds {
        /// Buffer parameter name.
        buf: String,
        /// Offending index.
        index: i64,
        /// Buffer length.
        len: usize,
    },
    /// A variable was used or assigned without being declared — a
    /// malformed kernel that bypassed the type checker.
    UnboundVar(String),
    /// A load/store targeted a name that is not a buffer parameter.
    NotABuffer(String),
    /// A value had the wrong runtime kind for its context (e.g. a float
    /// where an index was expected, a boolean in arithmetic) — a
    /// malformed kernel that bypassed the type checker.
    KindError(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingBuffer(n) => write!(f, "no buffer bound for parameter `{n}`"),
            ExecError::BufferPrecisionMismatch {
                name,
                declared,
                bound,
            } => write!(
                f,
                "buffer `{name}` declared {declared} but bound data is {bound}"
            ),
            ExecError::MissingArg(n) => write!(f, "no value for scalar parameter `{n}`"),
            ExecError::ArgKindMismatch(n) => {
                write!(f, "argument `{n}` has the wrong kind (int vs float)")
            }
            ExecError::OutOfBounds { buf, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for buffer `{buf}` (len {len})"
                )
            }
            ExecError::UnboundVar(n) => write!(f, "variable `{n}` is not declared"),
            ExecError::NotABuffer(n) => write!(f, "`{n}` is not a buffer parameter"),
            ExecError::KindError(what) => write!(f, "kind error: {what}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Runs `kernel` over the launch NDRange against `buffers`, returning the
/// exact dynamic operation counts.
///
/// # Errors
///
/// See [`ExecError`]. Buffers must be pre-bound at exactly the kernel's
/// declared element precisions (the runtime layer converts them first —
/// that conversion is a *measured event*, never an implicit one).
pub fn run_kernel(
    kernel: &Kernel,
    buffers: &mut BufferMap,
    launch: &Launch,
) -> Result<OpCounts, ExecError> {
    // Validate bindings up-front.
    let mut scalars: HashMap<&str, Scalar> = HashMap::new();
    for p in &kernel.params {
        match p {
            Param::Buffer { name, elem, .. } => match buffers.get(name.as_str()) {
                None => return Err(ExecError::MissingBuffer(name.clone())),
                Some(v) if v.precision() != *elem => {
                    return Err(ExecError::BufferPrecisionMismatch {
                        name: name.clone(),
                        declared: *elem,
                        bound: v.precision(),
                    })
                }
                Some(_) => {}
            },
            Param::Scalar { name, ty } => {
                let arg = launch
                    .args
                    .iter()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .ok_or_else(|| ExecError::MissingArg(name.clone()))?;
                let resolved = kernel.resolve(ty);
                let value = match (resolved, arg) {
                    (ScalarType::Int, ArgValue::Int(v)) => Scalar::Int(v),
                    (ScalarType::Float(p), ArgValue::Float(v)) => Scalar::float(v, p),
                    // Binding an int literal to a float param is a common
                    // host idiom; accept it with one conversion.
                    (ScalarType::Float(p), ArgValue::Int(v)) => Scalar::float(v as f64, p),
                    _ => return Err(ExecError::ArgKindMismatch(name.clone())),
                };
                scalars.insert(name.as_str(), value);
            }
        }
    }

    let mut counts = OpCounts::new();
    let mut interp = Interp {
        kernel,
        buffers,
        scalars,
        locals: Vec::new(),
        gid: [0, 0],
        counts: &mut counts,
    };

    for gy in 0..launch.global[1] {
        for gx in 0..launch.global[0] {
            interp.gid = [gx as i64, gy as i64];
            interp.locals.clear();
            interp.locals.push(HashMap::new());
            interp.block(&kernel.body)?;
        }
    }
    Ok(counts)
}

struct Interp<'a> {
    kernel: &'a Kernel,
    buffers: &'a mut BufferMap,
    scalars: HashMap<&'a str, Scalar>,
    locals: Vec<HashMap<&'a str, Scalar>>,
    gid: [i64; 2],
    counts: &'a mut OpCounts,
}

/// Whether an expression's float precision is still context-determined
/// (mirrors the checker's `WeakFloat`).
fn is_weak(e: &Expr) -> bool {
    match e {
        Expr::FloatConst(_) => true,
        Expr::Unary { arg, .. } => is_weak(arg),
        Expr::Bin { lhs, rhs, .. } => is_weak(lhs) && is_weak(rhs),
        Expr::Select { then, els, .. } => is_weak(then) && is_weak(els),
        _ => false,
    }
}

impl<'a> Interp<'a> {
    fn block(&mut self, stmts: &'a [Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn scope<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ExecError>,
    ) -> Result<T, ExecError> {
        self.locals.push(HashMap::new());
        let r = f(self);
        self.locals.pop();
        r
    }

    fn lookup(&self, name: &str) -> Option<Scalar> {
        for scope in self.locals.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(*v);
            }
        }
        self.scalars.get(name).copied()
    }

    /// The innermost scope. Self-healing rather than panicking: a caller
    /// that somehow drained the stack gets a fresh scope, so a malformed
    /// kernel degrades into a typed error downstream instead of aborting.
    fn top_scope(&mut self) -> &mut HashMap<&'a str, Scalar> {
        if self.locals.is_empty() {
            self.locals.push(HashMap::new());
        }
        let top = self.locals.len() - 1;
        &mut self.locals[top]
    }

    fn stmt(&mut self, stmt: &'a Stmt) -> Result<(), ExecError> {
        match stmt {
            Stmt::Let { name, ty, value } => {
                let hint = ty.as_ref().and_then(|t| match self.kernel.resolve(t) {
                    ScalarType::Float(p) => Some(p),
                    _ => None,
                });
                let mut v = self.eval(value, hint)?;
                if let Some(t) = ty {
                    v = self.coerce(v, self.kernel.resolve(t));
                }
                self.top_scope().insert(name.as_str(), v);
                Ok(())
            }
            Stmt::Assign { name, value } => {
                let current = self
                    .lookup(name)
                    .ok_or_else(|| ExecError::UnboundVar(name.clone()))?;
                let hint = current.precision();
                let v = self.eval(value, hint)?;
                let v = self.coerce(v, current.scalar_type());
                for scope in self.locals.iter_mut().rev() {
                    if let Some(slot) = scope.get_mut(name.as_str()) {
                        *slot = v;
                        return Ok(());
                    }
                }
                // The checker guarantees assignment targets are locals; a
                // kernel that bypassed it degrades into a typed error.
                Err(ExecError::UnboundVar(name.clone()))
            }
            Stmt::Store { buf, index, value } => {
                let elem = self
                    .kernel
                    .buffer_elem(buf)
                    .ok_or_else(|| ExecError::NotABuffer(buf.clone()))?;
                let idx = self.eval(index, None)?.try_int().ok_or_else(|| {
                    ExecError::KindError(format!("index into `{buf}` must be an integer"))
                })?;
                let v = self.eval(value, Some(elem))?;
                let stored = v.try_f64().ok_or_else(|| {
                    ExecError::KindError(format!("cannot store a boolean into `{buf}`"))
                })?;
                // Implicit store conversion is a real convert instruction
                // when the value's precision differs from the buffer's.
                if v.precision() != Some(elem) {
                    self.counts.converts += 1;
                }
                let arr = self
                    .buffers
                    .get_mut(buf.as_str())
                    .ok_or_else(|| ExecError::MissingBuffer(buf.clone()))?;
                let len = arr.len();
                if idx < 0 || idx as usize >= len {
                    return Err(ExecError::OutOfBounds {
                        buf: buf.clone(),
                        index: idx,
                        len,
                    });
                }
                self.counts.at_mut(elem).stores += 1;
                arr.set(idx as usize, stored);
                Ok(())
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let s = self.eval(start, None)?.try_int().ok_or_else(|| {
                    ExecError::KindError(format!("loop bound for `{var}` must be an integer"))
                })?;
                let e = self.eval(end, None)?.try_int().ok_or_else(|| {
                    ExecError::KindError(format!("loop bound for `{var}` must be an integer"))
                })?;
                // Loop bookkeeping: one compare + one increment per trip.
                self.counts.int_ops += 2 * (e - s).max(0) as u64;
                self.scope(|cx| {
                    for i in s..e {
                        cx.top_scope().insert(var.as_str(), Scalar::Int(i));
                        cx.block(body)?;
                    }
                    Ok(())
                })
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self
                    .eval(cond, None)?
                    .try_bool()
                    .ok_or_else(|| ExecError::KindError("if condition must be a boolean".into()))?;
                if c {
                    self.scope(|cx| cx.block(then_body))
                } else {
                    self.scope(|cx| cx.block(else_body))
                }
            }
        }
    }

    /// Converts a scalar to a target type, counting a real conversion when
    /// the representation changes.
    fn coerce(&mut self, v: Scalar, target: ScalarType) -> Scalar {
        match (v, target) {
            (Scalar::Bool(_), _) => v,
            (_, ScalarType::Bool) => v,
            (Scalar::Int(_), ScalarType::Int) => v,
            (Scalar::Int(x), ScalarType::Float(p)) => {
                self.counts.converts += 1;
                Scalar::float(x as f64, p)
            }
            (_, ScalarType::Int) => {
                self.counts.converts += 1;
                Scalar::Int(v.as_f64().trunc() as i64)
            }
            (_, ScalarType::Float(p)) => {
                if v.precision() == Some(p) {
                    v
                } else {
                    self.counts.converts += 1;
                    v.cast_float(p)
                }
            }
        }
    }

    fn eval(&mut self, e: &'a Expr, hint: Option<Precision>) -> Result<Scalar, ExecError> {
        match e {
            Expr::FloatConst(v) => Ok(Scalar::float(*v, hint.unwrap_or(Precision::Double))),
            Expr::IntConst(v) => Ok(Scalar::Int(*v)),
            Expr::GlobalId(d) => Ok(Scalar::Int(if *d < 2 { self.gid[*d] } else { 0 })),
            Expr::Var(name) => self
                .lookup(name)
                .ok_or_else(|| ExecError::UnboundVar(name.clone())),
            Expr::Load { buf, index } => {
                let idx = self.eval(index, None)?.try_int().ok_or_else(|| {
                    ExecError::KindError(format!("index into `{buf}` must be an integer"))
                })?;
                let arr = self
                    .buffers
                    .get(buf.as_str())
                    .ok_or_else(|| ExecError::MissingBuffer(buf.clone()))?;
                let len = arr.len();
                if idx < 0 || idx as usize >= len {
                    return Err(ExecError::OutOfBounds {
                        buf: buf.clone(),
                        index: idx,
                        len,
                    });
                }
                let v = arr.get_scalar(idx as usize);
                match v.precision() {
                    Some(p) => self.counts.at_mut(p).loads += 1,
                    None => {
                        return Err(ExecError::KindError(format!(
                            "buffer `{buf}` yielded a non-float value"
                        )))
                    }
                }
                Ok(v)
            }
            Expr::Unary { op, arg } => {
                let v = self.eval(arg, hint)?;
                if matches!(v, Scalar::Bool(_)) {
                    return Err(ExecError::KindError(
                        "boolean passed to a math function".into(),
                    ));
                }
                match v.precision() {
                    Some(p) => {
                        let slot = self.counts.at_mut(p);
                        match op {
                            UnaryFn::Neg | UnaryFn::Fabs => slot.add_sub += 1,
                            _ => slot.special += 1,
                        }
                    }
                    None => self.counts.int_ops += 1,
                }
                Ok(op.apply(v))
            }
            Expr::Bin { op, lhs, rhs } => {
                let (a, b) = self.eval_pair(lhs, rhs, hint)?;
                if matches!(a, Scalar::Bool(_)) || matches!(b, Scalar::Bool(_)) {
                    return Err(ExecError::KindError("boolean operand in arithmetic".into()));
                }
                self.count_bin(*op, a, b);
                Ok(Scalar::binop(*op, a, b))
            }
            Expr::Cmp { op, lhs, rhs } => {
                let (a, b) = self.eval_pair(lhs, rhs, None)?;
                if matches!(a, Scalar::Bool(_)) || matches!(b, Scalar::Bool(_)) {
                    return Err(ExecError::KindError("boolean operand in comparison".into()));
                }
                match promoted(a, b) {
                    Some(p) => self.counts.at_mut(p).cmp += 1,
                    None => self.counts.int_ops += 1,
                }
                Ok(Scalar::compare(*op, a, b))
            }
            Expr::Cast { to, arg } => {
                let v = self.eval(arg, None)?;
                Ok(self.coerce(v, self.kernel.resolve(to)))
            }
            Expr::Select { cond, then, els } => {
                let c = self.eval(cond, None)?.try_bool().ok_or_else(|| {
                    ExecError::KindError("select condition must be a boolean".into())
                })?;
                // Both sides are evaluated on a GPU (predication), but only
                // the taken side's value is kept; we evaluate both so the
                // counts reflect lock-step SIMT execution.
                let (a, b) = self.eval_pair(then, els, hint)?;
                // Mixed-precision arms convert the narrower arm to the
                // promoted type before selecting (one real conversion,
                // branch-independent — the checker rejects int/float
                // mixes).
                match (a.precision(), b.precision()) {
                    (Some(pa), Some(pb)) if pa != pb => {
                        let p = pa.max(pb);
                        let a2 = if pa < p {
                            self.coerce(a, ScalarType::Float(p))
                        } else {
                            a
                        };
                        let b2 = if pb < p {
                            self.coerce(b, ScalarType::Float(p))
                        } else {
                            b
                        };
                        Ok(if c { a2 } else { b2 })
                    }
                    _ => Ok(if c { a } else { b }),
                }
            }
        }
    }

    /// Evaluates a pair of operands, resolving weak literals against the
    /// other side's precision (mirroring the checker's promotion rules).
    fn eval_pair(
        &mut self,
        lhs: &'a Expr,
        rhs: &'a Expr,
        hint: Option<Precision>,
    ) -> Result<(Scalar, Scalar), ExecError> {
        let lw = is_weak(lhs);
        let rw = is_weak(rhs);
        if lw && !rw {
            let b = self.eval(rhs, hint)?;
            let a = self.eval(lhs, b.precision())?;
            Ok((a, b))
        } else if rw && !lw {
            let a = self.eval(lhs, hint)?;
            let b = self.eval(rhs, a.precision())?;
            Ok((a, b))
        } else {
            let a = self.eval(lhs, hint)?;
            let b = self.eval(rhs, hint)?;
            Ok((a, b))
        }
    }

    fn count_bin(&mut self, op: FloatBinOp, a: Scalar, b: Scalar) {
        match promoted(a, b) {
            Some(p) => {
                let slot = self.counts.at_mut(p);
                match op {
                    FloatBinOp::Add | FloatBinOp::Sub | FloatBinOp::Min | FloatBinOp::Max => {
                        slot.add_sub += 1;
                    }
                    FloatBinOp::Mul => slot.mul += 1,
                    FloatBinOp::Div => slot.div += 1,
                }
            }
            None => self.counts.int_ops += 1,
        }
    }
}

/// The promotion precision of two runtime values, or `None` for int/int.
fn promoted(a: Scalar, b: Scalar) -> Option<Precision> {
    match (a.precision(), b.precision()) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// Convenience for evaluating a comparison operator outside the
/// interpreter (used by tests).
#[must_use]
pub fn eval_cmp(op: CmpOp, a: f64, b: f64) -> bool {
    Scalar::compare(op, Scalar::F64(a), Scalar::F64(b)).as_bool()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Access;
    use crate::dsl::*;
    use crate::typeck::check_kernel;

    fn saxpy_kernel(elem: Precision) -> Kernel {
        kernel("saxpy")
            .buffer("x", elem, Access::Read)
            .buffer("y", elem, Access::ReadWrite)
            .float_param_like("a", "x")
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    lt(var("i"), var("n")),
                    vec![store(
                        "y",
                        var("i"),
                        var("a") * load("x", var("i")) + load("y", var("i")),
                    )],
                ),
            ])
    }

    fn run_saxpy(elem: Precision, n: usize) -> (FloatVec, OpCounts) {
        let k = saxpy_kernel(elem);
        check_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| 2.0 * i as f64).collect();
        bufs.insert("x".into(), FloatVec::from_f64_slice(&xs, elem));
        bufs.insert("y".into(), FloatVec::from_f64_slice(&ys, elem));
        let launch = Launch::one_d(n).arg_float("a", 3.0).arg_int("n", n as i64);
        let counts = run_kernel(&k, &mut bufs, &launch).unwrap();
        (bufs.remove("y").unwrap(), counts)
    }

    #[test]
    fn saxpy_computes_correctly_in_double() {
        let (y, counts) = run_saxpy(Precision::Double, 16);
        for i in 0..16 {
            assert_eq!(y.get(i), 3.0 * i as f64 + 2.0 * i as f64);
        }
        let d = counts.at(Precision::Double);
        assert_eq!(d.mul, 16);
        assert_eq!(d.add_sub, 16);
        assert_eq!(d.loads, 32);
        assert_eq!(d.stores, 16);
        assert_eq!(counts.converts, 0, "same-precision store is free");
    }

    #[test]
    fn saxpy_in_half_loses_precision_for_large_values() {
        let n = 1400;
        let (y, _) = run_saxpy(Precision::Half, n);
        // 3*1399 + 2*1399 = 6995; binary16 spacing at 6995 is 4.
        let exact = 6995.0;
        let got = y.get(n - 1);
        assert_ne!(got, exact);
        assert!((got - exact).abs() <= 4.0);
    }

    #[test]
    fn counts_attribute_to_the_buffer_precision() {
        let (_, counts) = run_saxpy(Precision::Single, 8);
        assert_eq!(counts.at(Precision::Single).mul, 8);
        assert_eq!(counts.at(Precision::Double).mul, 0);
        assert_eq!(counts.at(Precision::Half).mul, 0);
    }

    #[test]
    fn guard_prevents_out_of_bounds() {
        // Launch is larger than n; the `if` guard must suppress accesses.
        let k = saxpy_kernel(Precision::Double);
        let mut bufs = BufferMap::new();
        bufs.insert("x".into(), FloatVec::zeros(8, Precision::Double));
        bufs.insert("y".into(), FloatVec::zeros(8, Precision::Double));
        let launch = Launch::one_d(32).arg_float("a", 1.0).arg_int("n", 8);
        run_kernel(&k, &mut bufs, &launch).unwrap();
    }

    #[test]
    fn unguarded_out_of_bounds_is_reported() {
        let k = kernel("oob")
            .buffer("x", Precision::Double, Access::Read)
            .body(vec![let_("v", load("x", global_id(0)))]);
        let mut bufs = BufferMap::new();
        bufs.insert("x".into(), FloatVec::zeros(4, Precision::Double));
        let err = run_kernel(&k, &mut bufs, &Launch::one_d(8)).unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::OutOfBounds {
                    index: 4,
                    len: 4,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn missing_buffer_and_arg_are_reported() {
        let k = saxpy_kernel(Precision::Double);
        let mut bufs = BufferMap::new();
        let err = run_kernel(&k, &mut bufs, &Launch::one_d(1)).unwrap_err();
        assert!(matches!(err, ExecError::MissingBuffer(_)));

        bufs.insert("x".into(), FloatVec::zeros(1, Precision::Double));
        bufs.insert("y".into(), FloatVec::zeros(1, Precision::Double));
        let err = run_kernel(&k, &mut bufs, &Launch::one_d(1)).unwrap_err();
        assert!(matches!(err, ExecError::MissingArg(_)));
    }

    #[test]
    fn precision_mismatch_is_reported() {
        let k = saxpy_kernel(Precision::Single);
        let mut bufs = BufferMap::new();
        bufs.insert("x".into(), FloatVec::zeros(1, Precision::Double));
        bufs.insert("y".into(), FloatVec::zeros(1, Precision::Single));
        let launch = Launch::one_d(1).arg_float("a", 1.0).arg_int("n", 1);
        let err = run_kernel(&k, &mut bufs, &launch).unwrap_err();
        assert!(matches!(err, ExecError::BufferPrecisionMismatch { .. }));
    }

    #[test]
    fn mixed_precision_buffers_promote() {
        // c[i] = a[i] (half) * b[i] (single) computed in single, stored to
        // double → one convert per store.
        let k = kernel("mix")
            .buffer("a", Precision::Half, Access::Read)
            .buffer("b", Precision::Single, Access::Read)
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                store("c", var("i"), load("a", var("i")) * load("b", var("i"))),
            ]);
        check_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        bufs.insert(
            "a".into(),
            FloatVec::from_f64_slice(&[1.5; 4], Precision::Half),
        );
        bufs.insert(
            "b".into(),
            FloatVec::from_f64_slice(&[2.0; 4], Precision::Single),
        );
        bufs.insert("c".into(), FloatVec::zeros(4, Precision::Double));
        let counts = run_kernel(&k, &mut bufs, &Launch::one_d(4)).unwrap();
        assert_eq!(counts.at(Precision::Single).mul, 4, "promoted to single");
        assert_eq!(counts.converts, 4, "one store conversion per item");
        assert_eq!(bufs["c"].get(0), 3.0);
    }

    #[test]
    fn explicit_casts_count_as_converts() {
        // In-kernel scaling shape: load double, cast to half, compute,
        // cast back on store.
        let k = kernel("ik")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                let_("x", cast(Precision::Half, load("a", var("i")))),
                store("c", var("i"), var("x") * var("x")),
            ]);
        check_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        bufs.insert(
            "a".into(),
            FloatVec::from_f64_slice(&[3.0; 2], Precision::Double),
        );
        bufs.insert("c".into(), FloatVec::zeros(2, Precision::Double));
        let counts = run_kernel(&k, &mut bufs, &Launch::one_d(2)).unwrap();
        assert_eq!(counts.at(Precision::Half).mul, 2);
        // Per item: 1 explicit cast + 1 implicit store conversion.
        assert_eq!(counts.converts, 4);
        assert_eq!(bufs["c"].get(0), 9.0);
    }

    #[test]
    fn accumulator_follows_buffer_precision() {
        // acc := ElemOf(c); with c at half, the reduction loses mass.
        let reduce = |elem: Precision| -> f64 {
            let k = kernel("red")
                .buffer("a", elem, Access::Read)
                .buffer("c", elem, Access::Write)
                .int_param("n")
                .body(vec![
                    let_acc("acc", "c", flit(0.0)),
                    for_(
                        "j",
                        int(0),
                        var("n"),
                        vec![add_assign("acc", load("a", var("j")))],
                    ),
                    store("c", int(0), var("acc")),
                ]);
            check_kernel(&k).unwrap();
            let n = 4096usize;
            let mut bufs = BufferMap::new();
            bufs.insert("a".into(), FloatVec::from_f64_slice(&vec![1.0; n], elem));
            bufs.insert("c".into(), FloatVec::zeros(1, elem));
            let launch = Launch::one_d(1).arg_int("n", n as i64);
            run_kernel(&k, &mut bufs, &launch).unwrap();
            bufs["c"].get(0)
        };
        assert_eq!(reduce(Precision::Double), 4096.0);
        // In binary16, the accumulator saturates at 2048: 2048 + 1 = 2048.
        assert_eq!(reduce(Precision::Half), 2048.0);
    }

    #[test]
    fn two_d_launch_orders_ids() {
        let k = kernel("id2")
            .buffer("c", Precision::Double, Access::Write)
            .int_param("w")
            .body(vec![
                let_("x", global_id(0)),
                let_("y", global_id(1)),
                store(
                    "c",
                    var("y") * var("w") + var("x"),
                    cast(Precision::Double, var("y") * var("w") + var("x")),
                ),
            ]);
        check_kernel(&k).unwrap();
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(12, Precision::Double));
        let launch = Launch::two_d(4, 3).arg_int("w", 4);
        run_kernel(&k, &mut bufs, &launch).unwrap();
        for i in 0..12 {
            assert_eq!(bufs["c"].get(i), i as f64);
        }
    }

    #[test]
    fn eval_cmp_helper() {
        assert!(eval_cmp(CmpOp::Lt, 1.0, 2.0));
        assert!(!eval_cmp(CmpOp::Gt, 1.0, 2.0));
    }

    #[test]
    fn malformed_kernels_degrade_into_typed_errors() {
        // Kernels that bypassed the type checker must surface typed
        // errors, never panic — a guarded run degrades instead of
        // aborting.
        let unbound = kernel("bad_var")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", int(0), var("ghost"))]);
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(1, Precision::Double));
        let err = run_kernel(&unbound, &mut bufs, &Launch::one_d(1)).unwrap_err();
        assert!(matches!(err, ExecError::UnboundVar(_)), "{err}");

        let not_a_buffer =
            kernel("bad_store")
                .int_param("n")
                .body(vec![store("n", int(0), flit(1.0))]);
        let err = run_kernel(
            &not_a_buffer,
            &mut BufferMap::new(),
            &Launch::one_d(1).arg_int("n", 1),
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::NotABuffer(_)), "{err}");

        let float_index = kernel("bad_index")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", flit(0.5), flit(1.0))]);
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(1, Precision::Double));
        let err = run_kernel(&float_index, &mut bufs, &Launch::one_d(1)).unwrap_err();
        assert!(matches!(err, ExecError::KindError(_)), "{err}");

        let bool_math = kernel("bad_bool")
            .buffer("c", Precision::Double, Access::Write)
            .body(vec![store("c", int(0), lt(int(0), int(1)) + flit(1.0))]);
        let mut bufs = BufferMap::new();
        bufs.insert("c".into(), FloatVec::zeros(1, Precision::Double));
        let err = run_kernel(&bool_math, &mut bufs, &Launch::one_d(1)).unwrap_err();
        assert!(matches!(err, ExecError::KindError(_)), "{err}");
    }
}
