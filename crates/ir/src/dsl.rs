//! A small builder DSL for writing kernels in Rust.
//!
//! Free functions build [`Expr`]s and [`Stmt`]s; `Expr` implements the
//! arithmetic operators so kernel bodies read close to OpenCL C:
//!
//! ```
//! use prescaler_ir::dsl::*;
//! use prescaler_ir::{Access, Precision};
//!
//! // c[i] = a[i] * b[i] for a 1-D launch.
//! let k = kernel("mul")
//!     .buffer("a", Precision::Double, Access::Read)
//!     .buffer("b", Precision::Double, Access::Read)
//!     .buffer("c", Precision::Double, Access::Write)
//!     .body(vec![
//!         let_("i", global_id(0)),
//!         store("c", var("i"), load("a", var("i")) * load("b", var("i"))),
//!     ]);
//! assert_eq!(k.name, "mul");
//! ```

use crate::ast::{Access, Expr, Ident, Kernel, Param, Stmt, TypeRef};
use crate::types::Precision;
use crate::value::{CmpOp, FloatBinOp, UnaryFn};
use core::ops::{Add, Div, Mul, Neg, Sub};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// A polymorphic float literal.
#[must_use]
pub fn flit(v: f64) -> Expr {
    Expr::FloatConst(v)
}

/// An integer literal.
#[must_use]
pub fn int(v: i64) -> Expr {
    Expr::IntConst(v)
}

/// A variable reference.
#[must_use]
pub fn var(name: impl Into<Ident>) -> Expr {
    Expr::Var(name.into())
}

/// `get_global_id(dim)`.
#[must_use]
pub fn global_id(dim: usize) -> Expr {
    Expr::GlobalId(dim)
}

/// `buf[index]`.
#[must_use]
pub fn load(buf: impl Into<Ident>, index: Expr) -> Expr {
    Expr::Load {
        buf: buf.into(),
        index: Box::new(index),
    }
}

/// An explicit conversion to a float precision.
#[must_use]
pub fn cast(p: Precision, e: Expr) -> Expr {
    Expr::Cast {
        to: TypeRef::from(p),
        arg: Box::new(e),
    }
}

/// An explicit conversion to the element type of `buf`.
#[must_use]
pub fn cast_elem_of(buf: impl Into<Ident>, e: Expr) -> Expr {
    Expr::Cast {
        to: TypeRef::ElemOf(buf.into()),
        arg: Box::new(e),
    }
}

/// `sqrt(e)` at the operand's precision.
#[must_use]
pub fn sqrt(e: Expr) -> Expr {
    unary(UnaryFn::Sqrt, e)
}

/// `exp(e)` at the operand's precision.
#[must_use]
pub fn exp(e: Expr) -> Expr {
    unary(UnaryFn::Exp, e)
}

/// `fabs(e)`.
#[must_use]
pub fn fabs(e: Expr) -> Expr {
    unary(UnaryFn::Fabs, e)
}

/// Applies a unary function.
#[must_use]
pub fn unary(op: UnaryFn, e: Expr) -> Expr {
    Expr::Unary {
        op,
        arg: Box::new(e),
    }
}

/// A binary arithmetic operation.
#[must_use]
pub fn bin(op: FloatBinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// `min(lhs, rhs)`.
#[must_use]
pub fn min2(lhs: Expr, rhs: Expr) -> Expr {
    bin(FloatBinOp::Min, lhs, rhs)
}

/// `max(lhs, rhs)`.
#[must_use]
pub fn max2(lhs: Expr, rhs: Expr) -> Expr {
    bin(FloatBinOp::Max, lhs, rhs)
}

/// A comparison.
#[must_use]
pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Cmp {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// `lhs < rhs`.
#[must_use]
pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
    cmp(CmpOp::Lt, lhs, rhs)
}

/// `lhs > rhs`.
#[must_use]
pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
    cmp(CmpOp::Gt, lhs, rhs)
}

/// `lhs <= rhs`.
#[must_use]
pub fn le(lhs: Expr, rhs: Expr) -> Expr {
    cmp(CmpOp::Le, lhs, rhs)
}

/// `cond ? then : els`.
#[must_use]
pub fn select(cond: Expr, then: Expr, els: Expr) -> Expr {
    Expr::Select {
        cond: Box::new(cond),
        then: Box::new(then),
        els: Box::new(els),
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        bin(FloatBinOp::Add, self, rhs)
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        bin(FloatBinOp::Sub, self, rhs)
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        bin(FloatBinOp::Mul, self, rhs)
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        bin(FloatBinOp::Div, self, rhs)
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        unary(UnaryFn::Neg, self)
    }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// Declares a local with an inferred type.
#[must_use]
pub fn let_(name: impl Into<Ident>, value: Expr) -> Stmt {
    Stmt::Let {
        name: name.into(),
        ty: None,
        value,
    }
}

/// Declares a local with an explicit type (or `ElemOf` reference).
#[must_use]
pub fn let_ty(name: impl Into<Ident>, ty: impl Into<TypeRef>, value: Expr) -> Stmt {
    Stmt::Let {
        name: name.into(),
        ty: Some(ty.into()),
        value,
    }
}

/// Declares an accumulator local whose type follows `buf`'s element type.
#[must_use]
pub fn let_acc(name: impl Into<Ident>, buf: impl Into<Ident>, value: Expr) -> Stmt {
    Stmt::Let {
        name: name.into(),
        ty: Some(TypeRef::ElemOf(buf.into())),
        value,
    }
}

/// Reassigns a local.
#[must_use]
pub fn assign(name: impl Into<Ident>, value: Expr) -> Stmt {
    Stmt::Assign {
        name: name.into(),
        value,
    }
}

/// `name += value`.
#[must_use]
pub fn add_assign(name: impl Into<Ident> + Clone, value: Expr) -> Stmt {
    let n = name.clone().into();
    assign(name, var(n) + value)
}

/// `buf[index] = value`.
#[must_use]
pub fn store(buf: impl Into<Ident>, index: Expr, value: Expr) -> Stmt {
    Stmt::Store {
        buf: buf.into(),
        index,
        value,
    }
}

/// `for (long var = start; var < end; ++var) body`.
#[must_use]
pub fn for_(var: impl Into<Ident>, start: Expr, end: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        var: var.into(),
        start,
        end,
        body,
    }
}

/// `if (cond) { then_body }`.
#[must_use]
pub fn if_(cond: Expr, then_body: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body,
        else_body: Vec::new(),
    }
}

/// `if (cond) { then_body } else { else_body }`.
#[must_use]
pub fn if_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body,
        else_body,
    }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// Starts building a kernel.
#[must_use]
pub fn kernel(name: impl Into<Ident>) -> KernelBuilder {
    KernelBuilder {
        name: name.into(),
        params: Vec::new(),
    }
}

/// Builder returned by [`kernel`].
#[derive(Debug)]
pub struct KernelBuilder {
    name: Ident,
    params: Vec<Param>,
}

impl KernelBuilder {
    /// Adds a buffer parameter.
    #[must_use]
    pub fn buffer(mut self, name: impl Into<Ident>, elem: Precision, access: Access) -> Self {
        self.params.push(Param::Buffer {
            name: name.into(),
            elem,
            access,
        });
        self
    }

    /// Adds an integer scalar parameter.
    #[must_use]
    pub fn int_param(mut self, name: impl Into<Ident>) -> Self {
        self.params.push(Param::Scalar {
            name: name.into(),
            ty: TypeRef::Concrete(crate::types::ScalarType::Int),
        });
        self
    }

    /// Adds a float scalar parameter whose precision tracks `buf`'s
    /// element type.
    #[must_use]
    pub fn float_param_like(mut self, name: impl Into<Ident>, buf: impl Into<Ident>) -> Self {
        self.params.push(Param::Scalar {
            name: name.into(),
            ty: TypeRef::ElemOf(buf.into()),
        });
        self
    }

    /// Adds a float scalar parameter with a fixed precision.
    #[must_use]
    pub fn float_param(mut self, name: impl Into<Ident>, p: Precision) -> Self {
        self.params.push(Param::Scalar {
            name: name.into(),
            ty: TypeRef::from(p),
        });
        self
    }

    /// Finishes the kernel with the given body.
    #[must_use]
    pub fn body(self, body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: self.name,
            params: self.params,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScalarType;

    #[test]
    fn operators_build_expected_trees() {
        let e = flit(1.0) + var("x") * int(2);
        match e {
            Expr::Bin {
                op: FloatBinOp::Add,
                rhs,
                ..
            } => match *rhs {
                Expr::Bin {
                    op: FloatBinOp::Mul,
                    ..
                } => {}
                other => panic!("expected Mul, got {other:?}"),
            },
            other => panic!("expected Add, got {other:?}"),
        }
        assert_eq!(-var("x"), unary(UnaryFn::Neg, var("x")));
    }

    #[test]
    fn add_assign_expands_to_self_reference() {
        let s = add_assign("acc", flit(1.0));
        assert_eq!(s, assign("acc", var("acc") + flit(1.0)));
    }

    #[test]
    fn builder_collects_params_in_order() {
        let k = kernel("k")
            .buffer("a", Precision::Double, Access::Read)
            .int_param("n")
            .float_param_like("alpha", "a")
            .float_param("beta", Precision::Single)
            .body(vec![]);
        assert_eq!(k.params.len(), 4);
        assert_eq!(k.params[0].name(), "a");
        assert_eq!(k.params[1].name(), "n");
        assert_eq!(
            k.resolve(match &k.params[2] {
                Param::Scalar { ty, .. } => ty,
                Param::Buffer { .. } => unreachable!(),
            }),
            ScalarType::Float(Precision::Double)
        );
    }

    #[test]
    fn comparison_helpers() {
        assert_eq!(lt(int(1), int(2)), cmp(CmpOp::Lt, int(1), int(2)));
        assert_eq!(gt(int(1), int(2)), cmp(CmpOp::Gt, int(1), int(2)));
        assert_eq!(le(int(1), int(2)), cmp(CmpOp::Le, int(1), int(2)));
    }
}
