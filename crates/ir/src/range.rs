//! Forward value-range dataflow analysis over kernel bodies.
//!
//! The analysis abstract-interprets a kernel under *real-number*
//! semantics with every value tracked as a [`ValueRange`]: a sound
//! enclosing interval `[lo, hi]` plus an optional distribution-mean
//! estimate. Buffer elements are seeded from the host-observed input
//! magnitude bounds of the profiling run (themselves contained in the
//! declared `InputGen` ranges), scalar parameters from the recorded
//! launch arguments, and `get_global_id(d)` from the launch NDRange.
//!
//! # Lattice and widening
//!
//! The float domain is the interval lattice over the extended reals
//! (⊥ excluded — every expression has *some* value), ordered by
//! inclusion with ⊤ = `[-∞, +∞]`; integers use the same lattice over
//! `i128`. Loop heads widen in one of three ways, most precise first:
//!
//! 1. **Exact unroll** — a loop whose trip count is statically known
//!    and small is executed abstractly iteration by iteration.
//! 2. **Closed-form accumulation** — a known trip count `T` with a
//!    body whose only loop-carried updates are additive recurrences
//!    `v = v ± e` (with `e` independent of every variable assigned in
//!    the body) jumps straight to the loop post-state
//!    `[v.lo + T·min(Δ.lo, 0) …]` / `v + T·Δ`, the interval transitive
//!    closure of the recurrence.
//! 3. **Widening to ⊤** — anything else (unknown trip count, coupled
//!    recurrences) sends every variable assigned in the body to ⊤ after
//!    one descent into the body, the classic one-step widening that
//!    guarantees termination.
//!
//! # Soundness
//!
//! Interval bounds over-approximate: every concrete run under the
//! seeded input bounds stays inside them. The mean stream is an
//! *estimate* that is never allowed to over-state magnitude: sums and
//! differences are exact, and a product keeps its mean only when value
//! provenance shows the factors cannot be adversely correlated —
//! either they share no stochastic source (independent draws, where
//! the mean of the product *is* the product of means), or both are raw
//! draws from one pristine input buffer (the same element gives a
//! square, whose true mean `E[X²] ≥ E[X]²` the estimate only
//! under-states; distinct elements are independent draws). Any other
//! shared-source shape — `x·(c−x)` is the canonical one, negatively
//! correlated so the product of means over-states the truth — degrades
//! the mean to "unknown". [`verdict_for`] therefore
//! proves [`PrecisionVerdict::ProvenUnsafe`] from two criteria only:
//! the *entire* sound interval lies beyond the target's finite range
//! (every execution overflows), or the mean of a definitely-executed
//! store exceeds [`MEAN_OVERFLOW_MARGIN`] times the target's largest
//! finite value — under the declared input model the accumulated
//! values concentrate around that mean, so the stored data saturates
//! to ±∞ and the TOQ oracle cannot pass. Anything short of proof is
//! [`PrecisionVerdict::Unknown`]: the analysis never blocks a trial it
//! cannot reject outright.

use crate::ast::{Expr, Kernel, Param, Stmt};
use crate::types::{Precision, ScalarType};
use crate::value::{CmpOp, FloatBinOp, UnaryFn};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Trip counts at or below this are unrolled exactly; above, the
/// closed-form/widening summaries take over.
const UNROLL_CAP: i128 = 16;

/// A definitely-executed store whose mean magnitude exceeds
/// `MEAN_OVERFLOW_MARGIN ×` the target's largest finite value is
/// proven to overflow under the declared input distribution.
pub const MEAN_OVERFLOW_MARGIN: f64 = 4.0;

/// A closed interval over the extended reals. `lo <= hi` always holds;
/// ⊤ is `[-∞, +∞]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound (may be `-∞`).
    pub lo: f64,
    /// Upper bound (may be `+∞`).
    pub hi: f64,
}

impl Interval {
    /// The top element: every real number.
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// A normalized interval; NaN endpoints widen to the matching
    /// infinity so the result is always sound.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Interval {
        let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
        let hi = if hi.is_nan() { f64::INFINITY } else { hi };
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The singleton interval `[v, v]`.
    #[must_use]
    pub fn point(v: f64) -> Interval {
        Interval::new(v, v)
    }

    /// Least upper bound (interval hull).
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Largest absolute value the interval admits.
    #[must_use]
    pub fn max_abs(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Whether both endpoints are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    fn add(self, o: Interval) -> Interval {
        Interval::new(self.lo + o.lo, self.hi + o.hi)
    }

    fn sub(self, o: Interval) -> Interval {
        Interval::new(self.lo - o.hi, self.hi - o.lo)
    }

    fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }

    fn mul(self, o: Interval) -> Interval {
        // Moore convention for the 0·∞ corner: the limit of x·y with
        // x → 0 along a finite factor is 0, and the other corner
        // products bound the rest.
        let p = |x: f64, y: f64| {
            let v = x * y;
            if v.is_nan() {
                0.0
            } else {
                v
            }
        };
        let c = [
            p(self.lo, o.lo),
            p(self.lo, o.hi),
            p(self.hi, o.lo),
            p(self.hi, o.hi),
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval::new(lo, hi)
    }

    fn div(self, o: Interval) -> Interval {
        if o.lo <= 0.0 && o.hi >= 0.0 {
            return Interval::TOP; // divisor may vanish
        }
        self.mul(Interval::new(1.0 / o.hi, 1.0 / o.lo))
    }

    fn min(self, o: Interval) -> Interval {
        Interval::new(self.lo.min(o.lo), self.hi.min(o.hi))
    }

    fn max(self, o: Interval) -> Interval {
        Interval::new(self.lo.max(o.lo), self.hi.max(o.hi))
    }

    fn abs(self) -> Interval {
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Interval::new(0.0, self.max_abs())
        }
    }

    fn monotone(self, f: impl Fn(f64) -> f64) -> Interval {
        Interval::new(f(self.lo), f(self.hi))
    }
}

/// A float abstract value: sound bounds plus a distribution-mean
/// estimate (`None` when no estimate survives the dataflow).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueRange {
    /// Sound enclosing interval.
    pub bounds: Interval,
    /// Estimated mean under the declared input model; `None` = unknown.
    pub mean: Option<f64>,
}

impl ValueRange {
    /// The unconstrained value: ⊤ bounds, unknown mean.
    pub const TOP: ValueRange = ValueRange {
        bounds: Interval::TOP,
        mean: None,
    };

    /// An exactly-known constant.
    #[must_use]
    pub fn exact(v: f64) -> ValueRange {
        ValueRange {
            bounds: Interval::point(v),
            mean: Some(v),
        }
    }

    /// Bounds with a mean estimate attached.
    #[must_use]
    pub fn with_mean(lo: f64, hi: f64, mean: f64) -> ValueRange {
        ValueRange {
            bounds: Interval::new(lo, hi),
            mean: Some(mean),
        }
    }

    /// Bounds only, mean unknown.
    #[must_use]
    pub fn bounded(lo: f64, hi: f64) -> ValueRange {
        ValueRange {
            bounds: Interval::new(lo, hi),
            mean: None,
        }
    }

    /// Hull of bounds; the mean survives only when both sides agree.
    #[must_use]
    pub fn hull(self, other: ValueRange) -> ValueRange {
        ValueRange {
            bounds: self.bounds.hull(other.bounds),
            mean: match (self.mean, other.mean) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        }
    }
}

/// An integer abstract value over `i128` (wide enough that index and
/// trip-count arithmetic on `i64` inputs cannot wrap).
#[derive(Clone, Copy, Debug, PartialEq)]
struct IntRange {
    lo: i128,
    hi: i128,
}

impl IntRange {
    const TOP: IntRange = IntRange {
        lo: i128::MIN / 4,
        hi: i128::MAX / 4,
    };

    fn point(v: i128) -> IntRange {
        IntRange { lo: v, hi: v }
    }

    fn new(lo: i128, hi: i128) -> IntRange {
        if lo <= hi {
            IntRange { lo, hi }
        } else {
            IntRange { lo: hi, hi: lo }
        }
    }

    fn exact(self) -> Option<i128> {
        (self.lo == self.hi).then_some(self.lo)
    }

    fn hull(self, o: IntRange) -> IntRange {
        IntRange::new(self.lo.min(o.lo), self.hi.max(o.hi))
    }

    fn to_float(self) -> ValueRange {
        let (lo, hi) = (self.lo as f64, self.hi as f64);
        ValueRange {
            bounds: Interval::new(lo, hi),
            mean: self.exact().map(|v| v as f64),
        }
    }

    fn bin(self, op: FloatBinOp, o: IntRange) -> IntRange {
        let sat = |v: i128| v.clamp(i128::MIN / 4, i128::MAX / 4);
        match op {
            FloatBinOp::Add => IntRange::new(sat(self.lo + o.lo), sat(self.hi + o.hi)),
            FloatBinOp::Sub => IntRange::new(sat(self.lo - o.hi), sat(self.hi - o.lo)),
            FloatBinOp::Mul => {
                let c = [
                    self.lo * o.lo,
                    self.lo * o.hi,
                    self.hi * o.lo,
                    self.hi * o.hi,
                ];
                IntRange::new(
                    sat(*c.iter().min().expect("non-empty")),
                    sat(*c.iter().max().expect("non-empty")),
                )
            }
            // Division and min/max on indices are rare; bound loosely
            // but soundly.
            FloatBinOp::Div => {
                if o.lo <= 0 && o.hi >= 0 {
                    IntRange::TOP
                } else {
                    let c = [
                        self.lo / o.lo,
                        self.lo / o.hi,
                        self.hi / o.lo,
                        self.hi / o.hi,
                    ];
                    IntRange::new(
                        *c.iter().min().expect("non-empty"),
                        *c.iter().max().expect("non-empty"),
                    )
                }
            }
            FloatBinOp::Min => IntRange::new(self.lo.min(o.lo), self.hi.min(o.hi)),
            FloatBinOp::Max => IntRange::new(self.lo.max(o.lo), self.hi.max(o.hi)),
        }
    }
}

/// A boolean abstract value.
#[derive(Clone, Copy, Debug, PartialEq)]
struct BoolRange {
    can_true: bool,
    can_false: bool,
}

impl BoolRange {
    const UNKNOWN: BoolRange = BoolRange {
        can_true: true,
        can_false: true,
    };
}

/// Any abstract value flowing through the kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
enum AVal {
    Int(IntRange),
    Float(ValueRange),
    Bool(BoolRange),
}

impl AVal {
    fn as_float(self) -> ValueRange {
        match self {
            AVal::Float(v) => v,
            AVal::Int(i) => i.to_float(),
            AVal::Bool(_) => ValueRange::TOP,
        }
    }

    fn as_int(self) -> IntRange {
        match self {
            AVal::Int(i) => i,
            _ => IntRange::TOP,
        }
    }

    fn hull(self, o: AVal) -> AVal {
        match (self, o) {
            (AVal::Int(a), AVal::Int(b)) => AVal::Int(a.hull(b)),
            (AVal::Bool(a), AVal::Bool(b)) => AVal::Bool(BoolRange {
                can_true: a.can_true || b.can_true,
                can_false: a.can_false || b.can_false,
            }),
            (a, b) => AVal::Float(a.as_float().hull(b.as_float())),
        }
    }
}

/// A recorded scalar launch argument.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalarBound {
    /// An exactly-known integer argument.
    Int(i64),
    /// An exactly-known float argument.
    Float(f64),
}

/// Everything known about one launch before it runs: per-buffer element
/// distributions, scalar arguments, and the NDRange.
#[derive(Clone, Debug, Default)]
pub struct LaunchBounds {
    /// Element distribution per buffer parameter name.
    pub buffers: BTreeMap<String, ValueRange>,
    /// Recorded scalar arguments by parameter name.
    pub scalars: BTreeMap<String, ScalarBound>,
    /// The launch NDRange (`get_global_id` bounds).
    pub global: [usize; 2],
}

/// One store the analysis proved the kernel performs.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreSummary {
    /// Buffer parameter stored through.
    pub buf: String,
    /// Abstract range of the stored values.
    pub range: ValueRange,
    /// Whether the store executes on every run reaching the kernel
    /// (`false` under conditions the analysis cannot decide).
    pub definite: bool,
}

/// The verdict for scaling one memory object to one target precision.
#[derive(Clone, Debug, PartialEq)]
pub enum PrecisionVerdict {
    /// Every value provably fits the target's finite range; demotion
    /// cannot overflow (rounding is still the TOQ oracle's call).
    SafeDemote,
    /// Demotion is proven to destroy the data; trialing it is wasted
    /// work.
    ProvenUnsafe(UnsafeReason),
    /// No proof either way — the trial must run.
    Unknown,
}

/// Why a demotion is proven unsafe.
#[derive(Clone, Debug, PartialEq)]
pub enum UnsafeReason {
    /// Stored values exceed the target's largest finite value and
    /// saturate to ±∞.
    OverflowToInf {
        /// The bound (interval edge or mean) that proved the overflow.
        bound: f64,
        /// The target's largest finite value.
        max_finite: f64,
    },
    /// Every stored value is a nonzero subnormal too small to survive:
    /// the whole object flushes to zero.
    SubnormalFlush {
        /// Largest magnitude the stored interval admits.
        bound: f64,
        /// The target's smallest value that rounds away from zero.
        min_nonzero: f64,
    },
}

impl fmt::Display for UnsafeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsafeReason::OverflowToInf { bound, max_finite } => {
                write!(f, "values reach {bound:e} > max finite {max_finite:e}")
            }
            UnsafeReason::SubnormalFlush { bound, min_nonzero } => write!(
                f,
                "all values below {bound:e} flush to zero (min nonzero {min_nonzero:e})"
            ),
        }
    }
}

/// The largest finite value of a precision.
#[must_use]
pub fn max_finite(p: Precision) -> f64 {
    match p {
        Precision::Half => 65504.0,
        Precision::Single => f64::from(f32::MAX),
        Precision::Double => f64::MAX,
    }
}

/// The smallest positive value that rounds to something nonzero
/// (half the minimum subnormal, under round-to-nearest-even).
#[must_use]
pub fn min_nonzero(p: Precision) -> f64 {
    match p {
        Precision::Half => 2.0_f64.powi(-25),
        Precision::Single => 2.0_f64.powi(-150),
        Precision::Double => 0.0, // f64 subnormals are the floor of the model
    }
}

/// Combines the per-store (and host-input) contributions of one memory
/// object into a verdict for demoting it to `target`.
///
/// Each contribution is `(range, definite)`; only definite
/// contributions can *prove* unsafety, while every contribution must
/// fit for [`PrecisionVerdict::SafeDemote`].
#[must_use]
pub fn verdict_for(contributions: &[(ValueRange, bool)], target: Precision) -> PrecisionVerdict {
    if contributions.is_empty() {
        return PrecisionVerdict::Unknown;
    }
    let limit = max_finite(target);
    let floor = min_nonzero(target);
    for (r, definite) in contributions {
        if !definite {
            continue;
        }
        // Every possible value overflows: a genuine interval proof.
        if r.bounds.lo > limit || r.bounds.hi < -limit {
            return PrecisionVerdict::ProvenUnsafe(UnsafeReason::OverflowToInf {
                bound: if r.bounds.lo > limit {
                    r.bounds.lo
                } else {
                    r.bounds.hi
                },
                max_finite: limit,
            });
        }
        // Distributional proof: the mean is far past the finite range,
        // so the accumulated values (concentrated around it under the
        // declared input model) saturate to ±∞.
        if let Some(m) = r.mean {
            if m.abs() > MEAN_OVERFLOW_MARGIN * limit {
                return PrecisionVerdict::ProvenUnsafe(UnsafeReason::OverflowToInf {
                    bound: m,
                    max_finite: limit,
                });
            }
        }
        // Every possible value is a nonzero subnormal that flushes.
        if floor > 0.0
            && ((r.bounds.lo > 0.0 && r.bounds.hi < floor)
                || (r.bounds.hi < 0.0 && r.bounds.lo > -floor))
        {
            return PrecisionVerdict::ProvenUnsafe(UnsafeReason::SubnormalFlush {
                bound: r.bounds.max_abs(),
                min_nonzero: floor,
            });
        }
    }
    let all_fit = contributions
        .iter()
        .all(|(r, _)| r.bounds.is_finite() && r.bounds.max_abs() <= limit);
    if all_fit {
        PrecisionVerdict::SafeDemote
    } else {
        PrecisionVerdict::Unknown
    }
}

/// Abstract-interprets `kernel` under `env`, returning the stores it
/// performs (in evaluation order; conditional paths are joined).
#[must_use]
pub fn analyze_kernel(kernel: &Kernel, env: &LaunchBounds) -> Vec<StoreSummary> {
    let mut a = Absint {
        kernel,
        buffers: env.buffers.clone().into_iter().collect(),
        buffer_sources: HashMap::new(),
        scopes: vec![HashMap::new()],
        stores: Vec::new(),
        global: env.global,
        scalars: env.scalars.clone(),
    };
    a.eval_block(&kernel.body, true);
    a.stores
}

/// Stochastic provenance of an abstract value: the input buffers it
/// draws from, and whether it is a single *raw* draw (a load, or an
/// alias chain back to one) rather than an arithmetic combination.
/// Only the mean stream consults it — being over-broad merely drops
/// mean estimates, never bounds.
#[derive(Clone, Debug, Default, PartialEq)]
struct Provenance {
    /// Buffer names whose contents influence the value.
    sources: HashSet<String>,
    /// True for unmodified draws; any arithmetic clears it.
    raw: bool,
}

impl Provenance {
    /// A value independent of every input draw (constants, thread ids,
    /// scalar parameters, loop variables).
    fn deterministic() -> Provenance {
        Provenance {
            sources: HashSet::new(),
            raw: true,
        }
    }

    /// Join at a control-flow merge: either side's draws may be the
    /// value's.
    fn join(&self, other: &Provenance) -> Provenance {
        let mut sources = self.sources.clone();
        sources.extend(other.sources.iter().cloned());
        Provenance {
            raw: self.raw && other.raw && self.sources == other.sources,
            sources,
        }
    }
}

/// One scope slot: the abstract value plus its provenance.
#[derive(Clone, Debug)]
struct Binding {
    val: AVal,
    prov: Provenance,
}

struct Absint<'k> {
    kernel: &'k Kernel,
    /// Current per-buffer element distribution (input-seeded, updated
    /// by stores).
    buffers: HashMap<String, ValueRange>,
    /// Buffers whose elements are no longer pristine input draws: a
    /// store derived from other stochastic sources lands them here,
    /// keyed to the sources the stored values carry.
    buffer_sources: HashMap<String, HashSet<String>>,
    scopes: Vec<HashMap<String, Binding>>,
    stores: Vec<StoreSummary>,
    global: [usize; 2],
    scalars: BTreeMap<String, ScalarBound>,
}

/// Names assigned (via `Assign`) anywhere in a block, nested included.
fn assigned_vars(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::For { body, .. } => assigned_vars(body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assigned_vars(then_body, out);
                assigned_vars(else_body, out);
            }
            Stmt::Let { .. } | Stmt::Store { .. } => {}
        }
    }
}

/// Free variable names of an expression.
fn expr_vars(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Var(n) => {
            out.insert(n.clone());
        }
        Expr::FloatConst(_) | Expr::IntConst(_) | Expr::GlobalId(_) => {}
        Expr::Load { index, .. } => expr_vars(index, out),
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => expr_vars(arg, out),
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            expr_vars(lhs, out);
            expr_vars(rhs, out);
        }
        Expr::Select { cond, then, els } => {
            expr_vars(cond, out);
            expr_vars(then, out);
            expr_vars(els, out);
        }
    }
}

/// Buffers an expression loads from.
fn loaded_buffers(e: &Expr, out: &mut HashSet<String>) {
    match e {
        Expr::Load { buf, index } => {
            out.insert(buf.clone());
            loaded_buffers(index, out);
        }
        Expr::FloatConst(_) | Expr::IntConst(_) | Expr::Var(_) | Expr::GlobalId(_) => {}
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => loaded_buffers(arg, out),
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            loaded_buffers(lhs, out);
            loaded_buffers(rhs, out);
        }
        Expr::Select { cond, then, els } => {
            loaded_buffers(cond, out);
            loaded_buffers(then, out);
            loaded_buffers(els, out);
        }
    }
}

/// Buffers a block stores to, nested included.
fn stored_buffers(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Store { buf, .. } => {
                out.insert(buf.clone());
            }
            Stmt::For { body, .. } => stored_buffers(body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                stored_buffers(then_body, out);
                stored_buffers(else_body, out);
            }
            Stmt::Let { .. } | Stmt::Assign { .. } => {}
        }
    }
}

/// An additive recurrence `v = v ± e` found at the top level of a loop
/// body.
struct Recurrence<'b> {
    name: &'b str,
    delta: &'b Expr,
    negated: bool,
}

/// Matches `v = v + e`, `v = e + v`, or `v = v - e`.
fn match_recurrence<'b>(name: &'b str, value: &'b Expr) -> Option<Recurrence<'b>> {
    let Expr::Bin { op, lhs, rhs } = value else {
        return None;
    };
    let is_self = |e: &Expr| matches!(e, Expr::Var(n) if n == name);
    match op {
        FloatBinOp::Add if is_self(lhs) => Some(Recurrence {
            name,
            delta: rhs,
            negated: false,
        }),
        FloatBinOp::Add if is_self(rhs) => Some(Recurrence {
            name,
            delta: lhs,
            negated: false,
        }),
        FloatBinOp::Sub if is_self(lhs) => Some(Recurrence {
            name,
            delta: rhs,
            negated: true,
        }),
        _ => None,
    }
}

impl Absint<'_> {
    fn lookup(&self, name: &str) -> AVal {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return b.val;
            }
        }
        match self.kernel.param(name) {
            Some(Param::Scalar { ty, .. }) => match self.scalars.get(name) {
                Some(ScalarBound::Int(v)) => AVal::Int(IntRange::point(i128::from(*v))),
                Some(ScalarBound::Float(v)) => AVal::Float(ValueRange::exact(*v)),
                None => match self.kernel.resolve(ty) {
                    ScalarType::Int => AVal::Int(IntRange::TOP),
                    _ => AVal::Float(ValueRange::TOP),
                },
            },
            _ => AVal::Float(ValueRange::TOP),
        }
    }

    /// Provenance of a name: its binding's, or deterministic for
    /// unbound names (scalar parameters, which the host fixes before
    /// launch).
    fn lookup_prov(&self, name: &str) -> Provenance {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return b.prov.clone();
            }
        }
        Provenance::deterministic()
    }

    /// Binds with deterministic provenance (loop variables, widened
    /// slots — anything whose mean can never feed a product).
    fn bind(&mut self, name: &str, v: AVal) {
        self.bind_with(name, v, Provenance::deterministic());
    }

    fn bind_with(&mut self, name: &str, v: AVal, prov: Provenance) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_owned(), Binding { val: v, prov });
        }
    }

    /// Reassigns wherever the name is bound (outer scopes included),
    /// keeping the slot's provenance.
    fn assign(&mut self, name: &str, v: AVal) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                slot.val = v;
                return;
            }
        }
        self.bind(name, v);
    }

    /// Reassigns value and provenance together wherever the name is
    /// bound.
    fn assign_with(&mut self, name: &str, v: AVal, prov: Provenance) {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = Binding { val: v, prov };
                return;
            }
        }
        self.bind_with(name, v, prov);
    }

    /// Stochastic provenance of an expression's value.
    fn expr_prov(&self, e: &Expr) -> Provenance {
        match e {
            Expr::FloatConst(_) | Expr::IntConst(_) | Expr::GlobalId(_) => {
                Provenance::deterministic()
            }
            Expr::Var(n) => self.lookup_prov(n),
            Expr::Load { buf, index } => {
                let mut sources = self.expr_prov(index).sources;
                if let Some(extra) = self.buffer_sources.get(buf) {
                    sources.extend(extra.iter().cloned());
                }
                sources.insert(buf.clone());
                Provenance { sources, raw: true }
            }
            // A cast changes representation, not which draw the value
            // is.
            Expr::Cast { arg, .. } => self.expr_prov(arg),
            Expr::Unary { arg, .. } => Provenance {
                sources: self.expr_prov(arg).sources,
                raw: false,
            },
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                let mut sources = self.expr_prov(lhs).sources;
                sources.extend(self.expr_prov(rhs).sources);
                Provenance {
                    sources,
                    raw: false,
                }
            }
            Expr::Select { cond, then, els } => {
                let mut sources = self.expr_prov(cond).sources;
                sources.extend(self.expr_prov(then).sources);
                sources.extend(self.expr_prov(els).sources);
                Provenance {
                    sources,
                    raw: false,
                }
            }
        }
    }

    /// Whether `E[l]·E[r]` can never over-state the magnitude of
    /// `E[l·r]`: the factors share no stochastic source (independent
    /// draws — exact), or both are raw draws from the same single
    /// *pristine* input buffer (two iid elements are either the same
    /// one — a square, whose true mean `E[X²] ≥ E[X]²` the estimate
    /// under-states — or independent).
    fn independent_factors(&self, l: &Expr, r: &Expr) -> bool {
        let lp = self.expr_prov(l);
        let rp = self.expr_prov(r);
        lp.sources.is_disjoint(&rp.sources)
            || (lp.raw
                && rp.raw
                && lp.sources == rp.sources
                && lp.sources.len() == 1
                && lp
                    .sources
                    .iter()
                    .all(|b| !self.buffer_sources.contains_key(b)))
    }

    fn buffer_range(&self, buf: &str) -> ValueRange {
        self.buffers.get(buf).copied().unwrap_or(ValueRange::TOP)
    }

    fn eval(&mut self, e: &Expr) -> AVal {
        match e {
            Expr::FloatConst(v) => AVal::Float(ValueRange::exact(*v)),
            Expr::IntConst(v) => AVal::Int(IntRange::point(i128::from(*v))),
            Expr::GlobalId(d) => {
                let n = self.global.get(*d).copied().unwrap_or(1).max(1);
                AVal::Int(IntRange::new(0, n as i128 - 1))
            }
            Expr::Var(name) => self.lookup(name),
            Expr::Load { buf, index } => {
                self.eval(index); // soundness of the value needs no index
                AVal::Float(self.buffer_range(buf))
            }
            Expr::Unary { op, arg } => {
                let a = self.eval(arg);
                match (op, a) {
                    (UnaryFn::Neg, AVal::Int(i)) => AVal::Int(IntRange::new(-i.hi, -i.lo)),
                    (UnaryFn::Neg, _) => {
                        let v = a.as_float();
                        AVal::Float(ValueRange {
                            bounds: v.bounds.neg(),
                            mean: v.mean.map(|m| -m),
                        })
                    }
                    (UnaryFn::Fabs, AVal::Int(i)) => {
                        let lo = i.lo.abs().min(i.hi.abs());
                        let hi = i.lo.abs().max(i.hi.abs());
                        AVal::Int(if i.lo <= 0 && i.hi >= 0 {
                            IntRange::new(0, hi)
                        } else {
                            IntRange::new(lo, hi)
                        })
                    }
                    (UnaryFn::Fabs, _) => {
                        let v = a.as_float();
                        let mean = match v.mean {
                            Some(m) if v.bounds.lo >= 0.0 => Some(m),
                            Some(m) if v.bounds.hi <= 0.0 => Some(-m),
                            _ => None,
                        };
                        AVal::Float(ValueRange {
                            bounds: v.bounds.abs(),
                            mean,
                        })
                    }
                    (UnaryFn::Sqrt, _) => {
                        let b = a.as_float().bounds;
                        // sqrt of a possibly-negative value is NaN; the
                        // clamped interval still encloses every finite
                        // result.
                        let b = Interval::new(b.lo.max(0.0), b.hi.max(0.0));
                        AVal::Float(ValueRange {
                            bounds: b.monotone(f64::sqrt),
                            mean: None,
                        })
                    }
                    (UnaryFn::Exp, _) => AVal::Float(ValueRange {
                        bounds: a.as_float().bounds.monotone(f64::exp),
                        mean: None,
                    }),
                    (UnaryFn::Log, _) => {
                        let b = a.as_float().bounds;
                        let b = Interval::new(b.lo.max(0.0), b.hi.max(0.0));
                        AVal::Float(ValueRange {
                            bounds: b.monotone(f64::ln),
                            mean: None,
                        })
                    }
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let (l, r) = (self.eval(lhs), self.eval(rhs));
                if let (AVal::Int(a), AVal::Int(b)) = (l, r) {
                    return AVal::Int(a.bin(*op, b));
                }
                let (a, b) = (l.as_float(), r.as_float());
                let bounds = match op {
                    FloatBinOp::Add => a.bounds.add(b.bounds),
                    FloatBinOp::Sub => a.bounds.sub(b.bounds),
                    FloatBinOp::Mul => a.bounds.mul(b.bounds),
                    FloatBinOp::Div => a.bounds.div(b.bounds),
                    FloatBinOp::Min => a.bounds.min(b.bounds),
                    FloatBinOp::Max => a.bounds.max(b.bounds),
                };
                let mean = match (op, a.mean, b.mean) {
                    (FloatBinOp::Add, Some(x), Some(y)) => Some(x + y),
                    (FloatBinOp::Sub, Some(x), Some(y)) => Some(x - y),
                    // Mean of a product of *independently drawn* values
                    // is the product of means. Correlated factors can
                    // break that in the unsound direction — for
                    // `x·(c−x)` the product of means over-states the
                    // true mean's magnitude — so the mean survives only
                    // when provenance shows the factors are independent
                    // draws (or same-buffer raw draws, where dependence
                    // means a square and only under-estimates).
                    (FloatBinOp::Mul, Some(x), Some(y)) if self.independent_factors(lhs, rhs) => {
                        Some(x * y)
                    }
                    (FloatBinOp::Div, Some(x), Some(y))
                        if b.bounds.lo == b.bounds.hi && y != 0.0 =>
                    {
                        Some(x / y)
                    }
                    _ => None,
                };
                AVal::Float(ValueRange { bounds, mean })
            }
            Expr::Cmp { op, lhs, rhs } => {
                let (l, r) = (self.eval(lhs), self.eval(rhs));
                AVal::Bool(self.compare(*op, l, r))
            }
            // The analysis models real-number dataflow; representation
            // effects of a cast are exactly what the precision verdicts
            // quantify, so the value range passes through unchanged
            // (int casts truncate, which the hull absorbs).
            Expr::Cast { to, arg } => {
                let a = self.eval(arg);
                match self.kernel.resolve(to) {
                    ScalarType::Int => match a {
                        AVal::Int(i) => AVal::Int(i),
                        _ => {
                            let b = a.as_float().bounds;
                            let clamp = |v: f64| {
                                if v.is_finite() {
                                    v.trunc() as i128
                                } else if v > 0.0 {
                                    i128::MAX / 4
                                } else {
                                    i128::MIN / 4
                                }
                            };
                            AVal::Int(IntRange::new(clamp(b.lo), clamp(b.hi)))
                        }
                    },
                    _ => AVal::Float(a.as_float()),
                }
            }
            Expr::Select { cond, then, els } => {
                let c = self.eval(cond);
                let (t, e2) = (self.eval(then), self.eval(els));
                match c {
                    AVal::Bool(BoolRange {
                        can_true: true,
                        can_false: false,
                    }) => t,
                    AVal::Bool(BoolRange {
                        can_true: false,
                        can_false: true,
                    }) => e2,
                    _ => t.hull(e2),
                }
            }
        }
    }

    fn compare(&self, op: CmpOp, l: AVal, r: AVal) -> BoolRange {
        // Decide on the hull of each side, integer or float alike.
        let (a, b) = match (l, r) {
            (AVal::Int(a), AVal::Int(b)) => (
                Interval::new(a.lo as f64, a.hi as f64),
                Interval::new(b.lo as f64, b.hi as f64),
            ),
            _ => (l.as_float().bounds, r.as_float().bounds),
        };
        match op {
            CmpOp::Lt => BoolRange {
                can_true: a.lo < b.hi,
                can_false: a.hi >= b.lo,
            },
            CmpOp::Le => BoolRange {
                can_true: a.lo <= b.hi,
                can_false: a.hi > b.lo,
            },
            CmpOp::Gt => BoolRange {
                can_true: a.hi > b.lo,
                can_false: a.lo <= b.hi,
            },
            CmpOp::Ge => BoolRange {
                can_true: a.hi >= b.lo,
                can_false: a.lo < b.hi,
            },
            CmpOp::Eq => BoolRange {
                can_true: a.lo <= b.hi && b.lo <= a.hi,
                can_false: !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
            },
            CmpOp::Ne => BoolRange {
                can_true: !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
                can_false: a.lo <= b.hi && b.lo <= a.hi,
            },
        }
    }

    fn eval_block(&mut self, stmts: &[Stmt], definite: bool) {
        for s in stmts {
            self.eval_stmt(s, definite);
        }
    }

    fn eval_stmt(&mut self, stmt: &Stmt, definite: bool) {
        match stmt {
            Stmt::Let { name, value, .. } => {
                let v = self.eval(value);
                let prov = self.expr_prov(value);
                self.bind_with(name, v, prov);
            }
            Stmt::Assign { name, value } => {
                let v = self.eval(value);
                let prov = self.expr_prov(value);
                self.assign_with(name, v, prov);
            }
            Stmt::Store { buf, index, value } => {
                self.eval(index);
                let v = self.eval(value).as_float();
                self.stores.push(StoreSummary {
                    buf: buf.clone(),
                    range: v,
                    definite,
                });
                // Later loads of this buffer (same kernel) see old or
                // new elements: hull them.
                let merged = self.buffer_range(buf).hull(v);
                self.buffers.insert(buf.clone(), merged);
                // Stored values derived from other draws leave the
                // buffer non-pristine: its loads carry those sources
                // and no longer qualify for the same-buffer product
                // exemption.
                let mut extra = self.expr_prov(value).sources;
                extra.extend(self.expr_prov(index).sources);
                if !extra.is_empty() {
                    self.buffer_sources
                        .entry(buf.clone())
                        .or_default()
                        .extend(extra);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = match self.eval(cond) {
                    AVal::Bool(b) => b,
                    _ => BoolRange::UNKNOWN,
                };
                match (c.can_true, c.can_false) {
                    (true, false) => self.scoped_block(then_body, definite),
                    (false, true) => self.scoped_block(else_body, definite),
                    _ => {
                        // Join over both arms: evaluate each from the
                        // pre-state, then hull variables and buffers.
                        let pre_scopes = self.scopes.clone();
                        let pre_buffers = self.buffers.clone();
                        self.scoped_block(then_body, false);
                        let then_scopes = std::mem::replace(&mut self.scopes, pre_scopes);
                        let then_buffers = std::mem::replace(&mut self.buffers, pre_buffers);
                        self.scoped_block(else_body, false);
                        join_scopes(&mut self.scopes, &then_scopes);
                        for (k, v) in then_buffers {
                            let merged = self.buffer_range(&k).hull(v);
                            self.buffers.insert(k, merged);
                        }
                    }
                }
            }
            Stmt::For {
                var,
                start,
                end,
                body,
            } => {
                let s = self.eval(start).as_int();
                let e = self.eval(end).as_int();
                self.eval_for(var, s, e, body, definite);
            }
        }
    }

    fn scoped_block(&mut self, stmts: &[Stmt], definite: bool) {
        self.scopes.push(HashMap::new());
        self.eval_block(stmts, definite);
        self.scopes.pop();
    }

    fn eval_for(&mut self, var: &str, s: IntRange, e: IntRange, body: &[Stmt], definite: bool) {
        match (s.exact(), e.exact()) {
            (Some(s0), Some(e0)) if e0 <= s0 => {} // zero trips
            (Some(s0), Some(e0)) if e0 - s0 <= UNROLL_CAP => {
                for i in s0..e0 {
                    self.scopes.push(HashMap::new());
                    self.bind(var, AVal::Int(IntRange::point(i)));
                    self.eval_block(body, definite);
                    self.scopes.pop();
                }
            }
            (Some(s0), Some(e0)) => self.summarize_loop(var, s0, e0, body, definite),
            _ => {
                // Unknown trip count: widen every assigned variable to
                // ⊤ before one descent, so the body's stores are still
                // observed over a sound post-state.
                let mut assigned = HashSet::new();
                assigned_vars(body, &mut assigned);
                for name in &assigned {
                    self.widen_var(name);
                }
                self.scopes.push(HashMap::new());
                let lo = s.lo.min(e.lo);
                let hi = e.hi.saturating_sub(1).max(lo);
                self.bind(var, AVal::Int(IntRange::new(lo, hi)));
                self.eval_block(body, false);
                self.scopes.pop();
                for name in &assigned {
                    self.widen_var(name);
                }
            }
        }
    }

    fn widen_var(&mut self, name: &str) {
        let widened = match self.lookup(name) {
            AVal::Int(_) => AVal::Int(IntRange::TOP),
            AVal::Bool(_) => AVal::Bool(BoolRange::UNKNOWN),
            AVal::Float(_) => AVal::Float(ValueRange::TOP),
        };
        self.assign(name, widened);
    }

    /// Closed-form summary of a loop with known trip count `e0 - s0 >`
    /// [`UNROLL_CAP`]: additive recurrences with iteration-independent
    /// deltas jump to their post-state, everything else assigned widens
    /// to ⊤.
    fn summarize_loop(&mut self, var: &str, s0: i128, e0: i128, body: &[Stmt], definite: bool) {
        let trips = e0 - s0;
        let mut assigned = HashSet::new();
        assigned_vars(body, &mut assigned);
        let mut stored = HashSet::new();
        stored_buffers(body, &mut stored);
        let mut assign_counts: HashMap<&str, usize> = HashMap::new();
        count_assigns(body, &mut assign_counts);

        // Pass A: walk the top-level statements once in the pre-state
        // (loop variable bound to its full range), binding lets in
        // order and recording, per let, the transitive variables and
        // buffer loads its definition reads. An additive recurrence
        // earns a closed form only when its delta is
        // iteration-independent *through those lets as well*: expanded
        // past every let it references, it must read no variable the
        // body assigns, load no buffer the body stores to, and its
        // target must be assigned exactly once in the whole body. So
        // `let t = f(acc); acc = acc + t` is loop-carried and widens,
        // while `let c = load(w, k); acc = acc + c` still summarizes.
        // Each surviving delta is evaluated at its own program point —
        // exactly the binding environment the first iteration sees — so
        // a let that only shadows later cannot leak into an earlier
        // delta.
        self.scopes.push(HashMap::new());
        self.bind(var, AVal::Int(IntRange::new(s0, e0 - 1)));
        let mut let_reads: HashMap<String, (HashSet<String>, HashSet<String>)> = HashMap::new();
        let mut deltas: HashMap<String, (ValueRange, Provenance)> = HashMap::new();
        for stmt in body {
            match stmt {
                Stmt::Let { name, value, .. } => {
                    let reads = reads_through_lets(value, &let_reads);
                    let v = self.eval(value);
                    let prov = self.expr_prov(value);
                    self.bind_with(name, v, prov);
                    let_reads.insert(name.clone(), reads);
                }
                Stmt::Assign { name, value } => {
                    let Some(rec) = match_recurrence(name, value) else {
                        continue;
                    };
                    let (vars, loads) = reads_through_lets(rec.delta, &let_reads);
                    let independent = vars.iter().all(|v| !assigned.contains(v))
                        && loads.iter().all(|b| !stored.contains(b))
                        && assign_counts.get(name.as_str()).copied() == Some(1);
                    if !independent {
                        continue;
                    }
                    let d = self.eval(rec.delta).as_float();
                    let d = if rec.negated {
                        ValueRange {
                            bounds: d.bounds.neg(),
                            mean: d.mean.map(|m| -m),
                        }
                    } else {
                        d
                    };
                    let prov = self.expr_prov(rec.delta);
                    deltas.insert(rec.name.to_owned(), (d, prov));
                }
                _ => {}
            }
        }
        self.scopes.pop();

        // Closed forms: post-state and the hull over all iterations.
        // The recurrence's provenance accumulates the delta's on top of
        // its initial value's.
        let t = trips as f64;
        let mut finals: HashMap<String, (ValueRange, Provenance)> = HashMap::new();
        let mut hulls: HashMap<String, (ValueRange, Provenance)> = HashMap::new();
        for (name, (d, dprov)) in &deltas {
            let v0 = self.lookup(name).as_float();
            let mut prov = self.lookup_prov(name);
            prov.sources.extend(dprov.sources.iter().cloned());
            prov.raw = false;
            let post = ValueRange {
                bounds: Interval::new(
                    v0.bounds.lo + t * d.bounds.lo,
                    v0.bounds.hi + t * d.bounds.hi,
                ),
                mean: match (v0.mean, d.mean) {
                    (Some(a), Some(b)) => Some(a + t * b),
                    _ => None,
                },
            };
            let hull = ValueRange {
                bounds: Interval::new(
                    v0.bounds.lo + t * d.bounds.lo.min(0.0),
                    v0.bounds.hi + t * d.bounds.hi.max(0.0),
                ),
                mean: None,
            };
            finals.insert(name.clone(), (post, prov.clone()));
            hulls.insert(name.clone(), (hull, prov));
        }

        // Pass B: walk the body once for its stores and nested effects,
        // with recurrences held at their iteration hull and every other
        // assigned variable widened to ⊤.
        for name in &assigned {
            match hulls.get(name.as_str()) {
                Some((h, p)) => self.assign_with(name, AVal::Float(*h), p.clone()),
                None => self.widen_var(name),
            }
        }
        self.scopes.push(HashMap::new());
        self.bind(var, AVal::Int(IntRange::new(s0, e0 - 1)));
        self.eval_block(body, definite);
        self.scopes.pop();

        // Post-state: recurrences land on their closed forms; the rest
        // stays widened.
        for name in &assigned {
            match finals.get(name.as_str()) {
                Some((f, p)) => self.assign_with(name, AVal::Float(*f), p.clone()),
                None => self.widen_var(name),
            }
        }
    }
}

/// Variables and buffers `e` reads, expanded transitively through the
/// loop body's `let` bindings walked so far: referencing a let pulls in
/// everything its definition (recursively) reads. The let's own name
/// stays in the set, which is harmless — independence only tests
/// `Assign` targets and stored buffers against it.
fn reads_through_lets(
    e: &Expr,
    let_reads: &HashMap<String, (HashSet<String>, HashSet<String>)>,
) -> (HashSet<String>, HashSet<String>) {
    let mut vars = HashSet::new();
    expr_vars(e, &mut vars);
    let mut loads = HashSet::new();
    loaded_buffers(e, &mut loads);
    // Entries in `let_reads` are already fully expanded at insertion,
    // so one substitution level closes the set.
    for v in vars.clone() {
        if let Some((dv, dl)) = let_reads.get(&v) {
            vars.extend(dv.iter().cloned());
            loads.extend(dl.iter().cloned());
        }
    }
    (vars, loads)
}

fn count_assigns<'b>(stmts: &'b [Stmt], out: &mut HashMap<&'b str, usize>) {
    for s in stmts {
        match s {
            Stmt::Assign { name, .. } => {
                *out.entry(name.as_str()).or_insert(0) += 1;
            }
            Stmt::For { body, .. } => count_assigns(body, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                count_assigns(then_body, out);
                count_assigns(else_body, out);
            }
            Stmt::Let { .. } | Stmt::Store { .. } => {}
        }
    }
}

/// Hulls `other`'s bindings into `scopes` (same shape by construction:
/// both sides grew from the same pre-state and popped their inner
/// scopes).
fn join_scopes(scopes: &mut [HashMap<String, Binding>], other: &[HashMap<String, Binding>]) {
    for (mine, theirs) in scopes.iter_mut().zip(other) {
        for (name, b) in theirs {
            match mine.get_mut(name) {
                Some(slot) => {
                    slot.val = slot.val.hull(b.val);
                    slot.prov = slot.prov.join(&b.prov);
                }
                None => {
                    mine.insert(name.clone(), b.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Access;
    use crate::dsl::*;

    fn gemm_like(nk_arg: i64, n_range: (f64, f64)) -> (Kernel, LaunchBounds) {
        // acc = Σ_k a[..]*b[..]; c = alpha*acc + beta*c[..] — the shape
        // every accumulating polybench kernel shares.
        let k = kernel("mm")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("b", Precision::Double, Access::Read)
            .buffer("c", Precision::Double, Access::ReadWrite)
            .int_param("ni")
            .int_param("nj")
            .int_param("nk")
            .float_param_like("alpha", "c")
            .float_param_like("beta", "c")
            .body(vec![
                let_("j", global_id(0)),
                let_("i", global_id(1)),
                if_(
                    lt(var("i"), var("ni")),
                    vec![if_(
                        lt(var("j"), var("nj")),
                        vec![
                            let_acc("acc", "c", flit(0.0)),
                            for_(
                                "k",
                                int(0),
                                var("nk"),
                                vec![assign(
                                    "acc",
                                    var("acc")
                                        + load("a", var("i") * var("nk") + var("k"))
                                            * load("b", var("k") * var("nj") + var("j")),
                                )],
                            ),
                            store(
                                "c",
                                var("i") * var("nj") + var("j"),
                                var("alpha") * var("acc")
                                    + var("beta") * load("c", var("i") * var("nj") + var("j")),
                            ),
                        ],
                    )],
                ),
            ]);
        let mid = f64::midpoint(n_range.0, n_range.1);
        let mut env = LaunchBounds {
            global: [8, 8],
            ..LaunchBounds::default()
        };
        for buf in ["a", "b", "c"] {
            env.buffers
                .insert(buf.into(), ValueRange::with_mean(n_range.0, n_range.1, mid));
        }
        env.scalars.insert("ni".into(), ScalarBound::Int(8));
        env.scalars.insert("nj".into(), ScalarBound::Int(8));
        env.scalars.insert("nk".into(), ScalarBound::Int(nk_arg));
        env.scalars.insert("alpha".into(), ScalarBound::Float(1.5));
        env.scalars.insert("beta".into(), ScalarBound::Float(1.2));
        env.buffers
            .insert("c".into(), ValueRange::with_mean(n_range.0, n_range.1, mid));
        (k, env)
    }

    #[test]
    fn interval_arithmetic_is_sound_on_corners() {
        let a = Interval::new(-2.0, 3.0);
        let b = Interval::new(4.0, 5.0);
        assert_eq!(a.add(b), Interval::new(2.0, 8.0));
        assert_eq!(a.sub(b), Interval::new(-7.0, -1.0));
        assert_eq!(a.mul(b), Interval::new(-10.0, 15.0));
        assert_eq!(b.div(Interval::new(2.0, 4.0)), Interval::new(1.0, 2.5));
        assert_eq!(a.div(a), Interval::TOP, "divisor spans zero");
        assert_eq!(a.abs(), Interval::new(0.0, 3.0));
        assert_eq!(Interval::new(f64::NAN, 1.0).lo, f64::NEG_INFINITY);
    }

    #[test]
    fn accumulation_overflow_is_detected_for_half() {
        // 64 products of values uniform in (0, 513): mean ≈ 64·256.5²
        // ≈ 4.2M, far beyond 4×65504 — proven unsafe for half.
        let (k, env) = gemm_like(64, (0.0, 513.0));
        let stores = analyze_kernel(&k, &env);
        assert_eq!(stores.len(), 1);
        let c = &stores[0];
        assert_eq!(c.buf, "c");
        assert!(c.definite, "guards are provably true at this NDRange");
        let mean = c.range.mean.expect("linear accumulation keeps the mean");
        assert!(mean > 4.0 * 65504.0, "mean {mean}");
        let verdict = verdict_for(&[(c.range, c.definite)], Precision::Half);
        assert!(
            matches!(
                verdict,
                PrecisionVerdict::ProvenUnsafe(UnsafeReason::OverflowToInf { .. })
            ),
            "{verdict:?}"
        );
        // The same data comfortably fits single precision.
        assert_eq!(
            verdict_for(&[(c.range, c.definite)], Precision::Single),
            PrecisionVerdict::SafeDemote
        );
    }

    #[test]
    fn small_inputs_are_safe_for_half() {
        // Uniform (0,1) inputs over a short accumulation stay small.
        let (k, env) = gemm_like(64, (0.0, 1.0));
        let stores = analyze_kernel(&k, &env);
        let c = &stores[0];
        assert!(c.range.bounds.hi <= 200.0, "{:?}", c.range);
        assert_eq!(
            verdict_for(&[(c.range, c.definite)], Precision::Half),
            PrecisionVerdict::SafeDemote
        );
    }

    #[test]
    fn exact_unroll_matches_closed_form() {
        // The same kernel at a trip count under the unroll cap and one
        // over it: sound bounds must agree (the closed form is exact
        // for additive recurrences).
        let (k, env_small) = gemm_like(8, (0.0, 2.0));
        let (_, env_large) = gemm_like(64, (0.0, 2.0));
        let small = &analyze_kernel(&k, &env_small)[0];
        let large = &analyze_kernel(&k, &env_large)[0];
        // 8 trips: hi = 1.5·(8·4) + 1.2·2 = 50.4; 64 trips: 8× the
        // accumulation.
        assert!((small.range.bounds.hi - 50.4).abs() < 1e-9, "{small:?}");
        assert!(
            (large.range.bounds.hi - (1.5 * 256.0 + 2.4)).abs() < 1e-9,
            "{large:?}"
        );
        assert_eq!(small.range.bounds.lo, 0.0);
    }

    #[test]
    fn loop_carried_dependence_through_a_let_widens_instead_of_misproving() {
        // Geometric approach to a fixpoint: acc converges to 60000 and
        // never exceeds it. The delta `t` reads `acc` *through a let*,
        // so it is loop-carried — classifying it as an independent
        // additive recurrence would report ~3e6 on both bounds and
        // wrongly prove Half unsafe for data that fits.
        let k = kernel("conv")
            .buffer("o", Precision::Double, Access::Write)
            .body(vec![
                let_("acc", flit(0.0)),
                for_(
                    "i",
                    int(0),
                    int(100),
                    vec![
                        let_("t", (flit(60000.0) - var("acc")) * flit(0.5)),
                        assign("acc", var("acc") + var("t")),
                    ],
                ),
                store("o", global_id(0), var("acc")),
            ]);
        let env = LaunchBounds {
            global: [1, 1],
            ..LaunchBounds::default()
        };
        let stores = analyze_kernel(&k, &env);
        assert_eq!(stores.len(), 1);
        let r = stores[0].range;
        // Sound: the concrete trajectory (0 → 60000) stays inside.
        assert!(
            r.bounds.lo <= 0.0 && r.bounds.hi >= 60000.0,
            "unsound bounds {r:?}"
        );
        // And no proof may fire: the trial would have passed.
        assert_eq!(
            verdict_for(&[(r, stores[0].definite)], Precision::Half),
            PrecisionVerdict::Unknown
        );
    }

    #[test]
    fn iteration_independent_let_delta_still_summarizes() {
        // The delta routes through a let but reads only an un-stored
        // buffer: the closed form (not ⊤ widening) must survive.
        let k = kernel("s")
            .buffer("w", Precision::Double, Access::Read)
            .buffer("o", Precision::Double, Access::Write)
            .body(vec![
                let_("acc", flit(0.0)),
                for_(
                    "i",
                    int(0),
                    int(100),
                    vec![
                        let_("c", load("w", var("i"))),
                        assign("acc", var("acc") + var("c")),
                    ],
                ),
                store("o", global_id(0), var("acc")),
            ]);
        let mut env = LaunchBounds {
            global: [1, 1],
            ..LaunchBounds::default()
        };
        env.buffers
            .insert("w".into(), ValueRange::with_mean(0.0, 2.0, 1.0));
        let stores = analyze_kernel(&k, &env);
        let r = stores[0].range;
        assert!((r.bounds.hi - 200.0).abs() < 1e-9, "{r:?}");
        assert_eq!(r.bounds.lo, 0.0);
        assert_eq!(r.mean, Some(100.0));
    }

    #[test]
    fn negatively_correlated_product_drops_its_mean() {
        // x·(c−x): E[X]·E[c−X] over-states |E[X(c−X)]| by Var(X), so
        // keeping the mean would let a "proof" fire on data whose true
        // mean is smaller. The interval stays; the mean must not.
        let k = kernel("p")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("o", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                let_("x", load("a", var("i"))),
                store("o", var("i"), var("x") * (flit(100.0) - var("x"))),
            ]);
        let mut env = LaunchBounds {
            global: [4, 1],
            ..LaunchBounds::default()
        };
        env.buffers
            .insert("a".into(), ValueRange::with_mean(0.0, 100.0, 50.0));
        let stores = analyze_kernel(&k, &env);
        assert_eq!(stores[0].range.mean, None, "{:?}", stores[0].range);
        assert_eq!(stores[0].range.bounds, Interval::new(0.0, 10000.0));
    }

    #[test]
    fn same_buffer_raw_draws_keep_the_product_mean() {
        // The SYRK shape: two raw loads of one pristine buffer are the
        // same element (a square — the estimate under-states) or
        // independent draws (exact). The mean survives.
        let k = kernel("syrkish")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("o", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                let_("j", global_id(1)),
                store("o", var("i"), load("a", var("i")) * load("a", var("j"))),
            ]);
        let mut env = LaunchBounds {
            global: [4, 4],
            ..LaunchBounds::default()
        };
        env.buffers
            .insert("a".into(), ValueRange::with_mean(0.0, 100.0, 50.0));
        let stores = analyze_kernel(&k, &env);
        assert_eq!(stores[0].range.mean, Some(2500.0));
    }

    #[test]
    fn derived_buffer_products_drop_the_mean() {
        // o = c − a makes o's elements anti-correlated with a's; a
        // later a·o product must not multiply means even though the
        // factors load from different buffers.
        let k = kernel("d")
            .buffer("a", Precision::Double, Access::Read)
            .buffer("o", Precision::Double, Access::ReadWrite)
            .buffer("p", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                store("o", var("i"), flit(100.0) - load("a", var("i"))),
                store("p", var("i"), load("a", var("i")) * load("o", var("i"))),
            ]);
        let mut env = LaunchBounds {
            global: [4, 1],
            ..LaunchBounds::default()
        };
        env.buffers
            .insert("a".into(), ValueRange::with_mean(0.0, 100.0, 50.0));
        // Seed o to the very distribution the first store produces, so
        // the hull preserves the mean and only provenance can (and
        // must) kill the product's.
        env.buffers
            .insert("o".into(), ValueRange::with_mean(0.0, 100.0, 50.0));
        let stores = analyze_kernel(&k, &env);
        assert_eq!(stores.len(), 2);
        assert_eq!(stores[0].range.mean, Some(50.0), "{:?}", stores[0].range);
        assert_eq!(stores[1].range.mean, None, "{:?}", stores[1].range);
    }

    #[test]
    fn unknown_trip_count_widens_to_top() {
        let k = kernel("w")
            .buffer("o", Precision::Double, Access::Write)
            .int_param("n")
            .body(vec![
                let_("acc", flit(0.0)),
                for_(
                    "i",
                    int(0),
                    var("n"),
                    vec![assign("acc", var("acc") + flit(1.0))],
                ),
                store("o", global_id(0), var("acc")),
            ]);
        // `n` not recorded → trip count unknown → acc widens to ⊤.
        let env = LaunchBounds {
            global: [4, 1],
            ..LaunchBounds::default()
        };
        let stores = analyze_kernel(&k, &env);
        assert_eq!(stores[0].range.bounds, Interval::TOP);
        assert_eq!(
            verdict_for(&[(stores[0].range, true)], Precision::Half),
            PrecisionVerdict::Unknown
        );
    }

    #[test]
    fn may_stores_cannot_prove_unsafety() {
        // A store under an undecidable condition is not definite, so
        // even an enormous mean must not prune.
        let k = kernel("m")
            .buffer("x", Precision::Double, Access::Read)
            .buffer("o", Precision::Double, Access::Write)
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    gt(load("x", var("i")), flit(0.5)),
                    vec![store("o", var("i"), flit(1.0e9))],
                ),
            ]);
        let mut env = LaunchBounds {
            global: [4, 1],
            ..LaunchBounds::default()
        };
        env.buffers
            .insert("x".into(), ValueRange::with_mean(0.0, 1.0, 0.5));
        env.buffers.insert("o".into(), ValueRange::exact(0.0));
        let stores = analyze_kernel(&k, &env);
        assert_eq!(stores.len(), 1);
        assert!(!stores[0].definite);
        assert_eq!(
            verdict_for(&[(stores[0].range, stores[0].definite)], Precision::Half),
            PrecisionVerdict::Unknown
        );
    }

    #[test]
    fn interval_proof_fires_without_a_mean() {
        let r = ValueRange::bounded(70000.0, 90000.0);
        assert!(matches!(
            verdict_for(&[(r, true)], Precision::Half),
            PrecisionVerdict::ProvenUnsafe(UnsafeReason::OverflowToInf { .. })
        ));
    }

    #[test]
    fn subnormal_flush_is_proven() {
        let r = ValueRange::bounded(1.0e-9, 1.0e-8);
        assert!(matches!(
            verdict_for(&[(r, true)], Precision::Half),
            PrecisionVerdict::ProvenUnsafe(UnsafeReason::SubnormalFlush { .. })
        ));
        // The same range is representable (subnormal) in single.
        assert_eq!(
            verdict_for(&[(r, true)], Precision::Single),
            PrecisionVerdict::SafeDemote
        );
    }

    #[test]
    fn empty_contributions_are_unknown() {
        assert_eq!(verdict_for(&[], Precision::Half), PrecisionVerdict::Unknown);
    }

    #[test]
    fn provably_false_guard_skips_its_branch() {
        let k = kernel("g")
            .buffer("o", Precision::Double, Access::Write)
            .int_param("n")
            .body(vec![
                let_("i", global_id(0)),
                if_(
                    gt(var("i"), var("n")),
                    vec![store("o", var("i"), flit(1.0e9))],
                ),
            ]);
        let mut env = LaunchBounds {
            global: [4, 1],
            ..LaunchBounds::default()
        };
        env.scalars.insert("n".into(), ScalarBound::Int(100));
        // i ∈ [0,3] is never > 100: the store is unreachable.
        assert!(analyze_kernel(&k, &env).is_empty());
    }
}
