//! Scaling specifications — the mechanism the runtime consults when
//! executing API calls.
//!
//! A [`ScalingSpec`] is the runtime-side representation of one precision
//! configuration: per memory object, the device storage precision and the
//! transfer plans; per kernel, an optional in-kernel cast map. The policy
//! that *chooses* these values is the decision maker in `prescaler-core`;
//! the runtime only applies them, mirroring the paper's link-time
//! interposition split (Table 2).

use prescaler_ir::Precision;
use prescaler_sim::{Direction, HostMethod};
use std::collections::HashMap;

/// How one transfer leg converts: wire type plus host-side method.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanChoice {
    /// Element type on the wire. Equal to the destination type for plain
    /// host-side scaling, to the source type for device-side scaling, and
    /// distinct from both for transient conversion.
    pub intermediate: Precision,
    /// How the host-side conversion leg executes.
    pub host_method: HostMethod,
}

impl PlanChoice {
    /// Host-side direct conversion using a multithreaded loop.
    #[must_use]
    pub fn host_direct(
        direction: Direction,
        src: Precision,
        dst: Precision,
        threads: usize,
    ) -> PlanChoice {
        PlanChoice {
            intermediate: match direction {
                Direction::HtoD => dst,
                Direction::DtoH => src,
            },
            host_method: HostMethod::Multithread { threads },
        }
    }
}

/// A complete runtime scaling configuration.
///
/// Objects or kernels absent from the maps run unscaled. The empty spec is
/// the baseline program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScalingSpec {
    /// Device storage precision per memory-object label.
    pub object_targets: HashMap<String, Precision>,
    /// HtoD transfer plan per object label.
    pub write_plans: HashMap<String, PlanChoice>,
    /// DtoH transfer plan per object label.
    pub read_plans: HashMap<String, PlanChoice>,
    /// In-kernel compute precision per kernel → per buffer param
    /// (the Precimonious-style baseline; empty for memory-object scaling).
    pub in_kernel: HashMap<String, HashMap<String, Precision>>,
}

impl ScalingSpec {
    /// The baseline (identity) configuration.
    #[must_use]
    pub fn baseline() -> ScalingSpec {
        ScalingSpec::default()
    }

    /// `true` if no scaling at all is configured.
    #[must_use]
    pub fn is_baseline(&self) -> bool {
        self.object_targets.is_empty()
            && self.write_plans.is_empty()
            && self.read_plans.is_empty()
            && self.in_kernel.is_empty()
    }

    /// Sets the device precision of one object.
    #[must_use]
    pub fn with_target(mut self, label: impl Into<String>, p: Precision) -> ScalingSpec {
        self.object_targets.insert(label.into(), p);
        self
    }

    /// Sets the HtoD plan of one object.
    #[must_use]
    pub fn with_write_plan(mut self, label: impl Into<String>, plan: PlanChoice) -> ScalingSpec {
        self.write_plans.insert(label.into(), plan);
        self
    }

    /// Sets the DtoH plan of one object.
    #[must_use]
    pub fn with_read_plan(mut self, label: impl Into<String>, plan: PlanChoice) -> ScalingSpec {
        self.read_plans.insert(label.into(), plan);
        self
    }

    /// The device storage precision for an object originally of
    /// `declared` precision.
    #[must_use]
    pub fn target_for(&self, label: &str, declared: Precision) -> Precision {
        self.object_targets.get(label).copied().unwrap_or(declared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_empty() {
        let s = ScalingSpec::baseline();
        assert!(s.is_baseline());
        assert_eq!(s.target_for("A", Precision::Double), Precision::Double);
    }

    #[test]
    fn builders_accumulate() {
        let s = ScalingSpec::baseline()
            .with_target("A", Precision::Half)
            .with_write_plan(
                "A",
                PlanChoice::host_direct(Direction::HtoD, Precision::Double, Precision::Half, 20),
            );
        assert!(!s.is_baseline());
        assert_eq!(s.target_for("A", Precision::Double), Precision::Half);
        assert_eq!(s.target_for("B", Precision::Double), Precision::Double);
        assert_eq!(
            s.write_plans["A"].intermediate,
            Precision::Half,
            "direct host scaling wires the destination type"
        );
    }

    #[test]
    fn host_direct_dtoh_wires_source_type() {
        let p = PlanChoice::host_direct(Direction::DtoH, Precision::Half, Precision::Double, 4);
        assert_eq!(p.intermediate, Precision::Half);
    }
}
