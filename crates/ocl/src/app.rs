//! The host-application abstraction.
//!
//! A [`HostApp`] is the reproduction's stand-in for "an OpenCL program":
//! it owns the kernel sources and a host driver that allocates buffers,
//! transfers inputs, launches kernels and reads outputs through the
//! [`Session`] API. Because scaling is applied by the runtime (the
//! interposition layer), the same `run` body executes the baseline and
//! every scaled configuration unchanged.

use crate::error::OclError;
use crate::session::Session;
use crate::spec::ScalingSpec;
use prescaler_ir::{FloatVec, Program};
use prescaler_sim::SystemModel;

/// Named host-side output arrays of one run.
pub type Outputs = Vec<(String, FloatVec)>;

/// A complete OpenCL application: kernels plus host driver.
pub trait HostApp: Sync {
    /// Application name ("GEMM").
    fn name(&self) -> &str;

    /// The kernel program (original, unscaled precisions).
    fn program(&self) -> Program;

    /// Executes the host driver against a session, returning the
    /// host-visible outputs (used for quality evaluation).
    ///
    /// # Errors
    ///
    /// Propagates any [`OclError`] from the session API.
    fn run(&self, session: &mut Session) -> Result<Outputs, OclError>;
}

/// Runs an app once on `system` under `spec`, returning its outputs and
/// the completed profile.
///
/// # Errors
///
/// Propagates any [`OclError`] from the app's driver.
pub fn run_app(
    app: &dyn HostApp,
    system: &SystemModel,
    spec: &ScalingSpec,
) -> Result<(Outputs, crate::profile::ProfileLog), OclError> {
    let mut session = Session::new(system.clone(), app.program(), spec.clone());
    let outputs = app.run(&mut session)?;
    Ok((outputs, session.into_log()))
}

/// [`run_app`] with an explicit real worker-thread budget for the
/// session's data-parallel execution and conversion paths. Results are
/// bit-identical to [`run_app`] at any budget; only host wall-clock
/// changes.
///
/// # Errors
///
/// Propagates any [`OclError`] from the app's driver.
pub fn run_app_threaded(
    app: &dyn HostApp,
    system: &SystemModel,
    spec: &ScalingSpec,
    threads: usize,
) -> Result<(Outputs, crate::profile::ProfileLog), OclError> {
    let mut session =
        Session::new(system.clone(), app.program(), spec.clone()).with_exec_threads(threads);
    let outputs = app.run(&mut session)?;
    Ok((outputs, session.into_log()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::KernelArg;
    use prescaler_ir::dsl::*;
    use prescaler_ir::{Access, Precision};

    struct Doubler;

    impl HostApp for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }

        fn program(&self) -> Program {
            Program::new("doubler").with_kernel(
                kernel("dbl")
                    .buffer("x", Precision::Double, Access::ReadWrite)
                    .body(vec![
                        let_("i", global_id(0)),
                        store("x", var("i"), load("x", var("i")) * flit(2.0)),
                    ]),
            )
        }

        fn run(&self, session: &mut Session) -> Result<Outputs, OclError> {
            let n = 64;
            let x = session.create_buffer("X", n, Precision::Double)?;
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            session.enqueue_write(x, &FloatVec::from_f64_slice(&xs, Precision::Double))?;
            session.launch_kernel("dbl", [n, 1], &[("x", KernelArg::Buffer(x))])?;
            Ok(vec![("X".to_owned(), session.enqueue_read(x)?)])
        }
    }

    #[test]
    fn run_app_returns_outputs_and_profile() {
        let (outs, log) = run_app(&Doubler, &SystemModel::system1(), &ScalingSpec::baseline())
            .expect("doubler runs");
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1.get(5), 10.0);
        assert_eq!(log.objects.len(), 1);
        assert_eq!(log.events.len(), 3, "write + launch + read");
    }

    #[test]
    fn same_driver_runs_scaled_unchanged() {
        let spec = ScalingSpec::baseline().with_target("X", Precision::Half);
        let (outs, log) = run_app(&Doubler, &SystemModel::system1(), &spec).expect("scaled run");
        // 2*63 = 126 is exact in f16, so values still match here…
        assert_eq!(outs[0].1.get(63), 126.0);
        // …but the object really was stored as half on the device.
        assert_eq!(log.object("X").unwrap().device_precision, Precision::Half);
    }
}
