//! A miniature OpenCL-like runtime on the PreScaler system simulator.
//!
//! The paper implements PreScaler as a link-time interposition layer over
//! the OpenCL API (its Table 2): buffer creation, transfers and kernel
//! launches are wrapped so that (a) a dynamic profiler observes the
//! application's memory objects and events, and (b) a chosen precision
//! configuration is applied without touching application code. This crate
//! is that runtime:
//!
//! * [`session::Session`] — context + command queue: buffers, writes/reads
//!   with conversion plans, kernel launches (functionally executed,
//!   virtually timed);
//! * [`spec::ScalingSpec`] — the applied configuration (mechanism only);
//! * [`profile::ProfileLog`] — the recorded event stream and timeline;
//! * [`app::HostApp`] — the application abstraction the framework re-runs
//!   under different configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod error;
pub mod profile;
pub mod session;
pub mod spec;

pub use app::{run_app, run_app_threaded, HostApp, Outputs};
pub use error::OclError;
pub use profile::{Event, ObjectInfo, ProfileLog, Timeline, WriteStats};
pub use session::{default_exec_threads, BufferId, KernelArg, RetryPolicy, Session};
pub use spec::{PlanChoice, ScalingSpec};
