//! Runtime errors.

use core::fmt;
use prescaler_ir::interp::ExecError;
use prescaler_ir::typeck::TypeError;
use prescaler_ir::Precision;

/// An error raised by the mini OpenCL runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum OclError {
    /// A kernel name was not found in the program.
    UnknownKernel(String),
    /// A buffer handle did not belong to this session.
    InvalidBuffer(usize),
    /// Two buffers were created with the same label.
    DuplicateLabel(String),
    /// A kernel parameter was left unbound at launch.
    UnboundParam {
        /// Kernel name.
        kernel: String,
        /// Parameter name.
        param: String,
    },
    /// Host data passed to a write did not match the expected precision.
    HostPrecisionMismatch {
        /// Buffer label.
        label: String,
        /// Precision the session expected (the app's original type).
        expected: Precision,
        /// Precision of the supplied data.
        got: Precision,
    },
    /// Host data length did not match the buffer.
    LengthMismatch {
        /// Buffer label.
        label: String,
        /// Buffer length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// The (possibly transformed) kernel failed the type checker — a bug
    /// in a scaling configuration.
    BadKernel(TypeError),
    /// The kernel failed at execution time.
    Exec(ExecError),
}

impl fmt::Display for OclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OclError::UnknownKernel(n) => write!(f, "unknown kernel `{n}`"),
            OclError::InvalidBuffer(id) => write!(f, "invalid buffer handle {id}"),
            OclError::DuplicateLabel(l) => write!(f, "duplicate buffer label `{l}`"),
            OclError::UnboundParam { kernel, param } => {
                write!(f, "parameter `{param}` of kernel `{kernel}` is unbound")
            }
            OclError::HostPrecisionMismatch {
                label,
                expected,
                got,
            } => write!(
                f,
                "host data for `{label}` is {got}, expected {expected}"
            ),
            OclError::LengthMismatch {
                label,
                expected,
                got,
            } => write!(
                f,
                "host data for `{label}` has {got} elements, buffer holds {expected}"
            ),
            OclError::BadKernel(e) => write!(f, "scaled kernel rejected: {e}"),
            OclError::Exec(e) => write!(f, "kernel execution failed: {e}"),
        }
    }
}

impl std::error::Error for OclError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OclError::BadKernel(e) => Some(e),
            OclError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypeError> for OclError {
    fn from(e: TypeError) -> OclError {
        OclError::BadKernel(e)
    }
}

impl From<ExecError> for OclError {
    fn from(e: ExecError) -> OclError {
        OclError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OclError::UnboundParam {
            kernel: "gemm".into(),
            param: "a".into(),
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("`a`"));
        let e = OclError::HostPrecisionMismatch {
            label: "A".into(),
            expected: Precision::Double,
            got: Precision::Half,
        };
        assert!(e.to_string().contains("half"));
    }
}
