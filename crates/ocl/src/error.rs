//! Runtime errors.

use core::fmt;
use prescaler_ir::interp::ExecError;
use prescaler_ir::parse::ParseError;
use prescaler_ir::typeck::TypeError;
use prescaler_ir::Precision;
use prescaler_sim::SimTime;

/// An error raised by the mini OpenCL runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum OclError {
    /// A kernel name was not found in the program.
    UnknownKernel(String),
    /// A buffer handle did not belong to this session.
    InvalidBuffer(usize),
    /// Two buffers were created with the same label.
    DuplicateLabel(String),
    /// A kernel parameter was left unbound at launch.
    UnboundParam {
        /// Kernel name.
        kernel: String,
        /// Parameter name.
        param: String,
    },
    /// Host data passed to a write did not match the expected precision.
    HostPrecisionMismatch {
        /// Buffer label.
        label: String,
        /// Precision the session expected (the app's original type).
        expected: Precision,
        /// Precision of the supplied data.
        got: Precision,
    },
    /// Host data length did not match the buffer.
    LengthMismatch {
        /// Buffer label.
        label: String,
        /// Buffer length.
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// The (possibly transformed) kernel failed the type checker — a bug
    /// in a scaling configuration.
    BadKernel(TypeError),
    /// The kernel carries Error-severity IR-verifier diagnostics —
    /// structurally broken IR caught before compilation.
    Verify {
        /// Kernel name.
        kernel: String,
        /// The rendered diagnostics, `; `-joined.
        message: String,
    },
    /// Kernel source text failed to parse — a malformed program degrades
    /// into an error instead of aborting the run.
    BadSource(ParseError),
    /// The kernel failed at execution time.
    Exec(ExecError),
    /// A host↔device transfer aborted transiently (injected or modeled
    /// hardware hiccup). Retryable.
    TransferFault {
        /// Memory-object label.
        label: String,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// A kernel launch bounced transiently. Retryable.
    LaunchFault {
        /// Kernel name.
        kernel: String,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// An operation kept failing transiently until the session's retry
    /// budget was exhausted. Fatal.
    RetriesExhausted {
        /// Description of the operation ("write A", "launch gemm").
        what: String,
        /// Attempts made.
        attempts: u32,
    },
    /// Retry backoff exceeded the session's per-operation time budget.
    /// Fatal.
    Timeout {
        /// Description of the operation.
        what: String,
        /// The budget that was exceeded.
        budget: SimTime,
    },
    /// The device fell off the bus mid-operation. Fatal: unlike the
    /// transient transfer/launch bounces there is nothing to retry
    /// against — the caller must fail over and revalidate its tuning
    /// decisions once a device is back.
    DeviceLost {
        /// Description of the operation that found the device gone.
        what: String,
    },
}

impl OclError {
    /// Whether the failure is transient: a caller (or the session's own
    /// retry loop) may repeat the operation and expect it to succeed.
    /// Fatal errors — exhausted retries, timeouts, and every structural
    /// error — are not worth repeating.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            OclError::TransferFault { .. } | OclError::LaunchFault { .. }
        )
    }
}

impl fmt::Display for OclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OclError::UnknownKernel(n) => write!(f, "unknown kernel `{n}`"),
            OclError::InvalidBuffer(id) => write!(f, "invalid buffer handle {id}"),
            OclError::DuplicateLabel(l) => write!(f, "duplicate buffer label `{l}`"),
            OclError::UnboundParam { kernel, param } => {
                write!(f, "parameter `{param}` of kernel `{kernel}` is unbound")
            }
            OclError::HostPrecisionMismatch {
                label,
                expected,
                got,
            } => write!(f, "host data for `{label}` is {got}, expected {expected}"),
            OclError::LengthMismatch {
                label,
                expected,
                got,
            } => write!(
                f,
                "host data for `{label}` has {got} elements, buffer holds {expected}"
            ),
            OclError::BadKernel(e) => write!(f, "scaled kernel rejected: {e}"),
            OclError::Verify { kernel, message } => {
                write!(f, "kernel `{kernel}` failed IR verification: {message}")
            }
            OclError::BadSource(e) => write!(f, "kernel source rejected: {e}"),
            OclError::Exec(e) => write!(f, "kernel execution failed: {e}"),
            OclError::TransferFault { label, attempt } => {
                write!(f, "transfer of `{label}` aborted (attempt {attempt})")
            }
            OclError::LaunchFault { kernel, attempt } => {
                write!(f, "launch of `{kernel}` bounced (attempt {attempt})")
            }
            OclError::RetriesExhausted { what, attempts } => {
                write!(f, "{what} still failing after {attempts} attempts")
            }
            OclError::Timeout { what, budget } => {
                write!(f, "{what} timed out (budget {budget})")
            }
            OclError::DeviceLost { what } => {
                write!(f, "device lost during {what}")
            }
        }
    }
}

impl std::error::Error for OclError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OclError::BadKernel(e) => Some(e),
            OclError::BadSource(e) => Some(e),
            OclError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypeError> for OclError {
    fn from(e: TypeError) -> OclError {
        OclError::BadKernel(e)
    }
}

impl From<ParseError> for OclError {
    fn from(e: ParseError) -> OclError {
        OclError::BadSource(e)
    }
}

impl From<ExecError> for OclError {
    fn from(e: ExecError) -> OclError {
        OclError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = OclError::UnboundParam {
            kernel: "gemm".into(),
            param: "a".into(),
        };
        assert!(e.to_string().contains("gemm"));
        assert!(e.to_string().contains("`a`"));
        let e = OclError::HostPrecisionMismatch {
            label: "A".into(),
            expected: Precision::Double,
            got: Precision::Half,
        };
        assert!(e.to_string().contains("half"));
    }

    #[test]
    fn taxonomy_splits_transient_from_fatal() {
        let transient = [
            OclError::TransferFault {
                label: "A".into(),
                attempt: 1,
            },
            OclError::LaunchFault {
                kernel: "gemm".into(),
                attempt: 2,
            },
        ];
        for e in &transient {
            assert!(e.is_retryable(), "{e}");
        }
        let fatal = [
            OclError::RetriesExhausted {
                what: "write A".into(),
                attempts: 4,
            },
            OclError::Timeout {
                what: "launch gemm".into(),
                budget: SimTime::from_micros(50.0),
            },
            OclError::DeviceLost {
                what: "launch gemm".into(),
            },
            OclError::UnknownKernel("ghost".into()),
            OclError::InvalidBuffer(3),
        ];
        for e in &fatal {
            assert!(!e.is_retryable(), "{e}");
        }
    }
}
