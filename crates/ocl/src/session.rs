//! The command-queue session: buffers, transfers, kernel launches.
//!
//! A [`Session`] plays the role of an OpenCL context + command queue on one
//! simulated system. Every API call both *performs* the operation
//! functionally (real data, real rounding) and *accounts* its virtual time,
//! while the profiling layer records the event stream — exactly the split
//! of the paper's interposition library (Table 2): the application code
//! never changes; the active [`ScalingSpec`] changes what the calls do.

use crate::error::OclError;
use crate::profile::{ObjectInfo, ProfileLog, Timeline, WriteStats};
use crate::spec::ScalingSpec;
use prescaler_ir::interp::{run_kernel, BufferMap, Launch};
use prescaler_ir::passes::{insert_casts, retype_buffers};
use prescaler_ir::typeck::check_kernel;
use prescaler_ir::vm::{compile_kernel, CompiledKernel, VmScratch};
use prescaler_ir::{FloatVec, Param, Precision, Program, ScalarBound};
use prescaler_sim::{Direction, FaultPlan, HostMethod, SimTime, SystemModel, TransferPlan};
use std::collections::HashMap;

/// How a session rides out transient faults: bounded retries with
/// exponential backoff, all paid on the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (1 = no retry: the first transient
    /// failure surfaces to the caller as a retryable error).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimTime,
    /// Backoff growth per retry (exponential).
    pub multiplier: f64,
    /// Relative amplitude of the seeded backoff jitter: each backoff is
    /// scaled by a deterministic factor in `[1 - j, 1 + j]` drawn from
    /// `(jitter_seed, attempt)`. `0` disables jitter exactly, restoring
    /// the pure exponential schedule.
    pub jitter: f64,
    /// Seed of the jitter stream. Concurrent workers retrying after the
    /// same transient fault must carry *different* seeds (see
    /// [`RetryPolicy::with_jitter_salt`]) so their retries spread out
    /// instead of storming the device in lockstep.
    pub jitter_seed: u64,
    /// Per-operation cap on accumulated backoff; exceeding it is a fatal
    /// [`OclError::Timeout`]. `None` = unbounded.
    pub timeout: Option<SimTime>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimTime::from_micros(10.0),
            multiplier: 2.0,
            jitter: 0.25,
            jitter_seed: 0,
            timeout: Some(SimTime::from_secs(0.01)),
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy that never retries (transient faults surface directly).
    #[must_use]
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A copy whose jitter stream is decorrelated by `salt`: give every
    /// concurrent worker a distinct salt so a burst of simultaneous
    /// transient faults fans retries out over time instead of replaying
    /// the identical backoff schedule on all workers at once.
    #[must_use]
    pub fn with_jitter_salt(mut self, salt: u64) -> RetryPolicy {
        self.jitter_seed = splitmix64(self.jitter_seed ^ salt);
        self
    }

    /// Backoff charged after the `attempt`-th (1-based) failed attempt:
    /// exponential in the attempt, scaled by the seeded jitter factor.
    /// Deterministic — the same `(policy, attempt)` always waits the same
    /// virtual time, so replays stay bit-identical.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> SimTime {
        let exponential =
            self.base_backoff * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        if self.jitter <= 0.0 {
            return exponential;
        }
        let bits =
            splitmix64(self.jitter_seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F));
        let unit = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        exponential * (1.0 - self.jitter + 2.0 * self.jitter * unit).max(0.05)
    }
}

/// The process-wide default execution thread budget: the
/// `PRESCALER_EXEC_THREADS` environment variable when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`], otherwise 1.
/// A budget of 1 reproduces strictly sequential execution.
#[must_use]
pub fn default_exec_threads() -> usize {
    if let Ok(v) = std::env::var("PRESCALER_EXEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Handle to a device memory object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

/// A device buffer: label, shape, and live device-resident data.
#[derive(Clone, Debug)]
struct DeviceBuffer {
    label: String,
    declared: Precision,
    device_precision: Precision,
    data: FloatVec,
}

/// An argument binding for a kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelArg {
    /// Bind a buffer to a buffer parameter.
    Buffer(BufferId),
    /// Bind an integer scalar.
    Int(i64),
    /// Bind a float scalar (converted to the kernel's parameter type).
    Float(f64),
}

/// An OpenCL-like session on one simulated system.
#[derive(Debug)]
pub struct Session {
    system: SystemModel,
    program: Program,
    spec: ScalingSpec,
    buffers: Vec<DeviceBuffer>,
    log: ProfileLog,
    /// Precision-scaled kernel variants, compiled on first use (the
    /// paper's "compiler generates precision-scaled kernel in all
    /// possible cases" — here compiled lazily and cached).
    compiled: HashMap<(String, Vec<Precision>), std::sync::Arc<CompiledKernel>>,
    /// Use the reference tree-walking interpreter instead of the bytecode
    /// VM (slow; for differential testing).
    use_interpreter: bool,
    /// How transient faults are retried.
    retry: RetryPolicy,
    /// Register/binding storage reused across kernel launches.
    scratch: VmScratch,
    /// Real worker-thread budget for data-parallel kernel execution and
    /// precision conversion (1 = strictly sequential).
    exec_threads: usize,
}

impl Session {
    /// Creates a session for `program` on `system` under `spec`
    /// (`clCreateContext` + `clCreateProgramWithSource` + custom compile).
    #[must_use]
    pub fn new(system: SystemModel, program: Program, spec: ScalingSpec) -> Session {
        Session {
            system,
            program,
            spec,
            buffers: Vec::new(),
            log: ProfileLog::default(),
            compiled: HashMap::new(),
            use_interpreter: false,
            retry: RetryPolicy::default(),
            scratch: VmScratch::new(),
            exec_threads: default_exec_threads(),
        }
    }

    /// Replaces the retry policy for transient faults.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Session {
        self.retry = retry;
        self
    }

    /// Replaces the real worker-thread budget (clamped to at least 1).
    /// Execution results are bit-identical at every budget; only host
    /// wall-clock changes.
    #[must_use]
    pub fn with_exec_threads(mut self, threads: usize) -> Session {
        self.exec_threads = threads.max(1);
        self
    }

    /// Sets the real worker-thread budget in place (clamped to at least 1).
    pub fn set_exec_threads(&mut self, threads: usize) {
        self.exec_threads = threads.max(1);
    }

    /// The active real worker-thread budget.
    #[must_use]
    pub fn exec_threads(&self) -> usize {
        self.exec_threads
    }

    /// The active retry policy.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Rides out transient faults at one injection site: draws from the
    /// fault plan once per attempt, charging exponential backoff to the
    /// timeline. Returns `Ok` when an attempt goes through, the transient
    /// error itself when the policy forbids retries, and a fatal
    /// [`OclError::RetriesExhausted`]/[`OclError::Timeout`] otherwise.
    fn ride_out(
        &mut self,
        what: &str,
        fires: impl Fn(&FaultPlan) -> bool,
        transient: impl Fn(u32) -> OclError,
    ) -> Result<(), OclError> {
        let policy = self.retry;
        let mut waited = SimTime::ZERO;
        let mut attempt = 1u32;
        loop {
            if !fires(&self.system.faults) {
                return Ok(());
            }
            if policy.max_attempts <= 1 {
                return Err(transient(attempt));
            }
            if attempt >= policy.max_attempts {
                return Err(OclError::RetriesExhausted {
                    what: what.to_owned(),
                    attempts: attempt,
                });
            }
            let backoff = policy.backoff_for(attempt);
            if let Some(budget) = policy.timeout {
                if waited + backoff > budget {
                    // The cap truncates the final backoff: we stop waiting
                    // the moment the budget runs out, so only the truncated
                    // wait is charged to the timeline.
                    self.log
                        .record_fault_overhead(budget.saturating_sub(waited));
                    return Err(OclError::Timeout {
                        what: what.to_owned(),
                        budget,
                    });
                }
            }
            waited += backoff;
            self.log.record_fault_overhead(backoff);
            attempt += 1;
        }
    }

    /// Applies the fault plan's buffer corruption to freshly transferred
    /// data, if the plan says this transfer is poisoned.
    fn maybe_corrupt(&self, data: &mut FloatVec) {
        if let Some(c) = self.system.faults.corrupt_buffer() {
            if !data.is_empty() {
                let idx = (c.index_selector % data.len() as u64) as usize;
                data.set(idx, c.poison.value());
            }
        }
    }

    /// Switches kernel execution to the reference interpreter (an order
    /// of magnitude slower; produces bit-identical results — used for
    /// differential testing of the VM).
    pub fn set_use_interpreter(&mut self, yes: bool) {
        self.use_interpreter = yes;
    }

    /// The simulated system.
    #[must_use]
    pub fn system(&self) -> &SystemModel {
        &self.system
    }

    /// The active scaling specification.
    #[must_use]
    pub fn spec(&self) -> &ScalingSpec {
        &self.spec
    }

    /// The profile recorded so far.
    #[must_use]
    pub fn log(&self) -> &ProfileLog {
        &self.log
    }

    /// Consumes the session, returning the profile.
    #[must_use]
    pub fn into_log(self) -> ProfileLog {
        self.log
    }

    /// Aggregate virtual times.
    #[must_use]
    pub fn timeline(&self) -> Timeline {
        self.log.timeline
    }

    /// Creates a device buffer (`clCreateBuffer`). The device storage
    /// precision is the scaling spec's target for this label, defaulting
    /// to the declared precision.
    ///
    /// # Errors
    ///
    /// Returns [`OclError::DuplicateLabel`] if the label is already used.
    pub fn create_buffer(
        &mut self,
        label: impl Into<String>,
        len: usize,
        declared: Precision,
    ) -> Result<BufferId, OclError> {
        let label = label.into();
        if self.buffers.iter().any(|b| b.label == label) {
            return Err(OclError::DuplicateLabel(label));
        }
        let device_precision = self.spec.target_for(&label, declared);
        self.log.objects.push(ObjectInfo {
            label: label.clone(),
            len,
            declared,
            device_precision,
            host_written: None,
        });
        self.buffers.push(DeviceBuffer {
            label,
            declared,
            device_precision,
            data: FloatVec::zeros(len, device_precision),
        });
        Ok(BufferId(self.buffers.len() - 1))
    }

    fn buffer(&self, id: BufferId) -> Result<&DeviceBuffer, OclError> {
        self.buffers.get(id.0).ok_or(OclError::InvalidBuffer(id.0))
    }

    /// The current device-resident contents of a buffer (test/debug aid;
    /// not a timed operation).
    ///
    /// # Errors
    ///
    /// Returns [`OclError::InvalidBuffer`] for foreign handles.
    pub fn peek(&self, id: BufferId) -> Result<&FloatVec, OclError> {
        Ok(&self.buffer(id)?.data)
    }

    /// Writes host data into a device buffer (`clEnqueueWriteBuffer`),
    /// applying the spec's HtoD plan: host-side conversion, wire
    /// transfer, device-side conversion — all functional and all timed.
    ///
    /// # Errors
    ///
    /// Rejects wrong-precision or wrong-length host data and foreign
    /// handles.
    pub fn enqueue_write(&mut self, id: BufferId, host: &FloatVec) -> Result<(), OclError> {
        let buf = self.buffer(id)?;
        if host.precision() != buf.declared {
            return Err(OclError::HostPrecisionMismatch {
                label: buf.label.clone(),
                expected: buf.declared,
                got: host.precision(),
            });
        }
        if host.len() != buf.data.len() {
            return Err(OclError::LengthMismatch {
                label: buf.label.clone(),
                expected: buf.data.len(),
                got: host.len(),
            });
        }
        let plan = self.transfer_plan(
            Direction::HtoD,
            &buf.label,
            buf.declared,
            buf.device_precision,
        );
        let label = buf.label.clone();
        if self.system.faults.device_lost() {
            return Err(OclError::DeviceLost {
                what: format!("write `{label}`"),
            });
        }
        self.ride_out(
            &format!("write `{label}`"),
            FaultPlan::transfer_fails,
            |attempt| OclError::TransferFault {
                label: label.clone(),
                attempt,
            },
        )?;
        let noise = self.system.faults.time_noise_factor();
        let bandwidth = self.system.faults.bandwidth_factor();
        let cost = plan
            .time(&self.system, host.len())
            .at_bandwidth(bandwidth)
            .scaled(noise);
        // The simulated HostMethod drives the cost model above; the *real*
        // conversion parallelizes under the session's own thread budget.
        let mut data = plan.apply_with_threads(host, self.exec_threads);
        self.maybe_corrupt(&mut data);
        let wire_bytes = host.len() * plan.intermediate.size_bytes();
        let elems = host.len();
        self.buffers[id.0].data = data;
        self.log
            .record_transfer(&label, Direction::HtoD, elems, wire_bytes, cost);
        // Host-side value statistics seed the static range analysis;
        // taken from the *uncorrupted* host data at declared precision.
        self.log
            .record_host_write(&label, WriteStats::of(&host.to_f64_vec()));
        Ok(())
    }

    /// Reads a device buffer back to the host (`clEnqueueReadBuffer`) at
    /// the application's original precision, applying the spec's DtoH
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns [`OclError::InvalidBuffer`] for foreign handles.
    pub fn enqueue_read(&mut self, id: BufferId) -> Result<FloatVec, OclError> {
        let buf = self.buffer(id)?;
        let plan = self.transfer_plan(
            Direction::DtoH,
            &buf.label,
            buf.device_precision,
            buf.declared,
        );
        let label = buf.label.clone();
        if self.system.faults.device_lost() {
            return Err(OclError::DeviceLost {
                what: format!("read `{label}`"),
            });
        }
        self.ride_out(
            &format!("read `{label}`"),
            FaultPlan::transfer_fails,
            |attempt| OclError::TransferFault {
                label: label.clone(),
                attempt,
            },
        )?;
        let buf = self.buffer(id)?;
        let noise = self.system.faults.time_noise_factor();
        let bandwidth = self.system.faults.bandwidth_factor();
        let cost = plan
            .time(&self.system, buf.data.len())
            .at_bandwidth(bandwidth)
            .scaled(noise);
        let mut out = plan.apply_with_threads(&buf.data, self.exec_threads);
        self.maybe_corrupt(&mut out);
        let wire_bytes = buf.data.len() * plan.intermediate.size_bytes();
        let elems = buf.data.len();
        self.log
            .record_transfer(&label, Direction::DtoH, elems, wire_bytes, cost);
        Ok(out)
    }

    fn transfer_plan(
        &self,
        direction: Direction,
        label: &str,
        src: Precision,
        dst: Precision,
    ) -> TransferPlan {
        let choice = match direction {
            Direction::HtoD => self.spec.write_plans.get(label),
            Direction::DtoH => self.spec.read_plans.get(label),
        };
        match choice {
            Some(c) => TransferPlan {
                direction,
                src,
                intermediate: c.intermediate,
                dst,
                host_method: c.host_method,
            },
            None if src == dst => TransferPlan::direct(direction, src),
            // A scaled object without an explicit plan converts on the
            // host with a plain loop — the least surprising default.
            None => TransferPlan::host_scaled(direction, src, dst, HostMethod::Loop),
        }
    }

    /// Launches a kernel (`clSetKernelArg`* + `clEnqueueNDRangeKernel`).
    ///
    /// The kernel actually executed is the program's kernel *re-typed to
    /// the bound buffers' device precisions* (the spec's memory-object
    /// scaling), then transformed by the spec's in-kernel cast map if one
    /// is present. The transformed kernel is re-checked, interpreted
    /// functionally, and its dynamic operation counts are priced on the
    /// GPU model.
    ///
    /// # Errors
    ///
    /// Propagates unknown kernels, unbound/foreign arguments, a scaled
    /// kernel failing the type checker, and execution errors.
    pub fn launch_kernel(
        &mut self,
        name: &str,
        global: [usize; 2],
        args: &[(&str, KernelArg)],
    ) -> Result<SimTime, OclError> {
        // Only the parameter list is needed up front; the kernel body is
        // re-borrowed lazily below, so launches hitting the compiled-variant
        // cache never clone the kernel.
        let params: Vec<Param> = self
            .program
            .kernel(name)
            .ok_or_else(|| OclError::UnknownKernel(name.to_owned()))?
            .params
            .clone();

        if self.system.faults.device_lost() {
            return Err(OclError::DeviceLost {
                what: format!("launch `{name}`"),
            });
        }
        self.ride_out(
            &format!("launch `{name}`"),
            FaultPlan::launch_fails,
            |attempt| OclError::LaunchFault {
                kernel: name.to_owned(),
                attempt,
            },
        )?;

        // Resolve bindings.
        let mut retype: HashMap<String, Precision> = HashMap::new();
        let mut buffer_args: Vec<(String, BufferId)> = Vec::new();
        let mut scalar_args: Vec<(String, ScalarBound)> = Vec::new();
        let mut launch = Launch {
            global,
            args: Vec::new(),
        };
        for p in &params {
            let supplied = args
                .iter()
                .find(|(n, _)| *n == p.name())
                .map(|(_, v)| v)
                .ok_or_else(|| OclError::UnboundParam {
                    kernel: name.to_owned(),
                    param: p.name().to_owned(),
                })?;
            match (p, supplied) {
                (Param::Buffer { name: pname, .. }, KernelArg::Buffer(id)) => {
                    let b = self.buffer(*id)?;
                    retype.insert(pname.clone(), b.device_precision);
                    buffer_args.push((pname.clone(), *id));
                }
                (Param::Scalar { name: pname, .. }, KernelArg::Int(v)) => {
                    scalar_args.push((pname.clone(), ScalarBound::Int(*v)));
                    launch = launch.arg_int(pname.clone(), *v);
                }
                (Param::Scalar { name: pname, .. }, KernelArg::Float(v)) => {
                    scalar_args.push((pname.clone(), ScalarBound::Float(*v)));
                    launch = launch.arg_float(pname.clone(), *v);
                }
                _ => {
                    return Err(OclError::UnboundParam {
                        kernel: name.to_owned(),
                        param: p.name().to_owned(),
                    })
                }
            }
        }

        // Select (or compile) the precision-scaled kernel variant.
        let variant_key = (
            name.to_owned(),
            params
                .iter()
                .filter_map(|p| match p {
                    Param::Buffer { name: pn, .. } => retype.get(pn).copied(),
                    Param::Scalar { .. } => None,
                })
                .collect::<Vec<Precision>>(),
        );
        // Exactly one execution engine per launch, decided here — making
        // the choice a total enum (instead of two `Option`s with an
        // implicit invariant) keeps the dispatch below panic-free.
        enum Engine {
            Interp(prescaler_ir::Kernel),
            Compiled(std::sync::Arc<CompiledKernel>),
        }
        let scale_variant = |session: &Session| -> prescaler_ir::Kernel {
            let kernel = session.program.kernel(name).expect("existence checked");
            let mut scaled = retype_buffers(kernel, &retype);
            if let Some(compute) = session.spec.in_kernel.get(name) {
                scaled = insert_casts(&scaled, compute);
            }
            scaled
        };
        let engine = if self.use_interpreter {
            let scaled = scale_variant(self);
            check_kernel(&scaled)?;
            reject_verifier_errors(&scaled)?;
            Engine::Interp(scaled)
        } else if let Some(c) = self.compiled.get(&variant_key) {
            Engine::Compiled(c.clone())
        } else {
            let scaled = scale_variant(self);
            check_kernel(&scaled)?;
            reject_verifier_errors(&scaled)?;
            let c = std::sync::Arc::new(compile_kernel(&scaled)?);
            self.compiled.insert(variant_key, c.clone());
            Engine::Compiled(c)
        };

        // Move the bound buffers into an interpreter map, run, move back.
        let mut map = BufferMap::new();
        for (pname, id) in &buffer_args {
            map.insert(
                pname.clone(),
                std::mem::replace(
                    &mut self.buffers[id.0].data,
                    FloatVec::zeros(0, Precision::Half),
                ),
            );
        }
        let result = match &engine {
            Engine::Interp(k) => run_kernel(k, &mut map, &launch),
            Engine::Compiled(c) if self.exec_threads > 1 => {
                c.run_parallel(&mut map, &launch, &mut self.scratch, self.exec_threads)
            }
            Engine::Compiled(c) => c.run_with_scratch(&mut map, &launch, &mut self.scratch),
        };
        for (pname, id) in &buffer_args {
            if let Some(data) = map.remove(pname.as_str()) {
                self.buffers[id.0].data = data;
            }
        }
        let counts = result?;

        // System drift (thermal throttle, an *actual* slower clock) and
        // measurement noise compose: the throttled device recomputes the
        // roofline at the reduced clock, then noise perturbs the reading.
        let throttle = self.system.faults.throttle_factor();
        let gpu_time = if throttle == 1.0 {
            self.system.gpu.kernel_time(&counts)
        } else {
            self.system.gpu.throttled(throttle).kernel_time(&counts)
        };
        let time = gpu_time * self.system.faults.time_noise_factor();
        let arg_map: Vec<(String, String)> = buffer_args
            .iter()
            .map(|(pname, id)| (pname.clone(), self.buffers[id.0].label.clone()))
            .collect();
        self.log
            .record_kernel(name, arg_map, scalar_args, global, counts, time);
        Ok(time)
    }
}

/// Rejects a kernel carrying Error-severity verifier diagnostics —
/// structurally broken IR must never reach compilation or execution.
/// Warnings (dead stores, unused params) are the lint tool's business.
fn reject_verifier_errors(kernel: &prescaler_ir::Kernel) -> Result<(), OclError> {
    let errors: Vec<String> = prescaler_ir::verify_kernel(kernel)
        .into_iter()
        .filter(|d| d.severity() == prescaler_ir::Severity::Error)
        .map(|d| d.to_string())
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(OclError::Verify {
            kernel: kernel.name.clone(),
            message: errors.join("; "),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlanChoice;
    use prescaler_ir::dsl::*;
    use prescaler_ir::Access;

    fn vec_scale_program() -> Program {
        Program::new("vscale").with_kernel(
            kernel("vscale")
                .buffer("x", Precision::Double, Access::Read)
                .buffer("y", Precision::Double, Access::Write)
                .float_param_like("a", "x")
                .int_param("n")
                .body(vec![
                    let_("i", global_id(0)),
                    if_(
                        lt(var("i"), var("n")),
                        vec![store("y", var("i"), var("a") * load("x", var("i")))],
                    ),
                ]),
        )
    }

    fn run_once(spec: ScalingSpec) -> (FloatVec, Timeline) {
        let mut s = Session::new(SystemModel::system1(), vec_scale_program(), spec);
        let n = 1024usize;
        let x = s.create_buffer("X", n, Precision::Double).unwrap();
        let y = s.create_buffer("Y", n, Precision::Double).unwrap();
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        s.enqueue_write(x, &FloatVec::from_f64_slice(&xs, Precision::Double))
            .unwrap();
        s.launch_kernel(
            "vscale",
            [n, 1],
            &[
                ("x", KernelArg::Buffer(x)),
                ("y", KernelArg::Buffer(y)),
                ("a", KernelArg::Float(3.0)),
                ("n", KernelArg::Int(n as i64)),
            ],
        )
        .unwrap();
        let out = s.enqueue_read(y).unwrap();
        (out, s.timeline())
    }

    fn run_on(system: SystemModel) -> Result<(FloatVec, Timeline), OclError> {
        run_on_sized(system, 1024)
    }

    fn run_on_sized(system: SystemModel, n: usize) -> Result<(FloatVec, Timeline), OclError> {
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline());
        let x = s.create_buffer("X", n, Precision::Double)?;
        let y = s.create_buffer("Y", n, Precision::Double)?;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        s.enqueue_write(x, &FloatVec::from_f64_slice(&xs, Precision::Double))?;
        s.launch_kernel(
            "vscale",
            [n, 1],
            &[
                ("x", KernelArg::Buffer(x)),
                ("y", KernelArg::Buffer(y)),
                ("a", KernelArg::Float(3.0)),
                ("n", KernelArg::Int(n as i64)),
            ],
        )?;
        let out = s.enqueue_read(y)?;
        Ok((out, s.timeline()))
    }

    #[test]
    fn throttle_slows_kernels_but_not_results() {
        // Big enough that per-element cost beats the fixed launch
        // latency, and throttled deep enough that the reduced-clock
        // compute side overtakes the (unthrottled) memory side of the
        // roofline.
        let n = 1 << 18;
        let (clean_out, clean) = run_on_sized(SystemModel::system1(), n).unwrap();
        let hot = SystemModel::system1().with_faults(FaultPlan::seeded(3).with_throttle(1.0, 1.0));
        let (out, tl) = run_on_sized(hot, n).unwrap();
        assert!(
            tl.kernel > clean.kernel,
            "{} !> {}",
            tl.kernel,
            clean.kernel
        );
        assert_eq!(tl.htod, clean.htod, "throttle must not touch transfers");
        assert_eq!(out.get(10), clean_out.get(10), "drift is timing-only");
    }

    #[test]
    fn bandwidth_drop_slows_transfers_but_not_kernels() {
        let (_, clean) = run_on(SystemModel::system1()).unwrap();
        let degraded =
            SystemModel::system1().with_faults(FaultPlan::seeded(3).with_bandwidth_drop(1.0, 0.5));
        let (_, tl) = run_on(degraded).unwrap();
        assert!(tl.htod > clean.htod, "{} !> {}", tl.htod, clean.htod);
        assert!(tl.dtoh > clean.dtoh);
        assert_eq!(tl.kernel, clean.kernel, "link drop must not touch kernels");
    }

    #[test]
    fn device_loss_is_a_fatal_typed_error() {
        let gone = SystemModel::system1().with_faults(FaultPlan::seeded(3).with_device_loss(1.0));
        let err = run_on(gone).unwrap_err();
        assert!(matches!(err, OclError::DeviceLost { .. }), "{err}");
        assert!(!err.is_retryable(), "device loss must not be ridden out");
    }

    #[test]
    fn baseline_run_is_exact_in_double() {
        let (out, tl) = run_once(ScalingSpec::baseline());
        assert_eq!(out.precision(), Precision::Double);
        assert_eq!(out.get(10), 15.0);
        assert!(tl.kernel > SimTime::ZERO);
        assert!(tl.htod > SimTime::ZERO);
        assert!(tl.dtoh > SimTime::ZERO);
        assert_eq!(tl.host_convert, SimTime::ZERO);
        assert_eq!(tl.device_convert, SimTime::ZERO);
    }

    #[test]
    fn scaled_run_converts_and_computes_in_target_precision() {
        let spec = ScalingSpec::baseline()
            .with_target("X", Precision::Half)
            .with_target("Y", Precision::Half);
        let (out, tl) = run_once(spec);
        // Output is read back at the app's declared double precision…
        assert_eq!(out.precision(), Precision::Double);
        // …but values went through binary16: 3 * 511.5 = 1534.5 is an
        // exact tie at ulp=1 and rounds to the even neighbour 1534.
        let exact = 3.0 * 511.5;
        let got = out.get(1023);
        assert_eq!(got, 1534.0, "exact {exact} must round to even in f16");
        assert!(tl.host_convert > SimTime::ZERO, "loop conversion on write");
    }

    #[test]
    fn scaled_wire_is_smaller() {
        let mut s_base = Session::new(
            SystemModel::system1(),
            vec_scale_program(),
            ScalingSpec::baseline(),
        );
        let mut s_scaled = Session::new(
            SystemModel::system1(),
            vec_scale_program(),
            ScalingSpec::baseline()
                .with_target("X", Precision::Half)
                .with_write_plan(
                    "X",
                    PlanChoice::host_direct(Direction::HtoD, Precision::Double, Precision::Half, 8),
                ),
        );
        let n = 1 << 16;
        let xs = FloatVec::from_f64_slice(&vec![1.0; n], Precision::Double);
        for s in [&mut s_base, &mut s_scaled] {
            let x = s.create_buffer("X", n, Precision::Double).unwrap();
            s.enqueue_write(x, &xs).unwrap();
        }
        let wire = |s: &Session| match &s.log().events[0] {
            crate::profile::Event::Transfer { wire_bytes, .. } => *wire_bytes,
            other => panic!("{other:?}"),
        };
        assert_eq!(wire(&s_base), n * 8);
        assert_eq!(wire(&s_scaled), n * 2);
        assert!(s_scaled.timeline().htod < s_base.timeline().htod);
    }

    #[test]
    fn in_kernel_spec_pays_conversions_but_keeps_buffers() {
        let mut spec = ScalingSpec::baseline();
        spec.in_kernel.insert(
            "vscale".into(),
            HashMap::from([
                ("x".to_owned(), Precision::Single),
                ("y".to_owned(), Precision::Single),
            ]),
        );
        let mut s = Session::new(SystemModel::system1(), vec_scale_program(), spec);
        let n = 256usize;
        let x = s.create_buffer("X", n, Precision::Double).unwrap();
        let y = s.create_buffer("Y", n, Precision::Double).unwrap();
        s.enqueue_write(
            x,
            &FloatVec::from_f64_slice(&vec![0.1; n], Precision::Double),
        )
        .unwrap();
        s.launch_kernel(
            "vscale",
            [n, 1],
            &[
                ("x", KernelArg::Buffer(x)),
                ("y", KernelArg::Buffer(y)),
                ("a", KernelArg::Float(1.0)),
                ("n", KernelArg::Int(n as i64)),
            ],
        )
        .unwrap();
        // Device buffer stays double…
        assert_eq!(s.peek(y).unwrap().precision(), Precision::Double);
        // …but the value went through single precision.
        assert_eq!(s.peek(y).unwrap().get(0), f64::from(0.1f32));
        // And the launch logged conversion instructions.
        match &s.log().events[1] {
            crate::profile::Event::KernelLaunch { counts, .. } => {
                assert!(counts.converts >= n as u64, "casts in the kernel");
                assert!(counts.at(Precision::Single).mul == n as u64);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_surface_cleanly() {
        let mut s = Session::new(
            SystemModel::system1(),
            vec_scale_program(),
            ScalingSpec::baseline(),
        );
        let x = s.create_buffer("X", 4, Precision::Double).unwrap();
        assert!(matches!(
            s.create_buffer("X", 4, Precision::Double),
            Err(OclError::DuplicateLabel(_))
        ));
        assert!(matches!(
            s.enqueue_write(x, &FloatVec::zeros(4, Precision::Single)),
            Err(OclError::HostPrecisionMismatch { .. })
        ));
        assert!(matches!(
            s.enqueue_write(x, &FloatVec::zeros(8, Precision::Double)),
            Err(OclError::LengthMismatch { .. })
        ));
        assert!(matches!(
            s.launch_kernel("ghost", [1, 1], &[]),
            Err(OclError::UnknownKernel(_))
        ));
        assert!(matches!(
            s.launch_kernel("vscale", [1, 1], &[("x", KernelArg::Buffer(x))]),
            Err(OclError::UnboundParam { .. })
        ));
    }

    #[test]
    fn retries_ride_out_transient_transfer_faults() {
        // ~30% failure rate with 4 attempts: every write goes through,
        // and the paid backoff shows up on the virtual clock.
        let system =
            SystemModel::system1().with_faults(FaultPlan::seeded(5).with_transfer_failures(0.3));
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline());
        let n = 512usize;
        let x = s.create_buffer("X", n, Precision::Double).unwrap();
        let xs = FloatVec::from_f64_slice(&vec![1.0; n], Precision::Double);
        for _ in 0..50 {
            s.enqueue_write(x, &xs).unwrap();
        }
        assert!(
            s.timeline().fault_overhead > SimTime::ZERO,
            "some attempt must have failed and paid backoff"
        );
        assert!(s.timeline().total() > s.timeline().htod);
    }

    #[test]
    fn no_retry_policy_surfaces_retryable_errors() {
        let system =
            SystemModel::system1().with_faults(FaultPlan::seeded(5).with_transfer_failures(0.9));
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline())
            .with_retry_policy(RetryPolicy::no_retries());
        let x = s.create_buffer("X", 8, Precision::Double).unwrap();
        let xs = FloatVec::from_f64_slice(&[1.0; 8], Precision::Double);
        let mut saw_transient = false;
        for _ in 0..20 {
            if let Err(e) = s.enqueue_write(x, &xs) {
                assert!(matches!(e, OclError::TransferFault { .. }), "{e}");
                assert!(e.is_retryable());
                saw_transient = true;
            }
        }
        assert!(saw_transient, "at 90% failure rate something must fail");
    }

    #[test]
    fn exhausted_retries_become_fatal() {
        // Certain failure: every attempt fails, the budget runs out, and
        // the error is fatal (not retryable).
        let system =
            SystemModel::system1().with_faults(FaultPlan::seeded(5).with_transfer_failures(1.0));
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline());
        let x = s.create_buffer("X", 8, Precision::Double).unwrap();
        let xs = FloatVec::from_f64_slice(&[1.0; 8], Precision::Double);
        let e = s.enqueue_write(x, &xs).unwrap_err();
        assert!(
            matches!(
                e,
                OclError::RetriesExhausted { .. } | OclError::Timeout { .. }
            ),
            "{e}"
        );
        assert!(!e.is_retryable());
    }

    #[test]
    fn truncated_final_backoff_charges_exactly_the_budget() {
        // With jitter disabled the power-of-two durations keep every sum
        // exact, so the assertion below is bit-exact: backoffs 2⁻¹⁷s,
        // 2⁻¹⁶s, then 2⁻¹⁵s which the 3.5·2⁻¹⁷s budget truncates to
        // 2⁻¹⁸s — overhead must equal the budget, not the untruncated sum.
        let base = SimTime::from_secs(2f64.powi(-17));
        let budget = SimTime::from_secs(3.5 * 2f64.powi(-17));
        let policy = RetryPolicy {
            max_attempts: 16,
            base_backoff: base,
            multiplier: 2.0,
            jitter: 0.0,
            jitter_seed: 0,
            timeout: Some(budget),
        };
        let system =
            SystemModel::system1().with_faults(FaultPlan::seeded(5).with_transfer_failures(1.0));
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline())
            .with_retry_policy(policy);
        let x = s.create_buffer("X", 8, Precision::Double).unwrap();
        let xs = FloatVec::from_f64_slice(&[1.0; 8], Precision::Double);
        let e = s.enqueue_write(x, &xs).unwrap_err();
        assert!(matches!(e, OclError::Timeout { .. }), "{e}");
        assert_eq!(
            s.timeline().fault_overhead,
            budget,
            "overhead must sum exactly to the truncated waits"
        );
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_decorrelated() {
        let policy = RetryPolicy::default();
        assert!(policy.jitter > 0.0, "jitter is on by default");
        for attempt in 1..=8u32 {
            let exact = policy.base_backoff * policy.multiplier.powi(attempt as i32 - 1);
            let jittered = policy.backoff_for(attempt);
            // Deterministic: the same (policy, attempt) always waits the
            // same virtual time…
            assert_eq!(jittered, policy.backoff_for(attempt));
            // …inside the configured band around the exponential schedule.
            let ratio = jittered.as_secs() / exact.as_secs();
            assert!(
                (1.0 - policy.jitter..=1.0 + policy.jitter).contains(&ratio),
                "attempt {attempt}: ratio {ratio} outside the jitter band"
            );
        }
        // Distinct worker salts must not retry in lockstep.
        let a = policy.with_jitter_salt(1);
        let b = policy.with_jitter_salt(2);
        let schedule =
            |p: &RetryPolicy| -> Vec<SimTime> { (1..=6).map(|i| p.backoff_for(i)).collect() };
        assert_ne!(schedule(&a), schedule(&b), "salts must decorrelate");
        assert_eq!(schedule(&a), schedule(&a), "each stream stays replayable");
        // Zero jitter restores the pure exponential schedule exactly.
        let plain = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        for attempt in 1..=8u32 {
            assert_eq!(
                plain.backoff_for(attempt),
                plain.base_backoff * plain.multiplier.powi(attempt as i32 - 1)
            );
        }
    }

    #[test]
    fn corruption_poisons_exactly_when_planned() {
        let system =
            SystemModel::system1().with_faults(FaultPlan::seeded(2).with_buffer_corruption(1.0));
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline());
        let n = 64usize;
        let x = s.create_buffer("X", n, Precision::Double).unwrap();
        s.enqueue_write(
            x,
            &FloatVec::from_f64_slice(&vec![1.0; n], Precision::Double),
        )
        .unwrap();
        let poisoned = (0..n)
            .filter(|&i| !s.peek(x).unwrap().get(i).is_finite())
            .count();
        assert_eq!(poisoned, 1, "exactly one element poisoned per transfer");
    }

    #[test]
    fn clock_noise_moves_time_but_not_values() {
        let clean = run_once(ScalingSpec::baseline());
        let system = SystemModel::system1().with_faults(FaultPlan::seeded(3).with_clock_noise(0.2));
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline());
        let n = 1024usize;
        let x = s.create_buffer("X", n, Precision::Double).unwrap();
        let y = s.create_buffer("Y", n, Precision::Double).unwrap();
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        s.enqueue_write(x, &FloatVec::from_f64_slice(&xs, Precision::Double))
            .unwrap();
        s.launch_kernel(
            "vscale",
            [n, 1],
            &[
                ("x", KernelArg::Buffer(x)),
                ("y", KernelArg::Buffer(y)),
                ("a", KernelArg::Float(3.0)),
                ("n", KernelArg::Int(n as i64)),
            ],
        )
        .unwrap();
        let out = s.enqueue_read(y).unwrap();
        // Functional results are untouched by clock noise…
        assert_eq!(out.get(10), clean.0.get(10));
        // …but the measured time differs from the clean run.
        assert_ne!(s.timeline().total(), clean.1.total());
    }

    #[test]
    fn inert_fault_plan_is_bit_identical_to_default() {
        let (out_a, tl_a) = run_once(ScalingSpec::baseline());
        // Same run on a system carrying an explicitly-disabled plan.
        let system = SystemModel::system1().with_faults(
            FaultPlan::seeded(1234)
                .with_transfer_failures(0.0)
                .with_launch_failures(0.0)
                .with_buffer_corruption(0.0)
                .with_db_corruption(0.0)
                .with_clock_noise(0.0),
        );
        let mut s = Session::new(system, vec_scale_program(), ScalingSpec::baseline());
        let n = 1024usize;
        let x = s.create_buffer("X", n, Precision::Double).unwrap();
        let y = s.create_buffer("Y", n, Precision::Double).unwrap();
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        s.enqueue_write(x, &FloatVec::from_f64_slice(&xs, Precision::Double))
            .unwrap();
        s.launch_kernel(
            "vscale",
            [n, 1],
            &[
                ("x", KernelArg::Buffer(x)),
                ("y", KernelArg::Buffer(y)),
                ("a", KernelArg::Float(3.0)),
                ("n", KernelArg::Int(n as i64)),
            ],
        )
        .unwrap();
        let out_b = s.enqueue_read(y).unwrap();
        for i in 0..n {
            assert_eq!(out_a.get(i).to_bits(), out_b.get(i).to_bits());
        }
        assert_eq!(tl_a, s.timeline());
        assert_eq!(s.timeline().fault_overhead, SimTime::ZERO);
    }

    #[test]
    fn transient_write_plan_rounds_through_the_wire_type() {
        let spec = ScalingSpec::baseline()
            .with_target("X", Precision::Single)
            .with_write_plan(
                "X",
                PlanChoice {
                    intermediate: Precision::Half,
                    host_method: HostMethod::Loop,
                },
            );
        let mut s = Session::new(SystemModel::system1(), vec_scale_program(), spec);
        let x = s.create_buffer("X", 1, Precision::Double).unwrap();
        s.enqueue_write(x, &FloatVec::from_f64_slice(&[0.1], Precision::Double))
            .unwrap();
        let dev = s.peek(x).unwrap();
        assert_eq!(dev.precision(), Precision::Single);
        // The value carries binary16 rounding even though storage is f32.
        assert_ne!(dev.get(0), f64::from(0.1f32));
    }
}
