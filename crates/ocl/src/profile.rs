//! The dynamic profiling log — what the paper's interposition library
//! records for the application profiler (Table 2).

use prescaler_ir::{OpCounts, Precision, ScalarBound};
use prescaler_sim::{Direction, SimTime, TransferCost};

/// Value statistics of host data written to a memory object — the
/// observed realization of the application's declared input model,
/// recorded at `clEnqueueWriteBuffer` time. Seeds the static
/// value-range analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WriteStats {
    /// Smallest value written.
    pub lo: f64,
    /// Largest value written.
    pub hi: f64,
    /// Arithmetic mean of the written values.
    pub mean: f64,
    /// Number of elements the statistics cover.
    pub count: usize,
}

impl WriteStats {
    /// Statistics over one host slice; `None` for empty slices.
    #[must_use]
    pub fn of(data: &[f64]) -> Option<WriteStats> {
        if data.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
        }
        Some(WriteStats {
            lo,
            hi,
            mean: sum / data.len() as f64,
            count: data.len(),
        })
    }

    /// Merges statistics from a later write to the same object.
    #[must_use]
    pub fn merge(self, other: WriteStats) -> WriteStats {
        let n = self.count + other.count;
        WriteStats {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            mean: (self.mean * self.count as f64 + other.mean * other.count as f64) / n as f64,
            count: n,
        }
    }
}

/// Aggregate virtual time per program phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Timeline {
    /// Host→device wire time.
    pub htod: SimTime,
    /// Device→host wire time.
    pub dtoh: SimTime,
    /// Kernel execution time.
    pub kernel: SimTime,
    /// Host-side conversion time (attributed to its transfer).
    pub host_convert: SimTime,
    /// Device-side conversion time (attributed to its transfer).
    pub device_convert: SimTime,
    /// Retry backoff paid riding out transient faults (zero on a clean
    /// run).
    pub fault_overhead: SimTime,
    /// Sentinel work charged by guarded execution (canary runs and
    /// breaker bookkeeping). Always zero for plain `run_app` timelines —
    /// only the guard's cumulative report accrues it, so per-run
    /// timelines stay bit-identical with the guard enabled.
    pub guard_overhead: SimTime,
}

impl Timeline {
    /// Total program time.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.htod
            + self.dtoh
            + self.kernel
            + self.host_convert
            + self.device_convert
            + self.fault_overhead
            + self.guard_overhead
    }

    /// Merges another timeline into this one, phase by phase.
    pub fn accumulate(&mut self, other: &Timeline) {
        self.htod += other.htod;
        self.dtoh += other.dtoh;
        self.kernel += other.kernel;
        self.host_convert += other.host_convert;
        self.device_convert += other.device_convert;
        self.fault_overhead += other.fault_overhead;
        self.guard_overhead += other.guard_overhead;
    }

    /// Total transfer-side time (wire + both conversion legs) — the
    /// paper's "data transfer" fraction.
    #[must_use]
    pub fn transfer_side(&self) -> SimTime {
        self.htod + self.dtoh + self.host_convert + self.device_convert
    }

    fn add_transfer(&mut self, direction: Direction, cost: TransferCost) {
        match direction {
            Direction::HtoD => self.htod += cost.transfer,
            Direction::DtoH => self.dtoh += cost.transfer,
        }
        self.host_convert += cost.host_convert;
        self.device_convert += cost.device_convert;
    }
}

/// One memory object as observed by the profiler.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectInfo {
    /// Application-chosen label ("A", "B", …).
    pub label: String,
    /// Element count.
    pub len: usize,
    /// The application's original element precision.
    pub declared: Precision,
    /// The device storage precision under the active scaling spec.
    pub device_precision: Precision,
    /// Statistics of host data written to this object, if any writes
    /// occurred (merged across writes).
    pub host_written: Option<WriteStats>,
}

impl ObjectInfo {
    /// Original (unscaled) size in bytes — the paper's "allocated data
    /// size".
    #[must_use]
    pub fn declared_bytes(&self) -> usize {
        self.len * self.declared.size_bytes()
    }
}

/// One profiled runtime event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A buffer transfer (`clEnqueueWriteBuffer`/`clEnqueueReadBuffer`).
    Transfer {
        /// Memory-object label.
        label: String,
        /// Direction.
        direction: Direction,
        /// Elements moved.
        elems: usize,
        /// Bytes on the wire (at the wire precision).
        wire_bytes: usize,
        /// Cost breakdown.
        cost: TransferCost,
    },
    /// A kernel launch (`clEnqueueNDRangeKernel`).
    KernelLaunch {
        /// Kernel name.
        kernel: String,
        /// Buffer-param → memory-object-label mapping snapshot
        /// (the paper's `clSetKernelArg` record).
        args: Vec<(String, String)>,
        /// Scalar-param → value snapshot (the non-buffer half of the
        /// `clSetKernelArg` record), feeding the static range analysis.
        scalar_args: Vec<(String, ScalarBound)>,
        /// The launch NDRange.
        global: [usize; 2],
        /// Dynamic operation counts of this launch (boxed: the per-
        /// precision table dwarfs every other event payload).
        counts: Box<OpCounts>,
        /// Virtual execution time.
        time: SimTime,
    },
}

impl Event {
    /// The virtual duration of this event.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        match self {
            Event::Transfer { cost, .. } => cost.total(),
            Event::KernelLaunch { time, .. } => *time,
        }
    }

    /// The memory-object labels this event touches.
    #[must_use]
    pub fn touches(&self, label: &str) -> bool {
        match self {
            Event::Transfer { label: l, .. } => l == label,
            Event::KernelLaunch { args, .. } => args.iter().any(|(_, obj)| obj == label),
        }
    }
}

/// The complete profile of one application run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileLog {
    /// Memory objects in creation order.
    pub objects: Vec<ObjectInfo>,
    /// Events in execution order.
    pub events: Vec<Event>,
    /// Aggregate times.
    pub timeline: Timeline,
}

impl ProfileLog {
    /// Records a transfer.
    pub(crate) fn record_transfer(
        &mut self,
        label: &str,
        direction: Direction,
        elems: usize,
        wire_bytes: usize,
        cost: TransferCost,
    ) {
        self.timeline.add_transfer(direction, cost);
        self.events.push(Event::Transfer {
            label: label.to_owned(),
            direction,
            elems,
            wire_bytes,
            cost,
        });
    }

    /// Records retry backoff spent riding out a transient fault.
    pub(crate) fn record_fault_overhead(&mut self, t: SimTime) {
        self.timeline.fault_overhead += t;
    }

    /// Records a kernel launch.
    pub(crate) fn record_kernel(
        &mut self,
        kernel: &str,
        args: Vec<(String, String)>,
        scalar_args: Vec<(String, ScalarBound)>,
        global: [usize; 2],
        counts: OpCounts,
        time: SimTime,
    ) {
        self.timeline.kernel += time;
        self.events.push(Event::KernelLaunch {
            kernel: kernel.to_owned(),
            args,
            scalar_args,
            global,
            counts: Box::new(counts),
            time,
        });
    }

    /// Merges host-write value statistics into an object's record.
    pub(crate) fn record_host_write(&mut self, label: &str, stats: Option<WriteStats>) {
        let Some(stats) = stats else { return };
        if let Some(obj) = self.objects.iter_mut().find(|o| o.label == label) {
            obj.host_written = Some(match obj.host_written {
                Some(prev) => prev.merge(stats),
                None => stats,
            });
        }
    }

    /// Looks up an object by label.
    #[must_use]
    pub fn object(&self, label: &str) -> Option<&ObjectInfo> {
        self.objects.iter().find(|o| o.label == label)
    }

    /// The *effective execution time* of a memory object: the summed
    /// durations of all events that touch it — the sort key of the
    /// paper's decision tree (§4.4). Kernel durations are apportioned
    /// over the buffers the launch binds.
    #[must_use]
    pub fn effective_time(&self, label: &str) -> SimTime {
        let mut total = SimTime::ZERO;
        for e in &self.events {
            if !e.touches(label) {
                continue;
            }
            match e {
                Event::Transfer { cost, .. } => total += cost.total(),
                Event::KernelLaunch { args, time, .. } => {
                    let n = args.len().max(1) as f64;
                    total += *time * (1.0 / n);
                }
            }
        }
        total
    }

    /// Object labels sorted by descending effective execution time (the
    /// order in which the decision maker visits them).
    #[must_use]
    pub fn objects_by_effective_time(&self) -> Vec<String> {
        let mut labels: Vec<(String, SimTime)> = self
            .objects
            .iter()
            .map(|o| (o.label.clone(), self.effective_time(&o.label)))
            .collect();
        // total_cmp: a fault-corrupted (NaN) duration must produce a
        // deterministic order, never a panic mid-profiling.
        labels.sort_by(|a, b| b.1.as_secs().total_cmp(&a.1.as_secs()));
        labels.into_iter().map(|(l, _)| l).collect()
    }

    /// Number of data-transfer events touching `label` (the
    /// `#Event(m)` of the paper's Equation 1).
    #[must_use]
    pub fn transfer_event_count(&self, label: &str) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Transfer { label: l, .. } if l == label))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(us: f64) -> TransferCost {
        TransferCost {
            host_convert: SimTime::ZERO,
            transfer: SimTime::from_micros(us),
            device_convert: SimTime::ZERO,
        }
    }

    fn sample_log() -> ProfileLog {
        let mut log = ProfileLog::default();
        log.objects.push(ObjectInfo {
            label: "A".into(),
            len: 1024,
            declared: Precision::Double,
            device_precision: Precision::Double,
            host_written: None,
        });
        log.objects.push(ObjectInfo {
            label: "C".into(),
            len: 1024,
            declared: Precision::Double,
            device_precision: Precision::Double,
            host_written: None,
        });
        log.record_transfer("A", Direction::HtoD, 1024, 8192, cost(100.0));
        log.record_kernel(
            "k",
            vec![("a".into(), "A".into()), ("c".into(), "C".into())],
            vec![("n".into(), ScalarBound::Int(1024))],
            [1024, 1],
            OpCounts::new(),
            SimTime::from_micros(50.0),
        );
        log.record_transfer("C", Direction::DtoH, 1024, 8192, cost(10.0));
        log
    }

    #[test]
    fn timeline_accumulates_by_phase() {
        let log = sample_log();
        assert_eq!(log.timeline.htod, SimTime::from_micros(100.0));
        assert_eq!(log.timeline.dtoh, SimTime::from_micros(10.0));
        assert_eq!(log.timeline.kernel, SimTime::from_micros(50.0));
        assert_eq!(log.timeline.total(), SimTime::from_micros(160.0));
    }

    #[test]
    fn effective_time_apportions_kernel_time() {
        let log = sample_log();
        // A: 100us transfer + 25us (half the kernel).
        assert_eq!(log.effective_time("A"), SimTime::from_micros(125.0));
        // C: 10us transfer + 25us.
        assert_eq!(log.effective_time("C"), SimTime::from_micros(35.0));
        assert_eq!(log.objects_by_effective_time(), vec!["A", "C"]);
    }

    #[test]
    fn transfer_event_counts() {
        let log = sample_log();
        assert_eq!(log.transfer_event_count("A"), 1);
        assert_eq!(log.transfer_event_count("C"), 1);
        assert_eq!(log.transfer_event_count("ghost"), 0);
    }

    #[test]
    fn object_lookup() {
        let log = sample_log();
        assert_eq!(log.object("A").unwrap().declared_bytes(), 8192);
        assert!(log.object("Z").is_none());
    }

    #[test]
    fn host_write_stats_merge_across_writes() {
        let mut log = sample_log();
        log.record_host_write("A", WriteStats::of(&[1.0, 3.0]));
        log.record_host_write("A", WriteStats::of(&[-1.0, 5.0]));
        let s = log.object("A").unwrap().host_written.unwrap();
        assert_eq!(s.lo, -1.0);
        assert_eq!(s.hi, 5.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.count, 4);
        // Empty writes and unknown labels are ignored.
        log.record_host_write("A", WriteStats::of(&[]));
        log.record_host_write("ghost", WriteStats::of(&[9.0]));
        assert_eq!(log.object("A").unwrap().host_written.unwrap().count, 4);
    }
}
