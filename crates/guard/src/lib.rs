//! Guarded execution: a runtime quality sentinel with per-object
//! precision rollback.
//!
//! The PreScaler tuner certifies a [`ScalingSpec`] against the inputs it
//! was tuned on. In repeated production use the workload can drift — input
//! magnitudes grow until a half-precision object overflows and output
//! quality silently collapses. This crate wraps [`run_app`] in a **guarded
//! execution mode** for such serving loops:
//!
//! * **Online checks** (free in virtual time): every production run's
//!   host-visible outputs are scanned for NaN/Inf and for values outside a
//!   magnitude envelope learned from the clean full-precision reference.
//! * **Canary runs**: periodically — and immediately when the online scan
//!   flags something — the same (possibly drifted) inputs are re-run at
//!   full precision on the clean twin of the system and the production
//!   output is scored with [`output_quality`]. The canary's virtual cost
//!   is charged to the report's [`Timeline::guard_overhead`], never to the
//!   production run itself.
//! * **Per-object circuit breakers**: accumulated quality violations
//!   demote the offending memory object's precision one step toward its
//!   declared (full) precision. A demoted object cools down *closed →
//!   open*; after enough clean runs it re-promotes one step and probes
//!   *half-open* under forced canaries until the tuned precision is
//!   restored or the probe fails.
//! * **Global breaker**: when demotion runs out of room (or a production
//!   run fails outright), the guard falls back to the full-precision
//!   baseline spec — sticky — so guarded serving quality never ends below
//!   the TOQ the configuration was tuned for.
//! * **Performance sentinel**: per-kernel latency envelopes learned from
//!   the same clean full-precision reference run. A tuned configuration
//!   was accepted because it *beat the baseline on this system*; when the
//!   system itself drifts (thermal throttling, a dying link), kernel
//!   launches blow past their envelopes run after run. Sustained
//!   breaches — or a fatal [`OclError::DeviceLost`] — engage the sticky
//!   fallback and raise [`Guard::revalidation_due`], telling the serving
//!   harness to replay the acceptance oracle
//!   ([`prescaler_core::revalidate`]) and, if the spec no longer holds,
//!   warm-start a re-tune ([`prescaler_core::retune_warm`]).
//!
//! # Determinism
//!
//! The guard draws input drift from the system's seeded
//! [`prescaler_faults::FaultPlan`] stream, so every guarded session is
//! replayable. With an inert plan the drift gain is *exactly* 1.0 and no
//! fault counter advances: guarded production runs are bit-identical — in
//! outputs and per-run timeline — to unguarded ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prescaler_core::report::GuardSummary;
use prescaler_core::Tuned;
use prescaler_ir::Precision;
use prescaler_ocl::{
    run_app, HostApp, OclError, Outputs, PlanChoice, ProfileLog, ScalingSpec, Timeline,
};
use prescaler_polybench::{array_quality, output_quality};
use prescaler_sim::{SimTime, SystemModel};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Tunables of the sentinel. The defaults match the paper's TOQ of 0.9.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GuardPolicy {
    /// Quality floor a canary-scored run must meet.
    pub toq: f64,
    /// Envelope = `envelope_factor` × the largest clean-reference output
    /// magnitude; finite values beyond it trigger a canary.
    pub envelope_factor: f64,
    /// Canary-scored violations an object accumulates before demotion.
    pub violation_threshold: u32,
    /// Run a scheduled canary every N-th production run; `0` disables the
    /// schedule and canaries run only when the online scans (or a
    /// half-open probe) demand one.
    pub canary_every: u64,
    /// Clean runs an open breaker waits before probing re-promotion.
    pub cooldown_runs: u32,
    /// Total demotions after which the global breaker trips.
    pub max_demotions: u64,
    /// Latency envelope = `latency_factor` × the slowest clean-reference
    /// launch of each kernel; scaled kernels are never slower than the
    /// full-precision reference on a healthy system, so any launch beyond
    /// it is evidence the *system* changed, not the workload.
    pub latency_factor: f64,
    /// Consecutive runs with latency-envelope breaches before the guard
    /// fails over to the baseline and demands revalidation.
    pub latency_violation_threshold: u32,
}

impl Default for GuardPolicy {
    fn default() -> GuardPolicy {
        GuardPolicy {
            toq: 0.9,
            envelope_factor: 4.0,
            violation_threshold: 2,
            canary_every: 4,
            cooldown_runs: 3,
            max_demotions: 8,
            latency_factor: 3.0,
            latency_violation_threshold: 3,
        }
    }
}

impl GuardPolicy {
    /// The default policy at a specific TOQ.
    #[must_use]
    pub fn with_toq(toq: f64) -> GuardPolicy {
        GuardPolicy {
            toq,
            ..GuardPolicy::default()
        }
    }

    /// The policy matching a tuning result: same TOQ the search enforced.
    #[must_use]
    pub fn for_tuned(tuned: &Tuned) -> GuardPolicy {
        GuardPolicy::with_toq(tuned.toq)
    }
}

/// Circuit-breaker state of one guarded memory object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving at the tuned precision.
    Closed,
    /// Recently demoted; waiting out a cooldown before probing.
    Open {
        /// Clean runs left before the breaker half-opens.
        cooldown_left: u32,
    },
    /// Tentatively re-promoted; every run is canary-scored until the
    /// tuned precision is restored or the probe fails.
    HalfOpen,
}

/// One breaker action taken by the guard.
#[derive(Clone, Debug, PartialEq)]
pub enum GuardAction {
    /// An object's device precision moved one step toward full precision.
    Demoted {
        /// Memory-object label.
        label: String,
        /// Precision before the demotion.
        from: Precision,
        /// Precision after the demotion.
        to: Precision,
    },
    /// An object's device precision moved one step back toward its tuned
    /// target.
    Promoted {
        /// Memory-object label.
        label: String,
        /// Precision before the promotion.
        from: Precision,
        /// Precision after the promotion.
        to: Precision,
    },
    /// The global breaker tripped: the guard now serves the full-precision
    /// baseline configuration (sticky).
    FallbackEngaged,
    /// The performance sentinel concluded the *system* drifted out from
    /// under the tuned configuration; the serving harness should replay
    /// the acceptance oracle and re-tune if it fails.
    RevalidationRequested {
        /// What tripped the sentinel.
        reason: RevalidationReason,
    },
}

/// Why the performance sentinel demanded revalidation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RevalidationReason {
    /// Kernel launches breached their latency envelopes for
    /// [`GuardPolicy::latency_violation_threshold`] consecutive runs.
    SustainedLatency,
    /// A production run died with a fatal [`OclError::DeviceLost`].
    DeviceLost,
    /// A serving front-end shed admissions under sustained overload. The
    /// guard never buys throughput back by demoting precision — overload
    /// asks for a system-aware re-tune instead.
    SustainedOverload,
}

/// One action with the production run it happened on (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct GuardEvent {
    /// Production-run index (1-based).
    pub run: u64,
    /// What the guard did.
    pub action: GuardAction,
}

/// A speculatively executed production run: the forked-stream execution
/// a worker thread computed in parallel, handed to the guard's sequential
/// replay. The replay validates that the guard's active configuration
/// still matches [`PreparedRun::spec`]; if breaker activity changed it in
/// the meantime, the prepared result is discarded and the run re-executes
/// inline — so reusing a speculation can never change an outcome.
#[derive(Clone, Debug)]
pub struct PreparedRun {
    /// The configuration the speculative execution ran under.
    pub spec: ScalingSpec,
    /// The input drift gain drawn from the forked fault stream.
    pub gain: f64,
    /// The raw execution result.
    pub result: Result<(Outputs, ProfileLog), OclError>,
}

/// The verdict of one guarded production run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunVerdict {
    /// Production-run index (1-based).
    pub run: u64,
    /// Input drift gain drawn for this run (1.0 when not drifting).
    pub gain: f64,
    /// NaN/Inf elements seen across the run's outputs.
    pub nonfinite: usize,
    /// Finite output elements outside the magnitude envelope.
    pub envelope_breaches: usize,
    /// Kernel launches that exceeded their learned latency envelope.
    pub latency_breaches: usize,
    /// Quality of this run against its full-precision canary, when one
    /// was scored.
    pub canary_quality: Option<f64>,
    /// Breaker actions taken after this run.
    pub actions: Vec<GuardAction>,
    /// Whether the run served a degraded (demoted or fallback) config.
    pub degraded: bool,
    /// The run's host-visible outputs.
    pub outputs: Outputs,
    /// The run's own timeline — bit-identical to an unguarded run's.
    pub timeline: Timeline,
}

/// Cumulative account of a guarded serving session.
#[derive(Clone, Debug, Default)]
pub struct GuardReport {
    /// Production runs served.
    pub runs: u64,
    /// Canary runs executed.
    pub canary_runs: u64,
    /// Canary-scored quality violations observed.
    pub violations: u64,
    /// Demotions applied.
    pub demotions: u64,
    /// Promotions applied (including tentative half-open probes).
    pub promotions: u64,
    /// Runs served while any object was demoted or fallback was active.
    pub degraded_runs: u64,
    /// Production time spent in a degraded state.
    pub degraded_time: SimTime,
    /// Whether the global breaker tripped.
    pub fallback: bool,
    /// Kernel launches beyond their latency envelope, session-total.
    pub latency_breaches: u64,
    /// Times the performance sentinel demanded revalidation.
    pub revalidations_requested: u64,
    /// Quality of the most recent canary-scored run.
    pub last_canary_quality: Option<f64>,
    /// Accumulated production timeline; canary cost lands exclusively in
    /// its [`Timeline::guard_overhead`] field.
    pub timeline: Timeline,
    /// Every breaker action, in order.
    pub history: Vec<GuardEvent>,
}

impl GuardReport {
    /// The serializable summary embedded in experiment reports.
    #[must_use]
    pub fn summary(&self) -> GuardSummary {
        GuardSummary {
            runs: self.runs,
            canary_runs: self.canary_runs,
            canary_secs: self.timeline.guard_overhead.as_secs(),
            demotions: self.demotions,
            promotions: self.promotions,
            degraded_runs: self.degraded_runs,
            degraded_secs: self.degraded_time.as_secs(),
            fallback: self.fallback,
            final_quality: self.last_canary_quality,
        }
    }
}

#[derive(Clone, Debug)]
struct ObjectBreaker {
    label: String,
    declared: Precision,
    tuned_target: Precision,
    current: Precision,
    write_plan: Option<PlanChoice>,
    read_plan: Option<PlanChoice>,
    violations: u32,
    state: BreakerState,
}

fn rank(p: Precision) -> i8 {
    match p {
        Precision::Half => 0,
        Precision::Single => 1,
        Precision::Double => 2,
    }
}

fn from_rank(r: i8) -> Precision {
    match r {
        0 => Precision::Half,
        1 => Precision::Single,
        _ => Precision::Double,
    }
}

/// One ladder step from `from` toward `to` (identity when equal).
fn step_toward(from: Precision, to: Precision) -> Precision {
    let (f, t) = (rank(from), rank(to));
    from_rank(f + (t - f).signum())
}

/// Guarded execution mode over one tuned configuration.
///
/// Create it once per serving session, then feed it production runs with
/// [`Guard::run_production`]; close out with [`Guard::verify`] when a
/// final quality certificate is needed.
#[derive(Clone, Debug)]
pub struct Guard {
    policy: GuardPolicy,
    system: SystemModel,
    tuned: ScalingSpec,
    active: ScalingSpec,
    envelope: Vec<(String, f64)>,
    latency_envelope: Vec<(String, f64)>,
    latency_strikes: u32,
    revalidation_due: bool,
    breakers: Vec<ObjectBreaker>,
    fallback: bool,
    report: GuardReport,
}

impl Guard {
    /// Builds a guard for `tuned` serving on `system`.
    ///
    /// Runs the undrifted app once at full precision on the clean twin of
    /// `system` to learn the output magnitude envelope and the objects'
    /// declared precisions. This setup run does not advance the
    /// production system's fault stream.
    ///
    /// # Errors
    ///
    /// Propagates any [`OclError`] from the reference run.
    pub fn new(
        app: &dyn HostApp,
        system: &SystemModel,
        tuned: ScalingSpec,
        policy: GuardPolicy,
    ) -> Result<Guard, OclError> {
        let clean = system.without_faults();
        let (reference, log) = run_app(app, &clean, &ScalingSpec::baseline())?;

        let envelope = reference
            .iter()
            .map(|(label, data)| {
                let mut max_abs = 0.0f64;
                for i in 0..data.len() {
                    let v = data.get(i);
                    if v.is_finite() {
                        max_abs = max_abs.max(v.abs());
                    }
                }
                (label.clone(), policy.envelope_factor * max_abs.max(1e-9))
            })
            .collect();

        // Per-kernel latency envelopes from the same reference run. The
        // reference is full precision on the clean twin, and precision
        // scaling only ever *shrinks* kernel time in the cost model, so
        // `latency_factor` × the slowest reference launch bounds every
        // healthy launch of that kernel from above.
        let mut latency_envelope: Vec<(String, f64)> = Vec::new();
        for event in &log.events {
            let prescaler_ocl::Event::KernelLaunch { kernel, time, .. } = event else {
                continue;
            };
            let bound = policy.latency_factor * time.as_secs();
            match latency_envelope.iter_mut().find(|(k, _)| k == kernel) {
                Some((_, e)) => *e = e.max(bound),
                None => latency_envelope.push((kernel.clone(), bound)),
            }
        }

        // Breakers in descending effective-time order: when a violation
        // cannot be pinned on an output object, the costliest scaled
        // object is the deterministic first suspect.
        let mut breakers = Vec::new();
        for label in log.objects_by_effective_time() {
            let Some(&target) = tuned.object_targets.get(&label) else {
                continue;
            };
            let declared = log.object(&label).map_or(Precision::Double, |o| o.declared);
            if target == declared {
                continue;
            }
            breakers.push(ObjectBreaker {
                write_plan: tuned.write_plans.get(&label).copied(),
                read_plan: tuned.read_plans.get(&label).copied(),
                label,
                declared,
                tuned_target: target,
                current: target,
                violations: 0,
                state: BreakerState::Closed,
            });
        }

        Ok(Guard {
            policy,
            system: system.clone(),
            active: tuned.clone(),
            tuned,
            envelope,
            latency_envelope,
            latency_strikes: 0,
            revalidation_due: false,
            breakers,
            fallback: false,
            report: GuardReport::default(),
        })
    }

    /// Raises the output magnitude envelopes with statically proven
    /// value-range priors (label → largest provable magnitude, e.g. from
    /// `prescaler_core::StaticAnalysis::envelope_priors`). Each matching
    /// envelope becomes `max(measured, envelope_factor × prior)`, so a
    /// healthy run producing values the static analysis proved possible
    /// — but the single reference run happened not to exercise — no
    /// longer reads as an envelope violation. Priors can only *widen*
    /// envelopes, never tighten them, and unknown labels are ignored.
    #[must_use]
    pub fn with_envelope_priors(mut self, priors: &[(String, f64)]) -> Guard {
        for (label, bound) in priors {
            let Some((_, e)) = self.envelope.iter_mut().find(|(l, _)| l == label) else {
                continue;
            };
            let prior = self.policy.envelope_factor * bound.max(1e-9);
            if prior > *e {
                *e = prior;
            }
        }
        self
    }

    /// The configuration production runs currently execute under.
    #[must_use]
    pub fn active_spec(&self) -> &ScalingSpec {
        &self.active
    }

    /// Whether the global breaker has tripped.
    #[must_use]
    pub fn fallback_active(&self) -> bool {
        self.fallback
    }

    /// Whether the performance sentinel has demanded revalidation of the
    /// tuned configuration against the (possibly drifted) system. The
    /// serving harness should answer with [`prescaler_core::revalidate`]
    /// and, on failure, [`prescaler_core::retune_warm`], then acknowledge
    /// via [`Guard::acknowledge_revalidation`].
    #[must_use]
    pub fn revalidation_due(&self) -> bool {
        self.revalidation_due
    }

    /// Clears the revalidation flag and the consecutive-breach counter
    /// after the harness has revalidated (or re-tuned). The sticky
    /// fallback is *not* released — a re-tuned spec starts a fresh
    /// [`Guard`].
    pub fn acknowledge_revalidation(&mut self) {
        self.revalidation_due = false;
        self.latency_strikes = 0;
    }

    /// A serving front-end reports sustained overload: admissions are
    /// being shed faster than the configured tolerance. The guard sheds
    /// *work*, never *quality* — overload does not demote precision; it
    /// raises the revalidation flag (once, until acknowledged) so the
    /// harness re-tunes for the system that can't keep up.
    pub fn report_overload(&mut self) {
        let run = self.report.runs;
        let mut actions = Vec::new();
        self.request_revalidation(run, RevalidationReason::SustainedOverload, &mut actions);
    }

    /// The cumulative report so far.
    #[must_use]
    pub fn report(&self) -> &GuardReport {
        &self.report
    }

    /// Breaker state of one guarded object, if it is guarded.
    #[must_use]
    pub fn breaker_state(&self, label: &str) -> Option<BreakerState> {
        self.breakers
            .iter()
            .find(|b| b.label == label)
            .map(|b| b.state)
    }

    /// Serves one production run: draws the next input drift gain from
    /// the system's fault stream, obtains the run's app via `app_at`,
    /// executes it under the active configuration, applies the sentinel
    /// checks and breaker transitions, and returns the verdict.
    ///
    /// # Errors
    ///
    /// A failing production run engages the baseline fallback and is
    /// retried once; the error is propagated only if the baseline run
    /// fails too (or fallback was already active).
    pub fn run_production<A: HostApp>(
        &mut self,
        app_at: impl Fn(f64) -> A,
    ) -> Result<RunVerdict, OclError> {
        let gain = self.system.faults.input_drift_gain();
        let app = app_at(gain);
        let system = self.system.clone();
        self.run_once_at(&system, &app, gain, false, None)
    }

    /// Serves one production run from a *forked* fault stream: the drift
    /// gain and every injected fault of the run depend only on the
    /// session seed and `salt`, never on how far the session stream has
    /// advanced. That makes the run a pure function of `(guard state,
    /// salt)` — the property concurrent serving relies on to execute
    /// requests speculatively on worker threads ([`speculate`]) and
    /// replay them sequentially here for bit-identical accounting.
    ///
    /// `prepared` is an optional speculation for the same `salt`; it is
    /// reused only if its spec still matches the active configuration
    /// (and its gain the replayed draw), otherwise the run re-executes
    /// inline with identical results.
    ///
    /// # Errors
    ///
    /// As [`Guard::run_production`].
    pub fn run_forked<A: HostApp>(
        &mut self,
        salt: u64,
        app_at: impl Fn(f64) -> A,
        prepared: Option<PreparedRun>,
    ) -> Result<RunVerdict, OclError> {
        let forked = self.system.faults.fork(salt);
        let gain = forked.input_drift_gain();
        let app = app_at(gain);
        let system = self.system.clone().with_faults(forked);
        self.run_once_at(&system, &app, gain, false, prepared)
    }

    /// Runs production until the session's quality is certified: the run
    /// is canary-scored, and on violation the breaker actions are applied
    /// and the *same* drifted inputs are retried until quality reaches
    /// TOQ or the baseline fallback engages. Returns the last scored
    /// quality.
    ///
    /// By construction, after `verify` returns either the final quality
    /// is at least TOQ or [`Guard::fallback_active`] is true.
    ///
    /// # Errors
    ///
    /// Propagates production-run errors as [`Guard::run_production`].
    pub fn verify<A: HostApp>(&mut self, app_at: impl Fn(f64) -> A) -> Result<f64, OclError> {
        let gain = self.system.faults.input_drift_gain();
        let app = app_at(gain);
        // Demotion is monotone, so the ladder bounds the retries.
        let max_rounds =
            (self.breakers.len() as u64 * 2 + 2) * u64::from(self.policy.violation_threshold) + 2;
        let mut quality = 0.0;
        for _ in 0..max_rounds {
            let system = self.system.clone();
            let verdict = self.run_once_at(&system, &app, gain, true, None)?;
            // A forced canary always scores the run; if that invariant
            // ever broke, keep serving (and retrying) instead of
            // panicking mid-session.
            let Some(q) = verdict.canary_quality else {
                continue;
            };
            quality = q;
            if quality >= self.policy.toq || self.fallback {
                return Ok(quality);
            }
        }
        Ok(quality)
    }

    fn run_once_at(
        &mut self,
        system: &SystemModel,
        app: &dyn HostApp,
        gain: f64,
        force_canary: bool,
        prepared: Option<PreparedRun>,
    ) -> Result<RunVerdict, OclError> {
        let run = self.report.runs + 1;
        let mut actions = Vec::new();

        // A speculation is only as good as its assumptions: reuse it iff
        // it ran under the currently active configuration with the gain
        // this replay drew. Otherwise fall through to inline execution —
        // same pure function, same result, just computed now.
        let executed = match prepared {
            Some(p) if p.spec == self.active && p.gain.to_bits() == gain.to_bits() => p.result,
            _ => run_app(app, system, &self.active),
        };
        let (outputs, log) = match executed {
            Ok(ok) => ok,
            Err(e @ OclError::DeviceLost { .. }) => {
                // The device vanished mid-serve. No precision rollback can
                // buy that back and a retry would talk to the same missing
                // metal: fail over, demand revalidation, and surface the
                // fatal error to the serving harness.
                self.engage_fallback(run, &mut actions);
                self.request_revalidation(run, RevalidationReason::DeviceLost, &mut actions);
                return Err(e);
            }
            Err(_) if !self.fallback && !self.active.is_baseline() => {
                // A scaled production run died (exhausted retries, spec
                // bug…): degrade to the baseline and serve from there.
                self.engage_fallback(run, &mut actions);
                run_app(app, system, &self.active)?
            }
            Err(e2) => return Err(e2),
        };
        let timeline = log.timeline;

        // Online scans — piggyback on the outputs already in host memory,
        // so they cost nothing in virtual time.
        let mut nonfinite = 0usize;
        let mut breaches = 0usize;
        for (label, data) in &outputs {
            let env = self
                .envelope
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, e)| *e);
            for i in 0..data.len() {
                let v = data.get(i);
                if !v.is_finite() {
                    nonfinite += 1;
                } else if env.is_some_and(|e| v.abs() > e) {
                    breaches += 1;
                }
            }
        }

        // Performance sentinel: compare every launch against its learned
        // envelope. A breach is a symptom of the *system* (throttling, a
        // starved link), not the workload, so it never demotes precision —
        // sustained breaches fail over and demand revalidation instead.
        let mut latency_breaches = 0usize;
        for event in &log.events {
            let prescaler_ocl::Event::KernelLaunch { kernel, time, .. } = event else {
                continue;
            };
            let breached = self
                .latency_envelope
                .iter()
                .any(|(k, e)| k == kernel && time.as_secs() > *e);
            if breached {
                latency_breaches += 1;
            }
        }
        self.report.latency_breaches += latency_breaches as u64;
        if latency_breaches > 0 {
            self.latency_strikes += 1;
            if self.latency_strikes >= self.policy.latency_violation_threshold
                && !self.revalidation_due
            {
                self.engage_fallback(run, &mut actions);
                self.request_revalidation(run, RevalidationReason::SustainedLatency, &mut actions);
            }
        } else {
            self.latency_strikes = 0;
        }

        let probing = self
            .breakers
            .iter()
            .any(|b| b.state == BreakerState::HalfOpen);
        let scheduled =
            self.policy.canary_every > 0 && run.is_multiple_of(self.policy.canary_every);
        let canary_due = force_canary || scheduled || probing || nonfinite > 0 || breaches > 0;

        let mut canary_quality = None;
        if canary_due {
            // Same (drifted) inputs, full precision, clean twin. The cost
            // is the sentinel's, not the production run's.
            let clean = self.system.without_faults();
            let (reference, canary_log) = run_app(app, &clean, &ScalingSpec::baseline())?;
            self.report.canary_runs += 1;
            self.report.timeline.guard_overhead += canary_log.timeline.total();
            let q = output_quality(&reference, &outputs);
            canary_quality = Some(q);
            self.report.last_canary_quality = Some(q);

            if q < self.policy.toq {
                self.report.violations += 1;
                self.on_violation(run, &reference, &outputs, &mut actions);
            } else {
                self.on_clean_scored(run, &mut actions);
            }
        } else {
            self.on_clean_unscored();
        }

        let degraded = self.fallback || self.breakers.iter().any(|b| b.current != b.tuned_target);
        self.report.runs = run;
        self.report.timeline.accumulate(&timeline);
        if degraded {
            self.report.degraded_runs += 1;
            self.report.degraded_time += timeline.total();
        }

        Ok(RunVerdict {
            run,
            gain,
            nonfinite,
            envelope_breaches: breaches,
            latency_breaches,
            canary_quality,
            actions,
            degraded,
            outputs,
            timeline,
        })
    }

    /// A canary scored the run below TOQ: charge the offender.
    fn on_violation(
        &mut self,
        run: u64,
        reference: &Outputs,
        outputs: &Outputs,
        actions: &mut Vec<GuardAction>,
    ) {
        if self.fallback {
            return; // already serving the baseline; nothing left to demote
        }
        // Pin the violation on the worst output's object when that object
        // is guarded and still demotable; otherwise on the first demotable
        // breaker in effective-time order.
        let worst = reference
            .iter()
            .zip(outputs)
            .map(|((label, r), (_, t))| (label.clone(), array_quality(r, t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(label, _)| label);
        let offender = worst
            .and_then(|label| {
                self.breakers
                    .iter()
                    .position(|b| b.label == label && b.current != b.declared)
            })
            .or_else(|| self.breakers.iter().position(|b| b.current != b.declared));

        let Some(i) = offender else {
            // Nothing demotable is left — quality cannot be bought back by
            // rolling precision; trip the global breaker.
            self.engage_fallback(run, actions);
            return;
        };

        let b = &mut self.breakers[i];
        b.violations += 1;
        let probe_failed = b.state == BreakerState::HalfOpen;
        if b.violations < self.policy.violation_threshold && !probe_failed {
            return;
        }

        let from = b.current;
        let to = step_toward(from, b.declared);
        b.current = to;
        b.violations = 0;
        b.state = BreakerState::Open {
            cooldown_left: self.policy.cooldown_runs,
        };
        let label = b.label.clone();
        self.apply_object(i);
        self.report.demotions += 1;
        self.push_action(run, GuardAction::Demoted { label, from, to }, actions);

        if self.report.demotions > self.policy.max_demotions {
            self.engage_fallback(run, actions);
        }
    }

    /// A canary scored the run at or above TOQ.
    fn on_clean_scored(&mut self, run: u64, actions: &mut Vec<GuardAction>) {
        if self.fallback {
            return;
        }
        for i in 0..self.breakers.len() {
            self.breakers[i].violations = self.breakers[i].violations.saturating_sub(1);
            match self.breakers[i].state {
                BreakerState::Closed => {}
                BreakerState::Open { cooldown_left } => {
                    let left = cooldown_left.saturating_sub(1);
                    if left > 0 {
                        self.breakers[i].state = BreakerState::Open {
                            cooldown_left: left,
                        };
                    } else {
                        // Probe: tentatively promote one step and force
                        // canary scoring until confirmed or refuted.
                        self.breakers[i].state = BreakerState::HalfOpen;
                        self.promote_step(i, run, actions);
                    }
                }
                BreakerState::HalfOpen => {
                    // The probe survived a scored run.
                    if self.breakers[i].current == self.breakers[i].tuned_target {
                        self.breakers[i].state = BreakerState::Closed;
                        self.breakers[i].violations = 0;
                    } else {
                        self.promote_step(i, run, actions);
                    }
                }
            }
        }
    }

    /// An unscored run: only open-breaker cooldowns advance (half-open
    /// probes are always scored, so they cannot land here).
    fn on_clean_unscored(&mut self) {
        if self.fallback {
            return;
        }
        for b in &mut self.breakers {
            if let BreakerState::Open { cooldown_left } = b.state {
                b.state = BreakerState::Open {
                    cooldown_left: cooldown_left.saturating_sub(1).max(1),
                };
            }
        }
    }

    fn promote_step(&mut self, i: usize, run: u64, actions: &mut Vec<GuardAction>) {
        let b = &mut self.breakers[i];
        let from = b.current;
        let to = step_toward(from, b.tuned_target);
        if to == from {
            return;
        }
        b.current = to;
        let label = b.label.clone();
        self.apply_object(i);
        self.report.promotions += 1;
        self.push_action(run, GuardAction::Promoted { label, from, to }, actions);
    }

    /// Re-materializes one breaker's object in the active spec: tuned
    /// plans only apply at the tuned precision; any other precision runs
    /// with the runtime's always-correct default conversion.
    fn apply_object(&mut self, i: usize) {
        let b = &self.breakers[i];
        if b.current == b.declared {
            self.active.object_targets.remove(&b.label);
        } else {
            self.active
                .object_targets
                .insert(b.label.clone(), b.current);
        }
        if b.current == b.tuned_target {
            match b.write_plan {
                Some(p) => {
                    self.active.write_plans.insert(b.label.clone(), p);
                }
                None => {
                    self.active.write_plans.remove(&b.label);
                }
            }
            match b.read_plan {
                Some(p) => {
                    self.active.read_plans.insert(b.label.clone(), p);
                }
                None => {
                    self.active.read_plans.remove(&b.label);
                }
            }
        } else {
            self.active.write_plans.remove(&b.label);
            self.active.read_plans.remove(&b.label);
        }
    }

    /// Raises the revalidation flag at most once per serving session
    /// (until acknowledged), so the harness gets one actionable signal,
    /// not one per breached run.
    fn request_revalidation(
        &mut self,
        run: u64,
        reason: RevalidationReason,
        actions: &mut Vec<GuardAction>,
    ) {
        if self.revalidation_due {
            return;
        }
        self.revalidation_due = true;
        self.report.revalidations_requested += 1;
        self.push_action(run, GuardAction::RevalidationRequested { reason }, actions);
    }

    fn engage_fallback(&mut self, run: u64, actions: &mut Vec<GuardAction>) {
        if self.fallback {
            return;
        }
        self.fallback = true;
        self.report.fallback = true;
        self.active = ScalingSpec::baseline();
        self.push_action(run, GuardAction::FallbackEngaged, actions);
    }

    fn push_action(&mut self, run: u64, action: GuardAction, actions: &mut Vec<GuardAction>) {
        self.report.history.push(GuardEvent {
            run,
            action: action.clone(),
        });
        actions.push(action);
    }

    /// The tuned configuration the guard protects (unchanged by breaker
    /// activity).
    #[must_use]
    pub fn tuned_spec(&self) -> &ScalingSpec {
        &self.tuned
    }

    /// The system the guard serves on.
    #[must_use]
    pub fn system(&self) -> &SystemModel {
        &self.system
    }
}

/// The pure speculative half of [`Guard::run_forked`]: fork the system's
/// fault stream by `salt`, draw the run's drift gain from the fork, and
/// execute the app under `spec` — touching no guard state. A worker
/// thread can run this for any future request in parallel; feeding the
/// result back through [`Guard::run_forked`] replays it with bit-identical
/// accounting (or discards it if the active spec moved on).
#[must_use]
pub fn speculate<A: HostApp>(
    system: &SystemModel,
    spec: &ScalingSpec,
    salt: u64,
    app_at: impl Fn(f64) -> A,
) -> PreparedRun {
    let forked = system.faults.fork(salt);
    let gain = forked.input_drift_gain();
    let app = app_at(gain);
    let forked_system = system.clone().with_faults(forked);
    PreparedRun {
        spec: spec.clone(),
        gain,
        result: run_app(&app, &forked_system, spec),
    }
}

/// A `Send + Sync` handle to a [`Guard`] shared by a pool of serving
/// workers: the guard's policy/state core behind a poison-tolerant lock.
///
/// Lock acquisition never propagates poisoning — a worker that panics
/// mid-serve must not take the whole pool down with it. The guard's state
/// transitions are each applied atomically under the lock (breaker moves,
/// fallback, report rows), so the state a panicking worker leaves behind
/// is always a consistent one and the remaining workers keep serving.
#[derive(Clone, Debug)]
pub struct SharedGuard {
    inner: Arc<Mutex<Guard>>,
}

impl SharedGuard {
    /// Wraps a guard for shared serving.
    #[must_use]
    pub fn new(guard: Guard) -> SharedGuard {
        SharedGuard {
            inner: Arc::new(Mutex::new(guard)),
        }
    }

    /// Acquires the guard, recovering it from a poisoned lock if a
    /// previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, Guard> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` with the locked guard.
    pub fn with<R>(&self, f: impl FnOnce(&mut Guard) -> R) -> R {
        f(&mut self.lock())
    }

    /// Snapshot of the configuration production runs currently execute
    /// under — what speculative workers execute against.
    #[must_use]
    pub fn active_spec(&self) -> ScalingSpec {
        self.lock().active_spec().clone()
    }

    /// Whether the global breaker has tripped.
    #[must_use]
    pub fn fallback_active(&self) -> bool {
        self.lock().fallback_active()
    }

    /// Whether the guard has demanded revalidation.
    #[must_use]
    pub fn revalidation_due(&self) -> bool {
        self.lock().revalidation_due()
    }

    /// The serializable summary of the session so far.
    #[must_use]
    pub fn summary(&self) -> GuardSummary {
        self.lock().report().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescaler_faults::FaultPlan;
    use prescaler_polybench::{BenchKind, Dims, InputSet, PolyApp};

    fn gemm_app() -> PolyApp {
        PolyApp::new(BenchKind::Gemm, Dims::square(16), InputSet::Random, 7)
    }

    fn half_spec() -> ScalingSpec {
        let mut spec = ScalingSpec::baseline();
        for label in ["A", "B", "C"] {
            spec = spec.with_target(label, Precision::Half);
        }
        spec
    }

    #[test]
    fn clean_guarded_runs_are_bit_identical_to_unguarded() {
        let system = SystemModel::system1();
        let app = gemm_app();
        let mut guard = Guard::new(&app, &system, half_spec(), GuardPolicy::default()).unwrap();
        for _ in 0..6 {
            let v = guard
                .run_production(|gain| gemm_app().with_input_gain(gain))
                .unwrap();
            assert_eq!(v.gain, 1.0);
            let (unguarded, log) = run_app(&app, &system, &half_spec()).unwrap();
            assert_eq!(v.outputs, unguarded, "outputs must be bit-identical");
            assert_eq!(v.timeline, log.timeline, "per-run timelines must match");
            assert!(!v.degraded);
            assert!(v.actions.is_empty());
            assert_eq!(v.latency_breaches, 0, "healthy launches stay in envelope");
        }
        assert_eq!(guard.report().runs, 6);
        assert_eq!(guard.report().demotions, 0);
        assert_eq!(guard.report().latency_breaches, 0);
        assert!(!guard.fallback_active());
        assert!(!guard.revalidation_due());
    }

    #[test]
    fn envelope_priors_only_widen_and_only_known_labels() {
        let system = SystemModel::system1();
        let app = gemm_app();
        let policy = GuardPolicy::default();
        let base = Guard::new(&app, &system, half_spec(), policy).unwrap();
        let measured: Vec<(String, f64)> = base.envelope.clone();
        let c_measured = measured.iter().find(|(l, _)| l == "C").unwrap().1;

        let guard = Guard::new(&app, &system, half_spec(), policy)
            .unwrap()
            .with_envelope_priors(&[
                // A prior far above the measured envelope widens it…
                ("C".to_owned(), c_measured * 10.0),
                // …a tiny prior must never tighten…
                ("A".to_owned(), 1e-30),
                // …and unknown labels are ignored.
                ("ghost".to_owned(), 1.0e12),
            ]);
        let find = |g: &Guard, l: &str| g.envelope.iter().find(|(k, _)| k == l).map(|(_, e)| *e);
        assert_eq!(
            find(&guard, "C").unwrap(),
            policy.envelope_factor * c_measured * 10.0
        );
        assert_eq!(find(&guard, "A"), find(&base, "A"), "never tightened");
        assert!(find(&guard, "ghost").is_none());

        // A widened envelope must not change healthy-run behavior.
        let mut guard = guard;
        let v = guard
            .run_production(|gain| gemm_app().with_input_gain(gain))
            .unwrap();
        assert!(!v.degraded);
        assert!(v.actions.is_empty());
    }

    #[test]
    fn anomaly_driven_policy_has_zero_idle_overhead() {
        let system = SystemModel::system1();
        let app = gemm_app();
        let policy = GuardPolicy {
            canary_every: 0,
            ..GuardPolicy::default()
        };
        let mut guard = Guard::new(&app, &system, half_spec(), policy).unwrap();
        for _ in 0..5 {
            guard
                .run_production(|gain| gemm_app().with_input_gain(gain))
                .unwrap();
        }
        assert_eq!(guard.report().canary_runs, 0);
        assert_eq!(guard.report().timeline.guard_overhead, SimTime::ZERO);
    }

    #[test]
    fn drift_demotes_and_recovery_repromotes() {
        // Every run drifts by a gain large enough to overflow binary16
        // inner products…
        let drifting = FaultPlan::seeded(11).with_input_drift(1.0, 510.0);
        let system = SystemModel::system1().with_faults(drifting);
        let app = gemm_app();
        let mut guard = Guard::new(&app, &system, half_spec(), GuardPolicy::default()).unwrap();
        let mut demoted = false;
        for _ in 0..4 {
            let v = guard
                .run_production(|gain| gemm_app().with_input_gain(gain))
                .unwrap();
            assert!(v.gain > 1.0, "drift plan fires every run");
            demoted |= v
                .actions
                .iter()
                .any(|a| matches!(a, GuardAction::Demoted { .. }));
        }
        assert!(demoted, "sustained drift must trip a breaker");
        assert!(guard.report().degraded_runs > 0);
        let q = guard
            .verify(|gain| gemm_app().with_input_gain(gain))
            .unwrap();
        assert!(
            q >= 0.9 || guard.fallback_active(),
            "verify certifies TOQ or fallback, got {q}"
        );
        // …and once the drift stops, cooldown leads to re-promotion.
        let calm = SystemModel::system1().with_faults(FaultPlan::seeded(11));
        let mut calm_guard = Guard {
            system: calm,
            ..guard.clone()
        };
        if !calm_guard.fallback_active() {
            for _ in 0..20 {
                calm_guard
                    .run_production(|gain| gemm_app().with_input_gain(gain))
                    .unwrap();
            }
            assert!(
                calm_guard.report().promotions > 0,
                "clean runs must probe the breaker back toward the tuned spec"
            );
        }
    }

    #[test]
    fn thermal_throttle_trips_the_performance_sentinel() {
        // Every launch runs at <= 0.5x clock: the compute-bound GEMM
        // kernel blows past its latency envelope run after run, and after
        // two consecutive breached runs the guard fails over to the
        // baseline and demands revalidation — without ever touching the
        // precision breakers (slowness is not a quality problem).
        let throttled = FaultPlan::seeded(5).with_throttle(1.0, 1.0);
        let system = SystemModel::system1().with_faults(throttled);
        let app = PolyApp::new(BenchKind::Gemm, Dims::square(64), InputSet::Random, 7);
        let policy = GuardPolicy {
            latency_factor: 1.5,
            latency_violation_threshold: 2,
            ..GuardPolicy::default()
        };
        let mut guard = Guard::new(&app, &system, half_spec(), policy).unwrap();

        let first = guard
            .run_production(|gain| {
                PolyApp::new(BenchKind::Gemm, Dims::square(64), InputSet::Random, 7)
                    .with_input_gain(gain)
            })
            .unwrap();
        assert!(first.latency_breaches > 0, "throttled launch must breach");
        assert!(!guard.revalidation_due(), "one breach is not sustained");

        let second = guard
            .run_production(|gain| {
                PolyApp::new(BenchKind::Gemm, Dims::square(64), InputSet::Random, 7)
                    .with_input_gain(gain)
            })
            .unwrap();
        assert!(second.latency_breaches > 0);
        assert!(guard.revalidation_due(), "two consecutive breaches are");
        assert!(guard.fallback_active(), "failover precedes re-tuning");
        assert!(second.actions.iter().any(|a| matches!(
            a,
            GuardAction::RevalidationRequested {
                reason: RevalidationReason::SustainedLatency
            }
        )));
        assert_eq!(guard.report().demotions, 0, "no precision was demoted");
        assert_eq!(guard.report().revalidations_requested, 1);

        // The signal is raised once, not per breached run…
        guard
            .run_production(|gain| {
                PolyApp::new(BenchKind::Gemm, Dims::square(64), InputSet::Random, 7)
                    .with_input_gain(gain)
            })
            .unwrap();
        assert_eq!(guard.report().revalidations_requested, 1);
        // …and acknowledging clears the flag and the strike counter.
        guard.acknowledge_revalidation();
        assert!(!guard.revalidation_due());
        assert!(guard.fallback_active(), "the fallback stays sticky");
    }

    #[test]
    fn lost_device_fails_over_and_demands_revalidation() {
        let dying = FaultPlan::seeded(3).with_device_loss(1.0);
        let system = SystemModel::system1().with_faults(dying);
        let app = gemm_app();
        // Guard::new succeeds: the reference runs on the clean twin.
        let mut guard = Guard::new(&app, &system, half_spec(), GuardPolicy::default()).unwrap();

        let err = guard
            .run_production(|gain| gemm_app().with_input_gain(gain))
            .unwrap_err();
        assert!(matches!(err, OclError::DeviceLost { .. }), "got {err}");
        assert!(guard.fallback_active(), "a lost device trips the breaker");
        assert!(guard.revalidation_due());
        assert!(guard.report().history.iter().any(|e| e.action
            == GuardAction::RevalidationRequested {
                reason: RevalidationReason::DeviceLost
            }));

        // Repeated failures do not re-raise the (unacknowledged) signal.
        guard
            .run_production(|gain| gemm_app().with_input_gain(gain))
            .unwrap_err();
        assert_eq!(guard.report().revalidations_requested, 1);
    }

    #[test]
    fn forked_runs_are_pure_and_replay_speculations_bit_identically() {
        // Drift + transient faults on: the forked stream must make every
        // request a pure function of (state, salt).
        let plan = FaultPlan::seeded(23)
            .with_input_drift(0.5, 4.0)
            .with_transfer_failures(0.2);
        let system = SystemModel::system1().with_faults(plan);
        let app = gemm_app();
        let mut a = Guard::new(&app, &system, half_spec(), GuardPolicy::default()).unwrap();
        let mut b = a.clone();

        for salt in 0..6u64 {
            // Guard `a` replays a worker's speculation; guard `b` executes
            // inline. Both must agree bit-for-bit.
            let prep = speculate(a.system(), a.active_spec(), salt, |gain| {
                gemm_app().with_input_gain(gain)
            });
            let va = a.run_forked(salt, |gain| gemm_app().with_input_gain(gain), Some(prep));
            let vb = b.run_forked(salt, |gain| gemm_app().with_input_gain(gain), None);
            match (va, vb) {
                (Ok(va), Ok(vb)) => assert_eq!(va, vb, "salt {salt}"),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "salt {salt}"),
                (va, vb) => panic!("diverged at salt {salt}: {va:?} vs {vb:?}"),
            }
        }
        assert_eq!(a.report().runs, b.report().runs);
        assert_eq!(a.report().timeline, b.report().timeline);
    }

    #[test]
    fn stale_speculation_is_discarded_not_served() {
        let system = SystemModel::system1();
        let app = gemm_app();
        let mut guard = Guard::new(&app, &system, half_spec(), GuardPolicy::default()).unwrap();
        // Speculate against a spec that is *not* the active one: the
        // replay must ignore it and re-execute under the active spec.
        let stale = speculate(guard.system(), &ScalingSpec::baseline(), 0, |gain| {
            gemm_app().with_input_gain(gain)
        });
        let v = guard
            .run_forked(0, |gain| gemm_app().with_input_gain(gain), Some(stale))
            .unwrap();
        let fresh = speculate(guard.system(), guard.active_spec(), 0, |gain| {
            gemm_app().with_input_gain(gain)
        });
        let (outputs, _) = fresh.result.unwrap();
        assert_eq!(v.outputs, outputs, "must serve the active spec's outputs");
    }

    #[test]
    fn overload_report_requests_revalidation_without_touching_precision() {
        let system = SystemModel::system1();
        let app = gemm_app();
        let mut guard = Guard::new(&app, &system, half_spec(), GuardPolicy::default()).unwrap();
        guard.report_overload();
        assert!(guard.revalidation_due());
        assert!(!guard.fallback_active(), "overload sheds work, not quality");
        assert_eq!(guard.report().demotions, 0);
        assert_eq!(guard.report().revalidations_requested, 1);
        // Raised once until acknowledged.
        guard.report_overload();
        assert_eq!(guard.report().revalidations_requested, 1);
        assert!(guard.report().history.iter().any(|e| e.action
            == GuardAction::RevalidationRequested {
                reason: RevalidationReason::SustainedOverload
            }));
        guard.acknowledge_revalidation();
        assert!(!guard.revalidation_due());
    }

    #[test]
    fn poisoned_shared_guard_keeps_serving() {
        let system = SystemModel::system1();
        let app = gemm_app();
        let guard = Guard::new(&app, &system, half_spec(), GuardPolicy::default()).unwrap();
        let shared = SharedGuard::new(guard);

        // One worker panics while holding the lock…
        let crashing = shared.clone();
        let worker = std::thread::spawn(move || {
            crashing.with(|_g| panic!("injected worker panic"));
        });
        assert!(worker.join().is_err(), "the panic must reach the join");

        // …and the pool keeps serving through the poisoned mutex.
        let v = shared
            .with(|g| g.run_production(|gain| gemm_app().with_input_gain(gain)))
            .unwrap();
        assert!(!v.degraded);
        assert_eq!(shared.summary().runs, 1);
        assert!(!shared.fallback_active());
        let (unguarded, _) = run_app(&app, &system, &half_spec()).unwrap();
        assert_eq!(v.outputs, unguarded, "post-poison runs stay bit-identical");
    }

    #[test]
    fn ladder_steps_are_single_and_directed() {
        assert_eq!(
            step_toward(Precision::Half, Precision::Double),
            Precision::Single
        );
        assert_eq!(
            step_toward(Precision::Single, Precision::Double),
            Precision::Double
        );
        assert_eq!(
            step_toward(Precision::Double, Precision::Half),
            Precision::Single
        );
        assert_eq!(
            step_toward(Precision::Half, Precision::Half),
            Precision::Half
        );
    }

    #[test]
    fn report_summary_round_trips_the_counters() {
        let mut report = GuardReport {
            runs: 10,
            canary_runs: 3,
            demotions: 2,
            promotions: 1,
            degraded_runs: 4,
            fallback: false,
            last_canary_quality: Some(0.95),
            ..GuardReport::default()
        };
        report.timeline.guard_overhead = SimTime::from_secs(0.5);
        report.degraded_time = SimTime::from_secs(2.0);
        let s = report.summary();
        assert_eq!(s.runs, 10);
        assert_eq!(s.canary_runs, 3);
        assert_eq!(s.demotions, 2);
        assert_eq!(s.promotions, 1);
        assert_eq!(s.degraded_runs, 4);
        assert!((s.canary_secs - 0.5).abs() < 1e-12);
        assert!((s.degraded_secs - 2.0).abs() < 1e-12);
        assert_eq!(s.final_quality, Some(0.95));
    }
}
