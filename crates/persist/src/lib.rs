//! Crash-safe durability for the PreScaler pipeline.
//!
//! PreScaler's value proposition is amortizing expensive one-time work —
//! the system-inspector database and the per-application trial runs — so
//! that state has to survive the two ways long runs actually die on real
//! machines: a kill mid-flight (losing hours of charged trials) and a
//! crash mid-write (leaving a torn, half-written file that a later load
//! silently trusts). This crate provides the two primitives the rest of
//! the workspace builds on:
//!
//! * [`snapshot`] — **atomic, versioned, checksummed whole-file
//!   persistence**: payloads are written to a temp file in the target
//!   directory, fsynced, and renamed into place, under a fixed-size
//!   header carrying magic, format version, a payload kind tag, the
//!   payload length, and CRC-32 checksums of header and payload. A load
//!   either returns the exact bytes that were saved or a typed
//!   [`PersistError`] — never a silently truncated or bit-flipped
//!   payload.
//! * [`journal`] — an **append-only write-ahead trial journal** of
//!   fixed-size, per-record-checksummed entries. Appends are synced
//!   record by record; recovery scans from the top and truncates at the
//!   first bad record (a torn write or garbage tail loses at most the
//!   records at and after the tear, never the prefix), so an interrupted
//!   consumer resumes from everything that was durably completed.
//!
//! The crate is deliberately free of PreScaler types: it moves bytes and
//! `u64`-encoded floats. The trial-engine semantics (what a record
//! *means*, how replay restores a memo cache) live in `prescaler-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A typed durability failure.
///
/// Every variant is recoverable by policy: callers either surface it,
/// regenerate the artifact, or degrade (the inspector database falls back
/// to the analytic cost model; the journal truncates and resumes).
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the expected magic — it is not a
    /// PreScaler artifact (or its header was destroyed).
    BadMagic {
        /// Magic the reader expected.
        expected: [u8; 4],
        /// Bytes actually found.
        got: [u8; 4],
    },
    /// The artifact was written by an unknown (newer) format version.
    UnsupportedVersion {
        /// Version found in the header.
        got: u16,
        /// Latest version this build understands.
        supported: u16,
    },
    /// The artifact is a valid snapshot of the *wrong* payload kind
    /// (e.g. a `Tuned` snapshot passed to `InspectorDb::load`).
    WrongKind {
        /// Kind tag the reader expected.
        expected: u16,
        /// Kind tag found in the header.
        got: u16,
    },
    /// The file is shorter than its header claims — a torn write.
    Truncated {
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A checksum did not match — bit rot or a torn overwrite.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes actually read.
        computed: u32,
    },
    /// A journal was created for a different context (another
    /// application/system pair) than the one trying to resume from it.
    ContextMismatch {
        /// Context fingerprint the consumer expected.
        expected: u64,
        /// Fingerprint stored in the journal header.
        got: u64,
    },
    /// The payload bytes were intact but could not be decoded into the
    /// expected in-memory shape.
    Decode(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O failure: {e}"),
            PersistError::BadMagic { expected, got } => write!(
                f,
                "bad magic {:02x?} (expected {:02x?}): not a PreScaler artifact",
                got, expected
            ),
            PersistError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "format version {got} is newer than supported {supported}"
                )
            }
            PersistError::WrongKind { expected, got } => {
                write!(f, "snapshot holds payload kind {got}, expected {expected}")
            }
            PersistError::Truncated { expected, got } => {
                write!(
                    f,
                    "file truncated: {got} bytes present, {expected} promised"
                )
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::ContextMismatch { expected, got } => write!(
                f,
                "journal context {got:#018x} does not match consumer {expected:#018x}"
            ),
            PersistError::Decode(msg) => write!(f, "payload decode failed: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected) — the checksum guarding every header,
/// snapshot payload, and journal record.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// content fsynced, then renamed over the target, then the directory
/// entry fsynced (best effort). A crash at any point leaves either the
/// old file or the new one — never a mix.
///
/// # Errors
///
/// Propagates filesystem failures as [`PersistError::Io`].
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| PersistError::Decode(format!("path {} has no file name", path.display())))?;
    let mut tmp = PathBuf::from(path);
    tmp.set_file_name(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));

    let result = (|| -> Result<(), PersistError> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Durability of the rename itself: fsync the directory entry.
        // Opening a directory read-only for sync is Linux-friendly; on
        // platforms where it fails the rename is still atomic, so this
        // stays best effort.
        if let Some(dir) = dir {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

pub mod snapshot {
    //! Atomic, versioned, checksummed whole-file snapshots.
    //!
    //! Layout (all integers little-endian):
    //!
    //! ```text
    //! offset  size  field
    //!      0     4  magic  b"PSNP"
    //!      4     2  format version (1)
    //!      6     2  payload kind tag
    //!      8     8  payload length in bytes
    //!     16     4  CRC-32 of the payload
    //!     20     4  CRC-32 of header bytes 0..20
    //!     24     n  payload
    //! ```

    use super::{crc32, write_atomic, PersistError};
    use std::io::Read;
    use std::path::Path;

    /// Snapshot container magic.
    pub const MAGIC: [u8; 4] = *b"PSNP";
    /// Current container format version.
    pub const VERSION: u16 = 1;
    /// Header size in bytes.
    pub const HEADER_LEN: usize = 24;

    /// Payload kind tag: a serialized `InspectorDb`.
    pub const KIND_INSPECTOR_DB: u16 = 1;
    /// Payload kind tag: a serialized `Tuned` result snapshot.
    pub const KIND_TUNED: u16 = 2;

    /// Saves `payload` under an atomic, checksummed container.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(path: &Path, kind: u16, payload: &[u8]) -> Result<(), PersistError> {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&kind.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        let header_crc = crc32(&bytes[..20]);
        bytes.extend_from_slice(&header_crc.to_le_bytes());
        bytes.extend_from_slice(payload);
        write_atomic(path, &bytes)
    }

    /// Loads and verifies a snapshot, returning the exact payload bytes
    /// that were saved.
    ///
    /// # Errors
    ///
    /// Typed [`PersistError`]s for every way the file can be wrong:
    /// foreign content ([`PersistError::BadMagic`]), newer formats,
    /// mismatched payload kind, truncation, and checksum failures.
    pub fn load(path: &Path, kind: u16) -> Result<Vec<u8>, PersistError> {
        let mut f = std::fs::File::open(path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        load_bytes(&bytes, kind)
    }

    /// [`load`] over bytes already in memory.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`load`].
    pub fn load_bytes(bytes: &[u8], kind: u16) -> Result<Vec<u8>, PersistError> {
        if bytes.len() < HEADER_LEN {
            let mut got = [0u8; 4];
            let n = bytes.len().min(4);
            got[..n].copy_from_slice(&bytes[..n]);
            if got != MAGIC {
                return Err(PersistError::BadMagic {
                    expected: MAGIC,
                    got,
                });
            }
            return Err(PersistError::Truncated {
                expected: HEADER_LEN as u64,
                got: bytes.len() as u64,
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(PersistError::BadMagic {
                expected: MAGIC,
                got: magic,
            });
        }
        let stored_header_crc = u32_le(&bytes[20..24]);
        let computed_header_crc = crc32(&bytes[..20]);
        if stored_header_crc != computed_header_crc {
            return Err(PersistError::ChecksumMismatch {
                stored: stored_header_crc,
                computed: computed_header_crc,
            });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
        if version > VERSION {
            return Err(PersistError::UnsupportedVersion {
                got: version,
                supported: VERSION,
            });
        }
        let got_kind = u16::from_le_bytes(bytes[6..8].try_into().expect("2-byte slice"));
        if got_kind != kind {
            return Err(PersistError::WrongKind {
                expected: kind,
                got: got_kind,
            });
        }
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        let available = (bytes.len() - HEADER_LEN) as u64;
        if available < payload_len {
            return Err(PersistError::Truncated {
                expected: payload_len,
                got: available,
            });
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
        let stored_crc = u32_le(&bytes[16..20]);
        let computed = crc32(payload);
        if stored_crc != computed {
            return Err(PersistError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }
        Ok(payload.to_vec())
    }

    /// Whether `bytes` begin with the snapshot magic — used by loaders
    /// that keep a legacy (pre-container) fallback path.
    #[must_use]
    pub fn has_magic(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && bytes[..4] == MAGIC
    }

    fn u32_le(b: &[u8]) -> u32 {
        u32::from_le_bytes(b.try_into().expect("4-byte slice"))
    }
}

pub mod journal {
    //! The append-only, per-record-checksummed write-ahead trial journal.
    //!
    //! File layout (all integers little-endian):
    //!
    //! ```text
    //! header (20 bytes)
    //!   0   4  magic b"PSWJ"
    //!   4   2  format version (1)
    //!   6   2  reserved (0)
    //!   8   8  context fingerprint (app × system identity)
    //!  16   4  CRC-32 of header bytes 0..16
    //! record (37 bytes, repeated)
    //!   0   8  spec fingerprint
    //!   8   1  flags: bit0 clean-twin namespace, bit1 evaluation present,
    //!           bit2 charged at execution time
    //!   9   8  total-time bits       (f64::to_bits; 0 when absent)
    //!  17   8  kernel-time bits      (f64::to_bits; 0 when absent)
    //!  25   8  quality bits          (f64::to_bits; 0 when absent)
    //!  33   4  CRC-32 of record bytes 0..33
    //! ```
    //!
    //! Recovery rule: records are scanned from the top; the first record
    //! that is short (torn write) or fails its CRC (garbage/bit rot)
    //! truncates the file at its own start, and everything before it is
    //! replayed. A file with a destroyed header is recreated empty — the
    //! consumer loses the journal, never its correctness.

    use super::{crc32, PersistError};
    use std::fs::{File, OpenOptions};
    use std::io::{Read, Seek, SeekFrom, Write};
    use std::path::{Path, PathBuf};

    /// Journal file magic.
    pub const MAGIC: [u8; 4] = *b"PSWJ";
    /// Current journal format version.
    pub const VERSION: u16 = 1;
    /// Header size in bytes.
    pub const HEADER_LEN: u64 = 20;
    /// Fixed record size in bytes.
    pub const RECORD_LEN: u64 = 37;

    const FLAG_CLEAN: u8 = 1;
    const FLAG_EVAL: u8 = 1 << 1;
    const FLAG_CHARGED: u8 = 1 << 2;

    /// One completed trial execution, as the journal stores it. Floats
    /// travel as raw bits so replay is bit-exact.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct TrialRecord {
        /// Canonical spec fingerprint (the memo-cache key).
        pub fingerprint: u64,
        /// Whether the result lives in the clean-twin namespace.
        pub clean: bool,
        /// Whether the execution was charged as a trial when it ran
        /// (informational; replay always re-derives charging).
        pub charged: bool,
        /// The evaluation, absent when the run could not complete.
        pub eval: Option<EvalBits>,
    }

    /// Bit-exact evaluation payload.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct EvalBits {
        /// `f64::to_bits` of the total virtual time in seconds.
        pub time_bits: u64,
        /// `f64::to_bits` of the kernel-only time in seconds.
        pub kernel_bits: u64,
        /// `f64::to_bits` of the output quality.
        pub quality_bits: u64,
    }

    impl TrialRecord {
        fn encode(&self) -> [u8; RECORD_LEN as usize] {
            let mut buf = [0u8; RECORD_LEN as usize];
            buf[0..8].copy_from_slice(&self.fingerprint.to_le_bytes());
            let mut flags = 0u8;
            if self.clean {
                flags |= FLAG_CLEAN;
            }
            if self.eval.is_some() {
                flags |= FLAG_EVAL;
            }
            if self.charged {
                flags |= FLAG_CHARGED;
            }
            buf[8] = flags;
            let eval = self.eval.unwrap_or(EvalBits {
                time_bits: 0,
                kernel_bits: 0,
                quality_bits: 0,
            });
            buf[9..17].copy_from_slice(&eval.time_bits.to_le_bytes());
            buf[17..25].copy_from_slice(&eval.kernel_bits.to_le_bytes());
            buf[25..33].copy_from_slice(&eval.quality_bits.to_le_bytes());
            let crc = crc32(&buf[..33]);
            buf[33..37].copy_from_slice(&crc.to_le_bytes());
            buf
        }

        fn decode(buf: &[u8]) -> Option<TrialRecord> {
            if buf.len() < RECORD_LEN as usize {
                return None;
            }
            let stored = u32::from_le_bytes(buf[33..37].try_into().ok()?);
            if stored != crc32(&buf[..33]) {
                return None;
            }
            let flags = buf[8];
            let eval = (flags & FLAG_EVAL != 0).then(|| EvalBits {
                time_bits: u64::from_le_bytes(buf[9..17].try_into().expect("8-byte slice")),
                kernel_bits: u64::from_le_bytes(buf[17..25].try_into().expect("8-byte slice")),
                quality_bits: u64::from_le_bytes(buf[25..33].try_into().expect("8-byte slice")),
            });
            Some(TrialRecord {
                fingerprint: u64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice")),
                clean: flags & FLAG_CLEAN != 0,
                charged: flags & FLAG_CHARGED != 0,
                eval,
            })
        }
    }

    /// What recovery found in an existing journal file.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct Recovery {
        /// Valid records, in append order.
        pub records: Vec<TrialRecord>,
        /// Bytes dropped past the last valid record (torn write or
        /// garbage tail). `0` for a clean journal.
        pub dropped_bytes: u64,
        /// Whether the header itself was unusable and the journal was
        /// recreated empty.
        pub recreated: bool,
    }

    impl Recovery {
        /// Whether recovery had to repair anything.
        #[must_use]
        pub fn repaired(&self) -> bool {
            self.dropped_bytes > 0 || self.recreated
        }
    }

    /// An open write-ahead trial journal, positioned for appending.
    #[derive(Debug)]
    pub struct TrialJournal {
        file: File,
        path: PathBuf,
        records: u64,
    }

    impl TrialJournal {
        /// Creates a fresh journal at `path` (truncating any existing
        /// file) bound to `context`.
        ///
        /// # Errors
        ///
        /// Propagates filesystem failures.
        pub fn create(path: &Path, context: u64) -> Result<TrialJournal, PersistError> {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            let mut header = [0u8; HEADER_LEN as usize];
            header[0..4].copy_from_slice(&MAGIC);
            header[4..6].copy_from_slice(&VERSION.to_le_bytes());
            // bytes 6..8 reserved, zero
            header[8..16].copy_from_slice(&context.to_le_bytes());
            let crc = crc32(&header[..16]);
            header[16..20].copy_from_slice(&crc.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
            Ok(TrialJournal {
                file,
                path: path.to_path_buf(),
                records: 0,
            })
        }

        /// Opens the journal at `path` for `context`, recovering whatever
        /// prefix of it is valid:
        ///
        /// * missing file, or a file too short / corrupt to even carry a
        ///   header → recreated empty ([`Recovery::recreated`]);
        /// * torn or garbage tail → truncated at the first bad record
        ///   ([`Recovery::dropped_bytes`]);
        /// * intact header for a *different* context, a foreign magic, or
        ///   a newer version → typed error, the file is left untouched
        ///   (it is somebody else's data, not a crash artifact).
        ///
        /// # Errors
        ///
        /// [`PersistError::ContextMismatch`], [`PersistError::BadMagic`],
        /// [`PersistError::UnsupportedVersion`] (intact-but-foreign
        /// files), or [`PersistError::Io`].
        pub fn open(path: &Path, context: u64) -> Result<(TrialJournal, Recovery), PersistError> {
            if !path.exists() {
                let journal = TrialJournal::create(path, context)?;
                return Ok((journal, Recovery::default()));
            }
            let mut bytes = Vec::new();
            File::open(path)?.read_to_end(&mut bytes)?;

            // Header triage.
            let header_ok = bytes.len() >= HEADER_LEN as usize && {
                let stored = u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte slice"));
                stored == crc32(&bytes[..16])
            };
            if !header_ok {
                // A half-written header is a crash artifact of our own
                // making; recreate the journal rather than fail the run.
                let journal = TrialJournal::create(path, context)?;
                return Ok((
                    journal,
                    Recovery {
                        records: Vec::new(),
                        dropped_bytes: bytes.len() as u64,
                        recreated: true,
                    },
                ));
            }
            let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
            if magic != MAGIC {
                return Err(PersistError::BadMagic {
                    expected: MAGIC,
                    got: magic,
                });
            }
            let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
            if version > VERSION {
                return Err(PersistError::UnsupportedVersion {
                    got: version,
                    supported: VERSION,
                });
            }
            let got_context = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
            if got_context != context {
                return Err(PersistError::ContextMismatch {
                    expected: context,
                    got: got_context,
                });
            }

            // Record scan: accept the longest valid prefix.
            let mut records = Vec::new();
            let mut offset = HEADER_LEN as usize;
            while offset + RECORD_LEN as usize <= bytes.len() {
                match TrialRecord::decode(&bytes[offset..offset + RECORD_LEN as usize]) {
                    Some(rec) => {
                        records.push(rec);
                        offset += RECORD_LEN as usize;
                    }
                    None => break,
                }
            }
            let dropped = (bytes.len() - offset) as u64;

            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            if dropped > 0 {
                file.set_len(offset as u64)?;
                file.sync_all()?;
            }
            file.seek(SeekFrom::End(0))?;
            Ok((
                TrialJournal {
                    file,
                    path: path.to_path_buf(),
                    records: records.len() as u64,
                },
                Recovery {
                    records,
                    dropped_bytes: dropped,
                    recreated: false,
                },
            ))
        }

        /// Appends one record and syncs it to disk — after this returns,
        /// the record survives a crash.
        ///
        /// # Errors
        ///
        /// Propagates filesystem failures.
        pub fn append(&mut self, record: &TrialRecord) -> Result<(), PersistError> {
            self.file.write_all(&record.encode())?;
            self.file.sync_data()?;
            self.records += 1;
            Ok(())
        }

        /// Number of records appended or recovered so far.
        #[must_use]
        pub fn record_count(&self) -> u64 {
            self.records
        }

        /// The journal's path.
        #[must_use]
        pub fn path(&self) -> &Path {
            &self.path
        }

        /// Fault-injection hook: simulates a torn final write by cutting
        /// the last `bytes` bytes off the file, as if the process died
        /// mid-`write`.
        ///
        /// # Errors
        ///
        /// Propagates filesystem failures.
        pub fn tear_tail(&mut self, bytes: u64) -> Result<(), PersistError> {
            let len = self.file.metadata()?.len();
            self.file.set_len(len.saturating_sub(bytes))?;
            self.file.sync_all()?;
            Ok(())
        }

        /// Fault-injection hook: simulates a crash mid-append by leaving
        /// `bytes` bytes of garbage (an `0xA5` fill that cannot pass a
        /// record CRC) at the tail.
        ///
        /// # Errors
        ///
        /// Propagates filesystem failures.
        pub fn scribble_tail(&mut self, bytes: u64) -> Result<(), PersistError> {
            let junk = vec![0xA5u8; bytes as usize];
            self.file.write_all(&junk)?;
            self.file.sync_data()?;
            Ok(())
        }
    }
}

pub use journal::{EvalBits, Recovery, TrialJournal, TrialRecord};

#[cfg(test)]
mod tests {
    use super::journal::{EvalBits, TrialJournal, TrialRecord, HEADER_LEN, RECORD_LEN};
    use super::{crc32, snapshot, PersistError};
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("prescaler_persist_{}_{}", tag, std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records(n: u64) -> Vec<TrialRecord> {
        (0..n)
            .map(|i| TrialRecord {
                fingerprint: 0x1000 + i,
                clean: i % 3 == 0,
                charged: i % 2 == 0,
                eval: (i % 4 != 3).then(|| EvalBits {
                    time_bits: (1.5e-3 * (i + 1) as f64).to_bits(),
                    kernel_bits: (1.0e-3 * (i + 1) as f64).to_bits(),
                    quality_bits: (1.0 - 1e-6 * i as f64).to_bits(),
                }),
            })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn snapshot_round_trips_and_checks_kind() {
        let dir = temp_dir("snap_rt");
        let path = dir.join("a.snap");
        let payload = b"{\"hello\":1}".to_vec();
        snapshot::save(&path, snapshot::KIND_INSPECTOR_DB, &payload).unwrap();
        assert_eq!(
            snapshot::load(&path, snapshot::KIND_INSPECTOR_DB).unwrap(),
            payload
        );
        assert!(matches!(
            snapshot::load(&path, snapshot::KIND_TUNED),
            Err(PersistError::WrongKind {
                expected: 2,
                got: 1
            })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_detects_truncation_and_bit_flips() {
        let dir = temp_dir("snap_corrupt");
        let path = dir.join("b.snap");
        let payload = vec![7u8; 4096];
        snapshot::save(&path, snapshot::KIND_TUNED, &payload).unwrap();
        let full = fs::read(&path).unwrap();

        // Truncated payload.
        fs::write(&path, &full[..full.len() - 100]).unwrap();
        assert!(matches!(
            snapshot::load(&path, snapshot::KIND_TUNED),
            Err(PersistError::Truncated { .. })
        ));

        // Flipped payload byte.
        let mut flipped = full.clone();
        let i = flipped.len() - 10;
        flipped[i] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            snapshot::load(&path, snapshot::KIND_TUNED),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        // Flipped header byte.
        let mut bad_header = full.clone();
        bad_header[9] ^= 0x01;
        fs::write(&path, &bad_header).unwrap();
        assert!(matches!(
            snapshot::load(&path, snapshot::KIND_TUNED),
            Err(PersistError::ChecksumMismatch { .. })
        ));

        // Foreign file.
        fs::write(&path, b"not a snapshot at all").unwrap();
        assert!(matches!(
            snapshot::load(&path, snapshot::KIND_TUNED),
            Err(PersistError::BadMagic { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_round_trips_records() {
        let dir = temp_dir("journal_rt");
        let path = dir.join("trials.wal");
        let records = sample_records(7);
        {
            let mut j = TrialJournal::create(&path, 0xDEAD_BEEF).unwrap();
            for r in &records {
                j.append(r).unwrap();
            }
            assert_eq!(j.record_count(), 7);
        }
        let (j, rec) = TrialJournal::open(&path, 0xDEAD_BEEF).unwrap();
        assert_eq!(rec.records, records);
        assert_eq!(rec.dropped_bytes, 0);
        assert!(!rec.repaired());
        assert_eq!(j.record_count(), 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_loses_only_the_torn_record() {
        let dir = temp_dir("journal_torn");
        let path = dir.join("trials.wal");
        let records = sample_records(5);
        let mut j = TrialJournal::create(&path, 1).unwrap();
        for r in &records {
            j.append(r).unwrap();
        }
        // Tear 10 bytes off the final record: a torn write.
        j.tear_tail(10).unwrap();
        drop(j);
        let (j2, rec) = TrialJournal::open(&path, 1).unwrap();
        assert_eq!(rec.records, records[..4].to_vec());
        assert_eq!(rec.dropped_bytes, RECORD_LEN - 10);
        assert!(rec.repaired());
        // The file is truncated back to a clean record boundary.
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            HEADER_LEN + 4 * RECORD_LEN
        );
        drop(j2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_tail_is_dropped_and_appends_resume() {
        let dir = temp_dir("journal_garbage");
        let path = dir.join("trials.wal");
        let records = sample_records(4);
        let mut j = TrialJournal::create(&path, 2).unwrap();
        for r in &records[..3] {
            j.append(r).unwrap();
        }
        j.scribble_tail(21).unwrap();
        drop(j);
        let (mut j2, rec) = TrialJournal::open(&path, 2).unwrap();
        assert_eq!(rec.records, records[..3].to_vec());
        assert_eq!(rec.dropped_bytes, 21);
        // Appending after recovery lands on a clean boundary.
        j2.append(&records[3]).unwrap();
        drop(j2);
        let (_, rec2) = TrialJournal::open(&path, 2).unwrap();
        assert_eq!(rec2.records, records);
        assert_eq!(rec2.dropped_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_bit_flip_truncates_from_the_flip() {
        let dir = temp_dir("journal_flip");
        let path = dir.join("trials.wal");
        let records = sample_records(6);
        let mut j = TrialJournal::create(&path, 3).unwrap();
        for r in &records {
            j.append(r).unwrap();
        }
        drop(j);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one byte inside record index 2.
        let at = HEADER_LEN as usize + 2 * RECORD_LEN as usize + 5;
        bytes[at] ^= 0x80;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = TrialJournal::open(&path, 3).unwrap();
        assert_eq!(
            rec.records,
            records[..2].to_vec(),
            "replay stops at the first bad record"
        );
        assert_eq!(rec.dropped_bytes, 4 * RECORD_LEN);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn destroyed_header_recreates_empty() {
        let dir = temp_dir("journal_header");
        let path = dir.join("trials.wal");
        let mut j = TrialJournal::create(&path, 4).unwrap();
        for r in sample_records(3) {
            j.append(&r).unwrap();
        }
        drop(j);
        let mut bytes = fs::read(&path).unwrap();
        bytes[17] ^= 0xFF; // break the header CRC
        fs::write(&path, &bytes).unwrap();
        let (j2, rec) = TrialJournal::open(&path, 4).unwrap();
        assert!(rec.recreated);
        assert!(rec.records.is_empty());
        assert_eq!(j2.record_count(), 0);
        drop(j2);
        // Truncated-below-header files likewise recreate.
        fs::write(&path, b"PSWJ\x01").unwrap();
        let (_, rec) = TrialJournal::open(&path, 4).unwrap();
        assert!(rec.recreated);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_journals_are_typed_errors_not_clobbered() {
        let dir = temp_dir("journal_foreign");
        let path = dir.join("trials.wal");
        TrialJournal::create(&path, 111).unwrap();
        // Wrong context: refuse, and leave the file intact.
        assert!(matches!(
            TrialJournal::open(&path, 222),
            Err(PersistError::ContextMismatch {
                expected: 222,
                got: 111
            })
        ));
        let (_, rec) = TrialJournal::open(&path, 111).unwrap();
        assert!(!rec.repaired(), "refused open must not modify the file");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_whole_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("x.bin");
        super::write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        super::write_atomic(&path, b"second-longer-content").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second-longer-content");
        // No temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }
}
