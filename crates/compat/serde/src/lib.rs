//! Offline shim of the `serde` surface this workspace uses.
//!
//! The build container cannot reach a crate registry, so the real `serde`
//! stack is replaced by this JSON-direct implementation: [`Serialize`]
//! appends compact JSON to a `String`, [`Deserialize`] reads from a parsed
//! [`json::Value`] tree. The derive macros (re-exported from the companion
//! `serde_derive` shim) generate impls of these traits for the shapes the
//! workspace actually contains: named structs, newtype structs, and enums
//! with unit or struct variants (externally tagged, matching the committed
//! `results/*.json` format).
//!
//! Not a general serde: no serializer abstraction, no attributes, no
//! borrowed deserialization.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Types that can append themselves as compact JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize(&self, out: &mut String);
}

/// Types reconstructible from a parsed JSON [`json::Value`].
pub trait Deserialize: Sized {
    /// Builds a value from the JSON tree.
    ///
    /// # Errors
    ///
    /// Returns a [`json::Error`] describing the first mismatch between the
    /// tree and the expected shape.
    fn deserialize(v: &json::Value) -> Result<Self, json::Error>;

    /// Called when a struct field's key is absent. `Option` fields decode
    /// to `None`; everything else reports a missing-field error.
    ///
    /// # Errors
    ///
    /// Returns a missing-field [`json::Error`] by default.
    fn missing(field: &str) -> Result<Self, json::Error> {
        Err(json::Error::new(format!("missing field `{field}`")))
    }
}

pub mod json {
    //! The JSON data model, parser, and writer backing the shim traits.

    use std::fmt;

    /// A parsed JSON document.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Integer without fraction/exponent that fits `i64`.
        Int(i64),
        /// Non-negative integer too large for `i64`.
        UInt(u64),
        /// Any number with a fraction or exponent.
        Float(f64),
        /// String literal (escapes resolved).
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object; insertion order preserved.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The object entries, if this is an object.
        #[must_use]
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(entries) => Some(entries),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        #[must_use]
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    /// Looks up a key in an object's entries (first match).
    #[must_use]
    pub fn get<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// For externally tagged enums: the single `{"Variant": inner}` entry.
    ///
    /// # Errors
    ///
    /// Errors unless `v` is an object with exactly one entry.
    pub fn single_entry<'v>(v: &'v Value, type_name: &str) -> Result<(&'v str, &'v Value), Error> {
        match v.as_object() {
            Some([(name, inner)]) => Ok((name.as_str(), inner)),
            _ => Err(Error::new(format!(
                "expected single-entry object for enum {type_name}"
            ))),
        }
    }

    /// Deserialization/parse error.
    #[derive(Clone, Debug)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// An error with the given message.
        #[must_use]
        pub fn new(msg: impl Into<String>) -> Error {
            Error { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Appends a JSON string literal (with escaping) to `out`.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{08}' => out.push_str("\\b"),
                '\u{0C}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Appends a float. Integral finite values keep a trailing `.0` so the
    /// output stays distinguishable from integers (matching serde_json);
    /// non-finite values become `null`.
    pub fn write_f64(out: &mut String, v: f64) {
        if !v.is_finite() {
            out.push_str("null");
            return;
        }
        let s = v.to_string();
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Errors on malformed or truncated input, or trailing garbage, with
    /// the byte offset of the problem.
    pub fn parse(input: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    const MAX_DEPTH: usize = 128;

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> Error {
            Error::new(format!("{msg} at byte {}", self.pos))
        }

        fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                match b {
                    b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                    _ => break,
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected `{}`", b as char)))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(self.err("invalid literal"))
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value, Error> {
            if depth > MAX_DEPTH {
                return Err(self.err("nesting too deep"));
            }
            match self.peek() {
                None => Err(self.err("unexpected end of input")),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.array(depth),
                Some(b'{') => self.object(depth),
                Some(b'-' | b'0'..=b'9') => self.number(),
                Some(_) => Err(self.err("unexpected character")),
            }
        }

        fn array(&mut self, depth: usize) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value(depth + 1)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(self.err("expected `,` or `]` in array")),
                }
            }
        }

        fn object(&mut self, depth: usize) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value(depth + 1)?;
                entries.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    _ => return Err(self.err("expected `,` or `}` in object")),
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                let Some(b) = self.peek() else {
                    return Err(self.err("unterminated string"));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(s),
                    b'\\' => {
                        let Some(esc) = self.peek() else {
                            return Err(self.err("unterminated escape"));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'b' => s.push('\u{08}'),
                            b'f' => s.push('\u{0C}'),
                            b'n' => s.push('\n'),
                            b'r' => s.push('\r'),
                            b't' => s.push('\t'),
                            b'u' => {
                                let cp = self.hex4()?;
                                // Surrogate pairs for non-BMP characters.
                                let c = if (0xD800..0xDC00).contains(&cp) {
                                    if self.peek() == Some(b'\\') {
                                        self.pos += 1;
                                        self.expect(b'u')?;
                                        let lo = self.hex4()?;
                                        let combined = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    char::from_u32(cp)
                                };
                                match c {
                                    Some(c) => s.push(c),
                                    None => return Err(self.err("invalid \\u escape")),
                                }
                            }
                            _ => return Err(self.err("invalid escape")),
                        }
                    }
                    b if b < 0x80 => s.push(b as char),
                    _ => {
                        // Multi-byte UTF-8: the input is a &str, so the
                        // sequence is valid; copy it through.
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        s.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, Error> {
            let mut cp = 0u32;
            for _ in 0..4 {
                let Some(b) = self.peek() else {
                    return Err(self.err("truncated \\u escape"));
                };
                self.pos += 1;
                let d = (b as char)
                    .to_digit(16)
                    .ok_or_else(|| self.err("invalid hex digit"))?;
                cp = cp * 16 + d;
            }
            Ok(cp)
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut fractional = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        fractional = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid number"))?;
            if text.is_empty() || text == "-" {
                return Err(self.err("invalid number"));
            }
            if !fractional {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
                if let Ok(u) = text.parse::<u64>() {
                    return Ok(Value::UInt(u));
                }
            }
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

use json::{Error, Value};

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        json::write_str(out, self);
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        json::write_str(out, self);
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut String) {
        json::write_f64(out, *self);
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(Error::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut String) {
        json::write_f64(out, f64::from(*self));
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<f32, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                let raw = match v {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    _ => return Err(Error::new("expected unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| Error::new("integer out of range")),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| Error::new("integer out of range")),
                    _ => Err(Error::new("expected integer")),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing(_field: &str) -> Result<Option<T>, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out);
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Value};
    use super::{Deserialize, Serialize};

    #[test]
    fn parse_round_trips_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("1e-5").unwrap(), Value::Float(1e-5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn truncated_documents_error_cleanly() {
        for bad in [
            "", "{", "{\"a\":", "[1,", "\"abc", "{\"a\":1", "tru", "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn floats_keep_a_fraction_marker() {
        let mut out = String::new();
        2.0f64.serialize(&mut out);
        assert_eq!(out, "2.0");
        out.clear();
        0.000010041650396980345f64.serialize(&mut out);
        assert_eq!(out, "0.000010041650396980345");
    }

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<f64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::deserialize(&Value::Float(1.5)).unwrap(),
            Some(1.5)
        );
        assert_eq!(Option::<f64>::missing("fp16").unwrap(), None);
        assert!(f64::missing("x").is_err());
    }
}
