//! Offline shim of the `rand` API surface this workspace uses.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over float and integer ranges, backed by a splitmix64
//! generator. The stream is deterministic and stable across platforms but
//! is **not** bit-compatible with upstream rand 0.8 (which uses ChaCha12
//! for `StdRng`) — seeded inputs remain reproducible, just with different
//! values than the upstream generator would produce.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing generator methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can produce uniform samples (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

fn unit_f64<R: Rng>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: Rng>(self, rng: &mut R) -> f32 {
        let v = (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + pick as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let pick = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + pick as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: splitmix64 (deterministic,
    /// fast; not the upstream ChaCha12).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias of [`StdRng`]; upstream's `SmallRng` is a distinct algorithm
    /// but this workspace only relies on determinism.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen_range(0.005..0.05);
            let y: f64 = b.gen_range(0.005..0.05);
            assert_eq!(x, y);
            assert!((0.005..0.05).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v: f64 = c.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            let n: usize = c.gen_range(1..10);
            assert!((1..10).contains(&n));
        }
    }
}
