//! Offline shim of the `serde_json` entry points this workspace uses,
//! backed by the shim `serde` crate's JSON-direct traits.

#![forbid(unsafe_code)]

pub use serde::json::{Error, Value};

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Errors on malformed/truncated JSON or shape mismatches.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::deserialize(&v)
}

/// Deserializes a value from JSON bytes (must be UTF-8).
///
/// # Errors
///
/// Errors on invalid UTF-8, malformed/truncated JSON, or shape mismatches.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}
