//! Offline shim of the `criterion` API surface this workspace uses.
//!
//! Benchmarks compile and run without the real statistics engine: each
//! benchmark is timed with `std::time::Instant` over a fixed number of
//! warm-up and measurement iterations and reported as a mean time per
//! iteration (plus throughput when declared). Good enough to keep the
//! `cargo bench` targets building, runnable, and comparable run-to-run;
//! not a substitute for criterion's rigorous sampling.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 10;

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched-iteration inputs are sized (accepted, not acted on).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the measurement iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }

    /// Times `routine` with a fresh `setup()` input per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = MEASURE_ITERS;
    }
}

fn report(id: &str, throughput: Option<Throughput>, b: &Bencher) {
    if b.iters == 0 {
        println!("{id:<40} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let mut line = format!("{id:<40} {:>12.3} us/iter", per_iter * 1e6);
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            line.push_str(&format!("  {:>10.1} Melem/s", n as f64 / per_iter / 1e6));
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            line.push_str(&format!(
                "  {:>10.1} MiB/s",
                n as f64 / per_iter / (1 << 20) as f64
            ));
        }
        _ => {}
    }
    println!("{line}");
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&id.id, None, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), self.throughput, &b);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a set of benchmark functions (shim of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point (shim of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
