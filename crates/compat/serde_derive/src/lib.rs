//! Offline shim of `serde_derive`, implemented without `syn`/`quote`.
//!
//! Parses the deriving item's token stream directly (only the shapes this
//! workspace contains: named structs, single-field newtype structs, and
//! enums with unit or struct variants) and emits impls of the shim `serde`
//! traits as source text. Enums use the externally tagged representation —
//! unit variants as `"Name"`, struct variants as `{"Name":{...}}` — which
//! matches both upstream serde and the committed `results/*.json` files.
//!
//! No attributes (`#[serde(...)]`) and no generics are supported; hitting
//! either is a compile-time panic with a clear message rather than silent
//! misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shapes this shim can derive for.
enum Item {
    /// `struct Name { a: A, b: B }`
    Struct { name: String, fields: Vec<String> },
    /// `struct Name(Inner);`
    Newtype { name: String },
    /// `enum Name { Unit, Struct { a: A } }` — fields are `None` for unit
    /// variants.
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Newtype { name } => format!(
            "impl serde::Serialize for {name} {{\n\
             fn serialize(&self, out: &mut std::string::String) {{\n\
             serde::Serialize::serialize(&self.0, out);\n}}\n}}\n"
        ),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Newtype { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
             fn deserialize(v: &serde::json::Value) \
             -> std::result::Result<{name}, serde::json::Error> {{\n\
             std::result::Result::Ok({name}(serde::Deserialize::deserialize(v)?))\n}}\n}}\n"
        ),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut body = String::new();
    for (i, f) in fields.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        body.push_str(&format!(
            "out.push_str(\"{sep}\\\"{f}\\\":\");\n\
             serde::Serialize::serialize(&self.{f}, out);\n"
        ));
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize(&self, out: &mut std::string::String) {{\n\
         out.push('{{');\n{body}out.push('}}');\n}}\n}}\n"
    )
}

fn serialize_enum(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    let mut arms = String::new();
    for (vname, vfields) in variants {
        match vfields {
            None => arms.push_str(&format!(
                "{name}::{vname} => serde::json::write_str(out, \"{vname}\"),\n"
            )),
            Some(fields) => {
                let bindings = fields.join(", ");
                let mut body = String::new();
                for (i, f) in fields.iter().enumerate() {
                    let sep = if i == 0 { "" } else { "," };
                    body.push_str(&format!(
                        "out.push_str(\"{sep}\\\"{f}\\\":\");\n\
                         serde::Serialize::serialize({f}, out);\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {bindings} }} => {{\n\
                     out.push_str(\"{{\\\"{vname}\\\":{{\");\n\
                     {body}out.push_str(\"}}}}\");\n}}\n"
                ));
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize(&self, out: &mut std::string::String) {{\n\
         match self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn field_initializers(fields: &[String]) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "{f}: match serde::json::get(entries, \"{f}\") {{\n\
             std::option::Option::Some(v) => serde::Deserialize::deserialize(v)?,\n\
             std::option::Option::None => serde::Deserialize::missing(\"{f}\")?,\n\
             }},\n"
        ));
    }
    out
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits = field_initializers(fields);
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize(v: &serde::json::Value) \
         -> std::result::Result<{name}, serde::json::Error> {{\n\
         let entries = v.as_object().ok_or_else(|| \
         serde::json::Error::new(\"expected object for {name}\"))?;\n\
         std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    let mut unit_arms = String::new();
    let mut struct_arms = String::new();
    for (vname, vfields) in variants {
        match vfields {
            None => unit_arms.push_str(&format!(
                "\"{vname}\" => std::result::Result::Ok({name}::{vname}),\n"
            )),
            Some(fields) => {
                let inits = field_initializers(fields);
                struct_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let entries = inner.as_object().ok_or_else(|| \
                     serde::json::Error::new(\"expected object for {name}::{vname}\"))?;\n\
                     std::result::Result::Ok({name}::{vname} {{\n{inits}}})\n}}\n"
                ));
            }
        }
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn deserialize(v: &serde::json::Value) \
         -> std::result::Result<{name}, serde::json::Error> {{\n\
         if let std::option::Option::Some(s) = v.as_str() {{\n\
         return match s {{\n{unit_arms}\
         other => std::result::Result::Err(serde::json::Error::new(\
         format!(\"unknown variant `{{other}}` for {name}\"))),\n}};\n}}\n\
         let (vname, inner) = serde::json::single_entry(v, \"{name}\")?;\n\
         let _ = inner;\n\
         match vname {{\n{struct_arms}\
         other => std::result::Result::Err(serde::json::Error::new(\
         format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n}}\n"
    )
}

/// Skips attributes / doc comments (`#` followed by a bracket group) and
/// visibility (`pub`, `pub(crate)`, ...) at the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }

    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>(), &name);
            Item::Struct { name, fields }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            // Single-field tuple structs only: any top-level (angle-depth 0)
            // comma with trailing content means multiple fields.
            let mut depth = 0i32;
            for (idx, t) in inner.iter().enumerate() {
                if let TokenTree::Punct(p) = t {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 && idx + 1 < inner.len() => {
                            panic!(
                                "serde_derive shim: tuple struct `{name}` has multiple fields; \
                                 only newtype structs are supported"
                            );
                        }
                        _ => {}
                    }
                }
            }
            Item::Newtype { name }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = parse_variants(&g.stream().into_iter().collect::<Vec<_>>(), &name);
            Item::Enum { name, variants }
        }
        (k, other) => {
            panic!("serde_derive shim: unsupported item shape `{k}` for `{name}`: {other:?}")
        }
    }
}

/// Extracts field names, in order, from a named-struct body.
fn parse_named_fields(tokens: &[TokenTree], owner: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name in `{owner}`, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after `{owner}.{fname}`, got {other:?}")
            }
        }
        fields.push(fname);
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Extracts `(variant name, struct-variant field names)` pairs from an enum
/// body.
fn parse_variants(tokens: &[TokenTree], owner: &str) -> Vec<(String, Option<Vec<String>>)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let vname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name in `{owner}`, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                    owner,
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde_derive shim: tuple variant `{owner}::{vname}` is not supported; \
                     use a struct variant"
                );
            }
            _ => None,
        };
        variants.push((vname, fields));
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}
