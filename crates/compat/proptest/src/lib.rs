//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! The build container has no network access and no vendored registry, so
//! the real `proptest` crate cannot be fetched. This shim re-implements the
//! subset the test suites rely on — seeded strategies, combinators,
//! `proptest!`/`prop_assert*` macros — with a deterministic per-test PRNG.
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case number and the test's
//!   deterministic seed; re-running the test reproduces it exactly.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * Filters retry up to a fixed bound instead of tracking global rejection
//!   budgets.
//!
//! Everything is deterministic: the PRNG seed derives from the test
//! function's name, so failures are stable across runs and machines.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Deterministic splitmix64-based PRNG used by all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a PRNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives a deterministic seed from a test name (FNV-1a).
    #[must_use]
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generation strategy for values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy behind an `Arc` (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: use the raw generator.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start, self.end);
                assert!(lo < hi, "empty float range strategy");
                let v = lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64);
                let v = v as $t;
                if v >= hi { lo } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                (lo as f64 + rng.unit_f64() * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over all values of an [`Arbitrary`] type.
#[derive(Clone, Debug, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Run configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! Strategy combinators (the `Union` the test suites name directly).

    use super::{BoxedStrategy, Strategy, TestRng};

    /// Chooses among alternative strategies, optionally weighted.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Uniform union over the given alternatives.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
        }

        /// Weighted union.
        #[must_use]
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "empty Union");
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "zero-weight Union");
            Union { arms, total_weight }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick within total")
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with sizes drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `vec(strategy, sizes)` — a `Vec` of generated elements.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Prints a reproduction hint when a property panics mid-case.
pub struct CaseGuard {
    /// Test name.
    pub name: &'static str,
    /// Case index within the run.
    pub case: u32,
    /// The deterministic seed of the whole run.
    pub seed: u64,
    /// Disarmed on success.
    pub armed: bool,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: property `{}` failed at case {} (run seed {:#x}); \
                 the run is deterministic — rerun the test to reproduce",
                self.name, self.case, self.seed
            );
        }
    }
}

/// The property-test harness macro (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expands each `#[test] fn` item of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::TestRng::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = $crate::TestRng::new(seed);
            // Bind strategies once; generation is per-case.
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                let mut guard = $crate::CaseGuard {
                    name: stringify!($name),
                    case,
                    seed,
                    armed: true,
                };
                {
                    // Fresh values for this case, shadowing the strategies.
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    // The body runs in a closure so `prop_assume!` can skip
                    // the case with `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
                guard.armed = false;
                let _ = &guard;
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Weighted or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:literal => $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! The glob-imported prelude, mirroring `proptest::prelude::*`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_filters_generate_in_bounds() {
        let mut rng = TestRng::new(7);
        let s = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 100 && v % 2 == 0);
        }
        let f = -2.0f64..2.0;
        for _ in 0..200 {
            let v = f.generate(&mut rng);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut rng = TestRng::new(9);
        let s = prop_oneof![Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro binds arguments and runs deterministically.
        #[test]
        fn macro_smoke(a in 0i64..10, v in crate::collection::vec(0u8..4, 1..5)) {
            prop_assume!(a != 3);
            prop_assert!(a < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(a + 1, 1 + a);
        }
    }
}
