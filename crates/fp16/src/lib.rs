//! IEEE 754 binary16 ("half precision") implemented in software.
//!
//! The PreScaler paper relies on hardware half-precision support on recent
//! GPUs and on an open-source half-precision math library on the host side
//! (reference \[32\] in the paper). This crate is the reproduction's
//! equivalent of both: a bit-exact binary16 type with correctly rounded
//! conversions and arithmetic, so that target-output-quality (TOQ) failures
//! caused by the limited range of half precision (paper §3.2.3) happen for
//! exactly the same value ranges as on real hardware.
//!
//! # Design
//!
//! * [`F16`] is a `#[repr(transparent)]` newtype over the `u16` bit pattern.
//! * Conversions to/from `f32` and `f64` are implemented directly on bit
//!   patterns with round-to-nearest-even, including subnormals, infinities
//!   and NaN payload preservation (quietened).
//! * Arithmetic widens to `f32`, computes, and rounds back once. Because
//!   `f32` carries 24 significand bits ≥ 2·11+2, this double rounding is
//!   innocuous for `+`, `-`, `*`, `/` and `sqrt` (Figueroa's theorem), so
//!   every operation is correctly rounded binary16 arithmetic.
//!
//! # Examples
//!
//! ```
//! use prescaler_fp16::F16;
//!
//! let x = F16::from_f32(1.5);
//! let y = F16::from_f32(2.25);
//! assert_eq!((x + y).to_f32(), 3.75);
//!
//! // Range overflow: 70000 is not representable in binary16.
//! assert!(F16::from_f32(70000.0).is_infinite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod convert;

use core::cmp::Ordering;
use core::fmt;
use core::str::FromStr;

/// An IEEE 754 binary16 floating-point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 fraction bits.
///
/// ```
/// use prescaler_fp16::F16;
/// assert_eq!(F16::ONE.to_bits(), 0x3C00);
/// assert_eq!(F16::from_bits(0xC000).to_f64(), -2.0);
/// ```
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, `-65504.0`.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon: the difference between `1.0` and the next larger
    /// representable value, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);
    /// Number of significand digits, including the implicit leading bit.
    pub const MANTISSA_DIGITS: u32 = 11;
    /// Maximum binary exponent of a finite value.
    pub const MAX_EXP: i32 = 16;
    /// Minimum binary exponent of a normal value.
    pub const MIN_EXP: i32 = -13;

    /// Creates a value from its raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values of magnitude above [`F16::MAX`] round to infinity; tiny values
    /// round to (possibly signed) zero or subnormals. NaN inputs produce a
    /// quiet NaN that preserves the top payload bits.
    #[inline]
    #[must_use]
    pub fn from_f32(x: f32) -> F16 {
        F16(convert::f32_to_f16_bits(x.to_bits()))
    }

    /// Converts an `f64` to binary16 with a single round-to-nearest-even.
    ///
    /// This is a direct conversion, not `from_f32(x as f32)`: going through
    /// `f32` would round twice, which is observably wrong for some inputs.
    #[inline]
    #[must_use]
    pub fn from_f64(x: f64) -> F16 {
        F16(convert::f64_to_f16_bits(x.to_bits()))
    }

    /// Converts to `f32`. This conversion is exact.
    #[inline]
    #[must_use]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(convert::f16_bits_to_f32(self.0))
    }

    /// Converts to `f64`. This conversion is exact.
    #[inline]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        // f16 -> f32 is exact, f32 -> f64 is exact.
        f64::from(self.to_f32())
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    #[must_use]
    pub const fn is_nan(self) -> bool {
        (self.0 & 0x7FFF) > 0x7C00
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    #[must_use]
    pub const fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    #[must_use]
    pub const fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Returns `true` for subnormal numbers (not zero, infinity, NaN or
    /// normal).
    #[inline]
    #[must_use]
    pub const fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` for normal numbers (not zero, subnormal, infinite or
    /// NaN).
    #[inline]
    #[must_use]
    pub const fn is_normal(self) -> bool {
        let exp = self.0 & 0x7C00;
        exp != 0 && exp != 0x7C00
    }

    /// Returns `true` if this is positive or negative zero.
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// Returns `true` if the sign bit is set (including `-0.0` and NaN with
    /// a negative sign).
    #[inline]
    #[must_use]
    pub const fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Returns `true` if the sign bit is clear.
    #[inline]
    #[must_use]
    pub const fn is_sign_positive(self) -> bool {
        (self.0 & 0x8000) == 0
    }

    /// Returns the absolute value.
    #[inline]
    #[must_use]
    pub const fn abs(self) -> F16 {
        F16(self.0 & 0x7FFF)
    }

    /// Returns the square root, correctly rounded.
    #[inline]
    #[must_use]
    pub fn sqrt(self) -> F16 {
        F16::from_f32(self.to_f32().sqrt())
    }

    /// Returns the larger of two values, propagating the non-NaN operand
    /// like `f32::max`.
    #[inline]
    #[must_use]
    pub fn max(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// Returns the smaller of two values, propagating the non-NaN operand
    /// like `f32::min`.
    #[inline]
    #[must_use]
    pub fn min(self, other: F16) -> F16 {
        F16::from_f32(self.to_f32().min(other.to_f32()))
    }

    /// Total ordering on bit patterns as defined by IEEE 754-2008
    /// `totalOrder`: `-NaN < -Inf < ... < -0 < +0 < ... < +Inf < +NaN`.
    #[must_use]
    pub fn total_cmp(self, other: F16) -> Ordering {
        let a = Self::total_order_key(self.0);
        let b = Self::total_order_key(other.0);
        a.cmp(&b)
    }

    fn total_order_key(bits: u16) -> i32 {
        let magnitude = i32::from(bits & 0x7FFF);
        if bits & 0x8000 != 0 {
            // Negative values order by descending magnitude, and -0 sorts
            // strictly below +0.
            -magnitude - 1
        } else {
            magnitude
        }
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &F16) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        // +0 == -0.
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> F16 {
        F16::from_f32(x)
    }
}

impl From<f64> for F16 {
    fn from(x: f64) -> F16 {
        F16::from_f64(x)
    }
}

/// Error returned when parsing an [`F16`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseF16Error(());

impl fmt::Display for ParseF16Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid half-precision float literal")
    }
}

impl std::error::Error for ParseF16Error {}

impl FromStr for F16 {
    type Err = ParseF16Error;

    /// Parses via `f64` then rounds once to binary16.
    fn from_str(s: &str) -> Result<F16, ParseF16Error> {
        s.parse::<f64>()
            .map(F16::from_f64)
            .map_err(|_| ParseF16Error(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ZERO.to_f64(), 0.0);
        assert_eq!(F16::ONE.to_f64(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f64(), -1.0);
        assert_eq!(F16::MAX.to_f64(), 65504.0);
        assert_eq!(F16::MIN.to_f64(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f64(), 6.103515625e-05);
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f64(), 5.960464477539063e-08);
        assert_eq!(F16::EPSILON.to_f64(), 0.0009765625);
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn classification() {
        assert!(F16::ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert!(F16::ONE.is_normal());
        assert!(F16::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        assert!(!F16::MIN_POSITIVE.is_subnormal());
        assert!(F16::ONE.is_finite());
        assert!(!F16::INFINITY.is_finite());
        assert!(!F16::NAN.is_finite());
        assert!(!F16::NAN.is_infinite());
    }

    #[test]
    fn zero_signs_compare_equal() {
        assert_eq!(F16::ZERO, F16::NEG_ZERO);
        assert_ne!(F16::ZERO.to_bits(), F16::NEG_ZERO.to_bits());
    }

    #[test]
    fn nan_is_not_equal_to_itself() {
        assert_ne!(F16::NAN, F16::NAN);
        assert_eq!(F16::NAN.partial_cmp(&F16::ONE), None);
    }

    #[test]
    fn total_cmp_orders_special_values() {
        let order = [
            F16::NAN.neg_nan_for_test(),
            F16::NEG_INFINITY,
            F16::MIN,
            F16::NEG_ONE,
            F16::NEG_ZERO,
            F16::ZERO,
            F16::ONE,
            F16::MAX,
            F16::INFINITY,
            F16::NAN,
        ];
        for w in order.windows(2) {
            assert_eq!(
                w[0].total_cmp(w[1]),
                Ordering::Less,
                "{:?} < {:?}",
                w[0],
                w[1]
            );
        }
    }

    impl F16 {
        fn neg_nan_for_test(self) -> F16 {
            F16::from_bits(self.to_bits() | 0x8000)
        }
    }

    #[test]
    fn parse_round_trips_simple_literals() {
        assert_eq!("1.5".parse::<F16>().unwrap().to_f64(), 1.5);
        assert_eq!("-0.25".parse::<F16>().unwrap().to_f64(), -0.25);
        assert!("wat".parse::<F16>().is_err());
    }

    #[test]
    fn display_matches_f32_formatting() {
        assert_eq!(F16::from_f32(1.5).to_string(), "1.5");
        assert_eq!(format!("{:?}", F16::from_f32(2.0)), "F16(2)");
    }

    #[test]
    fn abs_clears_the_sign() {
        assert_eq!(F16::NEG_ONE.abs(), F16::ONE);
        assert_eq!(F16::NEG_ZERO.abs().to_bits(), F16::ZERO.to_bits());
    }

    #[test]
    fn min_max_behave_like_f32() {
        let a = F16::from_f32(1.0);
        let b = F16::from_f32(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(F16::NAN.max(a), a);
        assert_eq!(F16::NAN.min(a), a);
    }

    #[test]
    fn sqrt_is_correct_for_perfect_squares() {
        assert_eq!(F16::from_f32(9.0).sqrt().to_f32(), 3.0);
        assert!(F16::from_f32(-1.0).sqrt().is_nan());
    }
}
